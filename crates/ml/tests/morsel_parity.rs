//! Bit-determinism tests for the morsel-parallel ML paths: encoding and
//! forest prediction must be bit-identical (`f64::to_bits`) to the
//! sequential loops across worker counts {0, 1, 3} and morsel sizes
//! {tiny, uneven tail, huge}, including NULLs and dictionary-coded
//! string columns.

use hyper_ml::{ForestParams, Matrix, RandomForest, TableEncoder};
use hyper_runtime::HyperRuntime;
use hyper_storage::{DataType, Field, Schema, Table, TableBuilder, Value};

const WORKERS: [usize; 3] = [0, 1, 3];
const MORSELS: [usize; 4] = [1, 7, 64, 4096];

/// Deterministic table: numeric with NULLs, categorical with NULLs.
fn table(n: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("age", DataType::Int),
        Field::nullable("score", DataType::Float),
        Field::nullable("color", DataType::Str),
        Field::new("flag", DataType::Bool),
    ])
    .unwrap();
    let mut b = TableBuilder::new("t", schema);
    for i in 0..n {
        let score: Value = if i % 7 == 3 {
            Value::Null
        } else {
            Value::Float((i as f64).sin() * 10.0)
        };
        let color: Value = if i % 11 == 5 {
            Value::Null
        } else {
            ["red", "green", "blue", "cyan"][i % 4].into()
        };
        b.push(vec![
            Value::Int((i % 90) as i64),
            score,
            color,
            Value::Bool(i % 3 == 0),
        ])
        .unwrap();
    }
    b.build()
}

fn assert_matrix_bits_equal(a: &Matrix, b: &Matrix, ctx: &str) {
    assert_eq!(a.rows(), b.rows(), "{ctx}: row count");
    assert_eq!(a.cols(), b.cols(), "{ctx}: col count");
    for i in 0..a.rows() {
        for (j, (x, y)) in a.row(i).iter().zip(b.row(i)).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: cell ({i}, {j}) differs: {x} vs {y}"
            );
        }
    }
}

#[test]
fn encode_table_is_bit_identical_across_workers_and_morsels() {
    let t = table(533); // not a multiple of any morsel size: uneven tails
    let cols: Vec<String> = ["age", "score", "color", "flag"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let enc = TableEncoder::fit(&t, &cols).unwrap();
    let col_refs: Vec<&hyper_storage::Column> =
        cols.iter().map(|c| t.column_by_name(c).unwrap()).collect();
    let seq = enc
        .encode_columns_on(&HyperRuntime::with_workers(0), &col_refs, t.num_rows())
        .unwrap();
    // The auto path must agree too.
    assert_matrix_bits_equal(&seq, &enc.encode_table(&t).unwrap(), "auto");
    for w in WORKERS {
        let rt = HyperRuntime::with_workers(w);
        for m in MORSELS {
            let par = enc.encode_columns_on(&rt, &col_refs, m).unwrap();
            assert_matrix_bits_equal(&seq, &par, &format!("workers={w}, morsel={m}"));
        }
    }
}

#[test]
fn forest_predict_is_bit_identical_across_workers_and_morsels() {
    let t = table(533);
    let cols: Vec<String> = ["age", "score", "color", "flag"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let enc = TableEncoder::fit(&t, &cols).unwrap();
    let x = enc.encode_table(&t).unwrap();
    let y: Vec<f64> = (0..t.num_rows()).map(|i| (i % 2) as f64).collect();
    let forest = RandomForest::fit(
        &x,
        &y,
        &ForestParams {
            n_trees: 5,
            seed: 42,
            ..ForestParams::default()
        },
    )
    .unwrap();

    let seq: Vec<u64> = forest
        .predict_on(&HyperRuntime::with_workers(0), &x, x.rows())
        .iter()
        .map(|v| v.to_bits())
        .collect();
    // The auto path must agree too.
    let auto: Vec<u64> = forest.predict(&x).iter().map(|v| v.to_bits()).collect();
    assert_eq!(seq, auto, "auto predict diverged from sequential");
    for w in WORKERS {
        let rt = HyperRuntime::with_workers(w);
        for m in MORSELS {
            let par: Vec<u64> = forest
                .predict_on(&rt, &x, m)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(seq, par, "predict diverged (workers={w}, morsel={m})");
        }
    }
}

#[test]
fn empty_and_single_row_batches_are_safe() {
    let t = table(40);
    let cols = vec!["age".to_string(), "color".to_string()];
    let enc = TableEncoder::fit(&t, &cols).unwrap();
    let empty = t.gather(&[]);
    let m = enc.encode_table(&empty).unwrap();
    assert_eq!(m.rows(), 0);
    let one = t.gather(&[7]);
    let rt = HyperRuntime::with_workers(3);
    let col_refs: Vec<&hyper_storage::Column> = cols
        .iter()
        .map(|c| one.column_by_name(c).unwrap())
        .collect();
    let m1 = enc.encode_columns_on(&rt, &col_refs, 4096).unwrap();
    assert_eq!(m1.rows(), 1);
    assert_matrix_bits_equal(&m1, &enc.encode_table(&one).unwrap(), "single-row");
}
