//! Random-forest regression: bagged CART trees with feature subsampling.
//!
//! The reproduction's stand-in for the paper's sklearn
//! `RandomForestRegressor` (§5, "Implementation and setup"): HypeR trains
//! one of these per conditional-probability estimate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{MlError, Result};
use crate::matrix::Matrix;
use crate::tree::{RegressionTree, TreeParams};

/// Hyper-parameters for the forest.
#[derive(Debug, Clone)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (feature subsampling defaults to √d when the
    /// tree's `max_features` is `None`).
    pub tree: TreeParams,
    /// Bootstrap sample (with replacement) per tree.
    pub bootstrap: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 20,
            tree: TreeParams::default(),
            bootstrap: true,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fit on `(x, y)`.
    pub fn fit(x: &Matrix, y: &[f64], params: &ForestParams) -> Result<RandomForest> {
        if x.rows() == 0 {
            return Err(MlError::InvalidInput("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::InvalidInput(format!(
                "x has {} rows, y has {}",
                x.rows(),
                y.len()
            )));
        }
        if params.n_trees == 0 {
            return Err(MlError::InvalidInput("n_trees must be ≥ 1".into()));
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut tree_params = params.tree.clone();
        if tree_params.max_features.is_none() && x.cols() > 3 {
            tree_params.max_features = Some((x.cols() as f64).sqrt().ceil() as usize);
        }
        let n = x.rows();
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let idx: Vec<u32> = if params.bootstrap {
                (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
            } else {
                (0..n as u32).collect()
            };
            trees.push(RegressionTree::fit_indices(
                x,
                y,
                idx,
                &tree_params,
                &mut rng,
            )?);
        }
        Ok(RandomForest { trees })
    }

    /// Mean prediction across trees for one sample.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let s: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        s / self.trees.len() as f64
    }

    /// Batch prediction.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Mean prediction clamped to `[0, 1]`, for probability targets (the
    /// paper regresses indicator targets to estimate probabilities).
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        self.predict_row(row).clamp(0.0, 1.0)
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mse, r2};

    /// Noisy quadratic regression task.
    fn quadratic(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(-2.0..2.0);
            rows.push(vec![x]);
            y.push(x * x + 0.1 * rng.gen_range(-1.0..1.0));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn beats_constant_baseline_on_quadratic() {
        let (x, y) = quadratic(600, 1);
        let forest = RandomForest::fit(&x, &y, &ForestParams::default()).unwrap();
        let (xt, yt) = quadratic(200, 2);
        let pred = forest.predict(&xt);
        let mean = yt.iter().sum::<f64>() / yt.len() as f64;
        let baseline = mse(&vec![mean; yt.len()], &yt);
        let model = mse(&pred, &yt);
        assert!(
            model < baseline / 4.0,
            "forest mse {model} vs baseline {baseline}"
        );
        assert!(r2(&pred, &yt) > 0.8);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = quadratic(200, 3);
        let p = ForestParams {
            seed: 9,
            ..Default::default()
        };
        let f1 = RandomForest::fit(&x, &y, &p).unwrap();
        let f2 = RandomForest::fit(&x, &y, &p).unwrap();
        assert_eq!(f1.predict_row(&[0.5]), f2.predict_row(&[0.5]));
    }

    #[test]
    fn probability_clamping() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let f = RandomForest::fit(&x, &y, &ForestParams::default()).unwrap();
        let p = f.predict_proba_row(&[2.5]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(RandomForest::fit(&x, &[1.0, 2.0], &ForestParams::default()).is_err());
        let p = ForestParams {
            n_trees: 0,
            ..Default::default()
        };
        assert!(RandomForest::fit(&x, &[1.0], &p).is_err());
    }
}
