//! Random-forest regression: bagged CART trees with feature subsampling.
//!
//! The reproduction's stand-in for the paper's sklearn
//! `RandomForestRegressor` (§5, "Implementation and setup"): HypeR trains
//! one of these per conditional-probability estimate — it dominates cold
//! what-if latency, so training is the engine's hottest cold path.
//!
//! Training is histogram-based and parallel: the feature matrix is binned
//! **once** ([`crate::hist::BinnedMatrix`]) and every tree fits over the
//! shared bins with per-node histogram split search; trees train
//! concurrently over a [`hyper_runtime::HyperRuntime`] worker pool. Each
//! tree derives its own RNG from `(seed, tree_index)`, so a fitted forest
//! is **bit-identical for a fixed seed regardless of worker count** —
//! including the zero-worker sequential fallback.

use std::sync::OnceLock;

use hyper_runtime::HyperRuntime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{MlError, Result};
use crate::hist::{BinnedMatrix, CellIndex, MAX_BINS};
use crate::matrix::Matrix;
use crate::tree::{RegressionTree, TreeParams};

/// Derive the per-tree RNG seed: a SplitMix64 scramble of the forest seed
/// and the tree index, so tree streams are independent and assignment of
/// trees to worker threads cannot change any tree's randomness.
pub(crate) fn tree_seed(seed: u64, tree: usize) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tree as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hyper-parameters for the forest.
#[derive(Debug, Clone)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters (feature subsampling defaults to √d when the
    /// tree's `max_features` is `None`).
    pub tree: TreeParams,
    /// Bootstrap sample (with replacement) per tree.
    pub bootstrap: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 20,
            tree: TreeParams::default(),
            bootstrap: true,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fit on `(x, y)` over the process-wide
    /// [`HyperRuntime`](hyper_runtime::HyperRuntime).
    pub fn fit(x: &Matrix, y: &[f64], params: &ForestParams) -> Result<RandomForest> {
        Self::fit_on(HyperRuntime::global(), x, y, params)
    }

    /// Fit on `(x, y)`, training trees in parallel over `runtime`. The
    /// result depends only on `(x, y, params)` — never on the runtime's
    /// worker count (each tree's randomness is derived from
    /// `(params.seed, tree_index)`).
    pub fn fit_on(
        runtime: &HyperRuntime,
        x: &Matrix,
        y: &[f64],
        params: &ForestParams,
    ) -> Result<RandomForest> {
        if x.rows() == 0 {
            return Err(MlError::InvalidInput("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::InvalidInput(format!(
                "x has {} rows, y has {}",
                x.rows(),
                y.len()
            )));
        }
        if params.n_trees == 0 {
            return Err(MlError::InvalidInput("n_trees must be ≥ 1".into()));
        }
        let _span = hyper_trace::span(hyper_trace::Phase::ForestTrain);
        let mut tree_params = params.tree.clone();
        if tree_params.max_features.is_none() && x.cols() > 3 {
            tree_params.max_features = Some((x.cols() as f64).sqrt().ceil() as usize);
        }
        let n = x.rows();
        // Bin once, share across every tree (the expensive sort happens
        // here, not per node). When the joint bin vectors collapse into
        // few distinct cells — always true over HypeR's discrete
        // adjustment sets — trees additionally fit over weighted cells
        // instead of rows, so per-tree cost drops to one O(n) bootstrap
        // accumulation plus an O(cells) tree build.
        let binned = BinnedMatrix::from_matrix(x, MAX_BINS);
        let cells = CellIndex::build(&binned, (n / 4).max(64));
        let slots: Vec<OnceLock<Result<RegressionTree>>> =
            (0..params.n_trees).map(|_| OnceLock::new()).collect();
        runtime.for_each_parallel(params.n_trees, |t| {
            let mut rng = StdRng::seed_from_u64(tree_seed(params.seed, t));
            let tree = match &cells {
                Some(cells) => {
                    // Accumulate this tree's bootstrap directly into
                    // per-cell (count, Σy, Σy²) statistics.
                    let mut stats = vec![(0u32, 0.0f64, 0.0f64); cells.num_cells()];
                    let cell_of_row = cells.cell_of_row();
                    if params.bootstrap {
                        for _ in 0..n {
                            let r = rng.gen_range(0..n);
                            let slot = &mut stats[cell_of_row[r] as usize];
                            let yv = y[r];
                            slot.0 += 1;
                            slot.1 += yv;
                            slot.2 += yv * yv;
                        }
                    } else {
                        for (r, &yv) in y.iter().enumerate() {
                            let slot = &mut stats[cell_of_row[r] as usize];
                            slot.0 += 1;
                            slot.1 += yv;
                            slot.2 += yv * yv;
                        }
                    }
                    RegressionTree::fit_cells(&binned, cells, &stats, &tree_params, &mut rng)
                }
                None => {
                    let idx: Vec<u32> = if params.bootstrap {
                        let mut idx: Vec<u32> =
                            (0..n).map(|_| rng.gen_range(0..n) as u32).collect();
                        // Ascending order makes every histogram pass walk
                        // the bin buffers forward (the multiset, not the
                        // order, defines the fitted tree).
                        idx.sort_unstable();
                        idx
                    } else {
                        (0..n as u32).collect()
                    };
                    RegressionTree::fit_binned(&binned, y, idx, &tree_params, &mut rng)
                }
            };
            let _ = slots[t].set(tree);
        });
        let mut trees = Vec::with_capacity(params.n_trees);
        for slot in slots {
            trees.push(slot.into_inner().expect("every tree slot is filled")?);
        }
        Ok(RandomForest { trees })
    }

    /// Mean prediction across trees for one sample.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let s: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        s / self.trees.len() as f64
    }

    /// Batch prediction. Large batches split row ranges across the global
    /// [`HyperRuntime`]'s workers (prediction is read-only per tree, so
    /// this is pure fan-out); each row's mean-over-trees is computed
    /// identically either way, so the output is bit-identical to the
    /// sequential loop.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        let rt = HyperRuntime::global();
        let morsel_rows = if x.rows() >= hyper_storage::PARALLEL_ROW_THRESHOLD && rt.workers() > 0 {
            hyper_storage::DEFAULT_MORSEL_ROWS
        } else {
            x.rows().max(1) // one range: the plain sequential loop
        };
        self.predict_on(rt, x, morsel_rows)
    }

    /// [`RandomForest::predict`] on a caller-chosen runtime and morsel
    /// size (the parity tests drive this across worker counts).
    pub fn predict_on(&self, rt: &HyperRuntime, x: &Matrix, morsel_rows: usize) -> Vec<f64> {
        let n = x.rows();
        if n == 0 {
            return Vec::new();
        }
        let _span = hyper_trace::span(hyper_trace::Phase::Predict);
        let morsel_rows = morsel_rows.max(1);
        let mut out = vec![0.0f64; n];
        let slabs: Vec<std::sync::Mutex<&mut [f64]>> = out
            .chunks_mut(morsel_rows)
            .map(std::sync::Mutex::new)
            .collect();
        rt.for_each_chunked(n, morsel_rows, |rows| {
            let mut slab = slabs[rows.start / morsel_rows].lock().expect("slab lock");
            for (local, i) in rows.enumerate() {
                slab[local] = self.predict_row(x.row(i));
            }
        });
        drop(slabs);
        out
    }

    /// Mean prediction clamped to `[0, 1]`, for probability targets (the
    /// paper regresses indicator targets to estimate probabilities).
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        self.predict_row(row).clamp(0.0, 1.0)
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees, exposed for serialization.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Reassemble a forest from fitted trees (the inverse of
    /// [`RandomForest::trees`]). All trees must expect the same feature
    /// width; predictions of the reassembled forest are bit-identical to
    /// the original's (the mean is summed in tree order).
    pub fn from_trees(trees: Vec<RegressionTree>) -> Result<RandomForest> {
        let Some(first) = trees.first() else {
            return Err(MlError::InvalidInput("forest has no trees".into()));
        };
        let width = first.n_features();
        if trees.iter().any(|t| t.n_features() != width) {
            return Err(MlError::InvalidInput(
                "forest trees disagree on feature width".into(),
            ));
        }
        Ok(RandomForest { trees })
    }

    /// Approximate memory footprint in bytes (arena nodes), for the
    /// byte-budgeted shared-artifact eviction policy.
    pub fn approx_bytes(&self) -> usize {
        const NODE_BYTES: usize = 40; // enum tag + 4 words, rounded up
        self.trees.iter().map(|t| t.num_nodes() * NODE_BYTES).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mse, r2};

    /// Noisy quadratic regression task.
    fn quadratic(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(-2.0..2.0);
            rows.push(vec![x]);
            y.push(x * x + 0.1 * rng.gen_range(-1.0..1.0));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn beats_constant_baseline_on_quadratic() {
        let (x, y) = quadratic(600, 1);
        let forest = RandomForest::fit(&x, &y, &ForestParams::default()).unwrap();
        let (xt, yt) = quadratic(200, 2);
        let pred = forest.predict(&xt);
        let mean = yt.iter().sum::<f64>() / yt.len() as f64;
        let baseline = mse(&vec![mean; yt.len()], &yt);
        let model = mse(&pred, &yt);
        assert!(
            model < baseline / 4.0,
            "forest mse {model} vs baseline {baseline}"
        );
        assert!(r2(&pred, &yt) > 0.8);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = quadratic(200, 3);
        let p = ForestParams {
            seed: 9,
            ..Default::default()
        };
        let f1 = RandomForest::fit(&x, &y, &p).unwrap();
        let f2 = RandomForest::fit(&x, &y, &p).unwrap();
        assert_eq!(f1.predict_row(&[0.5]), f2.predict_row(&[0.5]));
    }

    #[test]
    fn bit_identical_across_worker_counts() {
        let (x, y) = quadratic(400, 11);
        let p = ForestParams {
            seed: 42,
            ..Default::default()
        };
        let sequential = HyperRuntime::with_workers(0);
        let parallel = HyperRuntime::with_workers(3);
        let f0 = RandomForest::fit_on(&sequential, &x, &y, &p).unwrap();
        let f3 = RandomForest::fit_on(&parallel, &x, &y, &p).unwrap();
        let (xt, _) = quadratic(100, 12);
        let p0 = f0.predict(&xt);
        let p3 = f3.predict(&xt);
        assert_eq!(p0, p3, "seeded training must not depend on worker count");
    }

    #[test]
    fn probability_clamping() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let f = RandomForest::fit(&x, &y, &ForestParams::default()).unwrap();
        let p = f.predict_proba_row(&[2.5]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(RandomForest::fit(&x, &[1.0, 2.0], &ForestParams::default()).is_err());
        let p = ForestParams {
            n_trees: 0,
            ..Default::default()
        };
        assert!(RandomForest::fit(&x, &[1.0], &p).is_err());
    }
}
