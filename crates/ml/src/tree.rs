//! CART regression trees: variance-reduction splits on numeric features.
//!
//! This is the base learner of the random forest the paper uses to estimate
//! conditional probabilities (their sklearn `RandomForestRegressor`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::error::{MlError, Result};
use crate::hist::{BinnedMatrix, CellIndex};
use crate::matrix::Matrix;

/// Hyper-parameters for a regression tree.
#[derive(Debug, Clone)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features examined per split (`None` = all).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_leaf: 2,
            min_samples_split: 4,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A flattened tree node, exposed for serialization
/// ([`RegressionTree::export_nodes`] / [`RegressionTree::from_nodes`]).
/// Node 0 is the root; children always carry larger indices than their
/// parent (the arena reserves the parent slot before recursing), which is
/// what makes an imported arena trivially acyclic to validate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeNode {
    /// Terminal node carrying the predicted value.
    Leaf {
        /// Mean target of the training rows that reached this leaf.
        value: f64,
    },
    /// Internal split: rows with `row[feature] <= threshold` go left.
    Split {
        /// Feature index examined.
        feature: u32,
        /// Split threshold (`<=` goes left).
        threshold: f64,
        /// Arena index of the left child.
        left: u32,
        /// Arena index of the right child.
        right: u32,
    },
}

/// A fitted regression tree (arena-allocated nodes).
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

/// Per-tree scratch state for the binned builder, allocated once and
/// reused by every node.
struct BinnedCtx {
    /// `(count, Σy)` per bin of the feature currently scanned.
    hist: Vec<(u32, f64)>,
    /// Staging buffer for the in-place stable partition.
    scratch: Vec<u32>,
    /// True when every target is 0 or 1 (then Σy² ≡ Σy).
    y_is_binary: bool,
}

impl RegressionTree {
    /// Fit a tree on `(x, y)`; `rng` drives feature subsampling (pass any
    /// seeded rng; unused when `max_features` is `None`).
    pub fn fit(x: &Matrix, y: &[f64], params: &TreeParams, rng: &mut StdRng) -> Result<Self> {
        if x.rows() == 0 {
            return Err(MlError::InvalidInput("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::InvalidInput(format!(
                "x has {} rows, y has {}",
                x.rows(),
                y.len()
            )));
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: x.cols(),
        };
        let idx: Vec<u32> = (0..x.rows() as u32).collect();
        tree.build(x, y, idx, 0, params, rng);
        Ok(tree)
    }

    /// Fit using only the sample indices in `idx` (bootstrap support).
    pub fn fit_indices(
        x: &Matrix,
        y: &[f64],
        idx: Vec<u32>,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Result<Self> {
        if idx.is_empty() {
            return Err(MlError::InvalidInput("empty bootstrap sample".into()));
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: x.cols(),
        };
        tree.build(x, y, idx, 0, params, rng);
        Ok(tree)
    }

    /// Fit using histogram-binned features (see [`crate::hist`]): split
    /// search per node is one histogram accumulation over the node's rows
    /// plus a bin-boundary scan, instead of a sort per feature. For
    /// features whose distinct values all fit in the bin budget the
    /// candidate split set is identical to the exhaustive search of
    /// [`RegressionTree::fit_indices`]. This is the random forest's
    /// training path; the binned matrix is built once and shared by every
    /// tree.
    pub fn fit_binned(
        data: &BinnedMatrix,
        y: &[f64],
        mut idx: Vec<u32>,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Result<Self> {
        if idx.is_empty() {
            return Err(MlError::InvalidInput("empty bootstrap sample".into()));
        }
        if y.len() != data.rows() {
            return Err(MlError::InvalidInput(format!(
                "binned data has {} rows, y has {}",
                data.rows(),
                y.len()
            )));
        }
        // Validated once so the per-node loops can skip bounds checks.
        if idx.iter().any(|&i| i as usize >= data.rows()) {
            return Err(MlError::InvalidInput("bootstrap index out of range".into()));
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: data.cols(),
        };
        let mut ctx = BinnedCtx {
            // The split argmin never needs per-bin Σy²: both children's
            // squared sums add up to the node's, which is constant across
            // candidate splits, so minimizing child SSE equals maximizing
            // `Σl²/nl + Σr²/nr`.
            hist: Vec::new(),
            scratch: vec![0u32; idx.len()],
            // For indicator targets (Count queries, Avg denominators)
            // y² = y, so children's Σy² come free from their Σy.
            y_is_binary: y.iter().all(|&v| v == 0.0 || v == 1.0),
        };
        let sum: f64 = idx.iter().map(|&i| y[i as usize]).sum();
        let sumsq: f64 = if ctx.y_is_binary {
            sum
        } else {
            idx.iter().map(|&i| y[i as usize] * y[i as usize]).sum()
        };
        tree.build_binned(data, y, &mut idx, (sum, sumsq), 0, params, rng, &mut ctx);
        Ok(tree)
    }

    /// One node of the binned builder. `idx` is this node's row multiset
    /// (kept in ascending order so histogram reads walk memory forward,
    /// and partitioned in place — no per-node allocation); `sum`/`sumsq`
    /// are Σy and Σy² over `idx`, computed by the parent.
    #[allow(clippy::too_many_arguments)]
    fn build_binned(
        &mut self,
        data: &BinnedMatrix,
        y: &[f64],
        idx: &mut [u32],
        (sum, sumsq): (f64, f64),
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
        ctx: &mut BinnedCtx,
    ) -> usize {
        let n = idx.len();
        let mean = sum / n as f64;

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean });
            nodes.len() - 1
        };

        if depth >= params.max_depth || n < params.min_samples_split || data.cols() == 0 {
            return make_leaf(&mut self.nodes);
        }
        let sse = sumsq - sum * sum / n as f64;
        if sse < 1e-12 {
            return make_leaf(&mut self.nodes);
        }

        // Candidate features (same subsampling contract as the exhaustive
        // path: shuffle + truncate under `max_features`).
        let mut features: Vec<usize> = (0..data.cols()).collect();
        if let Some(k) = params.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1).min(data.cols()));
        }

        // Best split: (feature, last bin of the left child, gain term,
        // left count, left sum) — the left stats seed the child's node
        // statistics without another pass.
        let mut best: Option<(usize, u8, f64, u32, f64)> = None;
        for &f in &features {
            let feat = data.feature(f);
            let nb = feat.num_bins();
            if nb < 2 {
                continue;
            }
            ctx.hist.clear();
            ctx.hist.resize(nb, (0, 0.0));
            let bins = feat.bins();
            let hist = &mut ctx.hist[..];
            for &i in idx.iter() {
                // SAFETY: `i < data.rows() == bins.len() == y.len()` was
                // validated in `fit_binned`, and every bin id is
                // `< num_bins()` by `BinnedMatrix` construction (fields
                // are private; `hist` was just resized to `num_bins()`).
                unsafe {
                    let b = *bins.get_unchecked(i as usize) as usize;
                    let slot = hist.get_unchecked_mut(b);
                    slot.0 += 1;
                    slot.1 += *y.get_unchecked(i as usize);
                }
            }
            let mut left_n = 0u32;
            let mut left_sum = 0.0;
            for (b, &(c, s)) in hist.iter().enumerate().take(nb - 1) {
                left_n += c;
                left_sum += s;
                let right_n = n as u32 - left_n;
                if left_n == 0 {
                    continue; // no data below this boundary
                }
                if right_n == 0 {
                    break; // nothing right of it either
                }
                if (left_n as usize) < params.min_samples_leaf
                    || (right_n as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let right_sum = sum - left_sum;
                let gain =
                    left_sum * left_sum / left_n as f64 + right_sum * right_sum / right_n as f64;
                if best.is_none_or(|(_, _, g, _, _)| gain > g) {
                    best = Some((f, b as u8, gain, left_n, left_sum));
                }
            }
        }

        match best {
            Some((feature, split_bin, gain, left_n, left_sum)) if sumsq - gain < sse - 1e-12 => {
                // Stable in-place partition through the shared scratch
                // buffer: left rows compact forward, right rows stage in
                // scratch and copy back behind them. Both children keep
                // ascending row order.
                let bins = data.feature(feature).bins();
                let mut l = 0usize;
                let mut r = 0usize;
                for k in 0..n {
                    let i = idx[k];
                    if bins[i as usize] <= split_bin {
                        idx[l] = i;
                        l += 1;
                    } else {
                        ctx.scratch[r] = i;
                        r += 1;
                    }
                }
                debug_assert_eq!(l, left_n as usize);
                idx[l..].copy_from_slice(&ctx.scratch[..r]);
                let (left_idx, right_idx) = idx.split_at_mut(l);

                let right_sum = sum - left_sum;
                let (left_sq, right_sq) = if ctx.y_is_binary {
                    (left_sum, right_sum)
                } else {
                    // One pass over the smaller child; the sibling's Σy²
                    // falls out by subtraction.
                    let (small, small_is_left) = if left_idx.len() <= right_idx.len() {
                        (&*left_idx, true)
                    } else {
                        (&*right_idx, false)
                    };
                    let small_sq: f64 = small.iter().map(|&i| y[i as usize] * y[i as usize]).sum();
                    if small_is_left {
                        (small_sq, sumsq - small_sq)
                    } else {
                        (sumsq - small_sq, small_sq)
                    }
                };
                let threshold = data.feature(feature).splits()[split_bin as usize];
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.build_binned(
                    data,
                    y,
                    left_idx,
                    (left_sum, left_sq),
                    depth + 1,
                    params,
                    rng,
                    ctx,
                );
                let right = self.build_binned(
                    data,
                    y,
                    right_idx,
                    (right_sum, right_sq),
                    depth + 1,
                    params,
                    rng,
                    ctx,
                );
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
            _ => make_leaf(&mut self.nodes),
        }
    }

    /// Fit over the joint-cell decomposition of a binned matrix
    /// (see [`crate::hist::CellIndex`]): `stats[c]` carries this tree's
    /// bootstrap `(row count, Σy, Σy²)` for cell `c`. Split search and
    /// leaf means are computed from the weighted cells — identical to the
    /// row-wise fit up to floating-point summation order — so node cost
    /// scales with the number of *cells*, not rows.
    pub(crate) fn fit_cells(
        data: &BinnedMatrix,
        cells: &CellIndex,
        stats: &[(u32, f64, f64)],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Result<Self> {
        let m = cells.num_cells();
        if stats.len() != m {
            return Err(MlError::InvalidInput(format!(
                "cell stats cover {} cells, index has {m}",
                stats.len()
            )));
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: data.cols(),
        };
        let mut ctx = BinnedCtx {
            hist: Vec::new(),
            scratch: vec![0u32; m],
            y_is_binary: false, // Σy² is already per-cell; no shortcut needed
        };
        let mut ids: Vec<u32> = (0..m as u32).collect();
        let n: u32 = stats.iter().map(|s| s.0).sum();
        if n == 0 {
            return Err(MlError::InvalidInput("empty bootstrap sample".into()));
        }
        let sum: f64 = stats.iter().map(|s| s.1).sum();
        let sumsq: f64 = stats.iter().map(|s| s.2).sum();
        tree.build_cells(
            data,
            cells,
            stats,
            &mut ids,
            (n, sum, sumsq),
            0,
            params,
            rng,
            &mut ctx,
        );
        Ok(tree)
    }

    /// One node of the cell builder: `ids` is the node's cell set,
    /// `(n, sum, sumsq)` its bootstrap row count, Σy and Σy².
    #[allow(clippy::too_many_arguments)]
    fn build_cells(
        &mut self,
        data: &BinnedMatrix,
        cells: &CellIndex,
        stats: &[(u32, f64, f64)],
        ids: &mut [u32],
        (n, sum, sumsq): (u32, f64, f64),
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
        ctx: &mut BinnedCtx,
    ) -> usize {
        let mean = sum / n as f64;
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean });
            nodes.len() - 1
        };

        if depth >= params.max_depth || (n as usize) < params.min_samples_split || data.cols() == 0
        {
            return make_leaf(&mut self.nodes);
        }
        let sse = sumsq - sum * sum / n as f64;
        if sse < 1e-12 {
            return make_leaf(&mut self.nodes);
        }

        let mut features: Vec<usize> = (0..data.cols()).collect();
        if let Some(k) = params.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1).min(data.cols()));
        }

        // Best split: (feature, left's last bin, gain, left rows, Σy_l,
        // Σy²_l).
        let mut best: Option<(usize, u8, f64, u32, f64, f64)> = None;
        for &f in &features {
            let feat = data.feature(f);
            let nb = feat.num_bins();
            if nb < 2 {
                continue;
            }
            ctx.hist.clear();
            ctx.hist.resize(nb, (0, 0.0));
            // Per-bin Σy² only exists in cell mode; small, keep local.
            let mut hist_sq = vec![0.0f64; nb];
            let bin_of_cell = cells.cell_bins(f);
            for &c in ids.iter() {
                let (cnt, s, q) = stats[c as usize];
                let b = bin_of_cell[c as usize] as usize;
                ctx.hist[b].0 += cnt;
                ctx.hist[b].1 += s;
                hist_sq[b] += q;
            }
            let mut left_n = 0u32;
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (b, (&(c, s), &q)) in ctx.hist.iter().zip(&hist_sq).enumerate().take(nb - 1) {
                left_n += c;
                left_sum += s;
                left_sq += q;
                let right_n = n - left_n;
                if left_n == 0 {
                    continue;
                }
                if right_n == 0 {
                    break;
                }
                if (left_n as usize) < params.min_samples_leaf
                    || (right_n as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let right_sum = sum - left_sum;
                let gain =
                    left_sum * left_sum / left_n as f64 + right_sum * right_sum / right_n as f64;
                if best.is_none_or(|(_, _, g, _, _, _)| gain > g) {
                    best = Some((f, b as u8, gain, left_n, left_sum, left_sq));
                }
            }
        }

        match best {
            Some((feature, split_bin, gain, left_n, left_sum, left_sq))
                if sumsq - gain < sse - 1e-12 =>
            {
                let bin_of_cell = cells.cell_bins(feature);
                let total = ids.len();
                let mut l = 0usize;
                let mut r = 0usize;
                for k in 0..total {
                    let c = ids[k];
                    if bin_of_cell[c as usize] <= split_bin {
                        ids[l] = c;
                        l += 1;
                    } else {
                        ctx.scratch[r] = c;
                        r += 1;
                    }
                }
                ids[l..].copy_from_slice(&ctx.scratch[..r]);
                let (left_ids, right_ids) = ids.split_at_mut(l);
                let threshold = data.feature(feature).splits()[split_bin as usize];
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.build_cells(
                    data,
                    cells,
                    stats,
                    left_ids,
                    (left_n, left_sum, left_sq),
                    depth + 1,
                    params,
                    rng,
                    ctx,
                );
                let right = self.build_cells(
                    data,
                    cells,
                    stats,
                    right_ids,
                    (n - left_n, sum - left_sum, sumsq - left_sq),
                    depth + 1,
                    params,
                    rng,
                    ctx,
                );
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
            _ => make_leaf(&mut self.nodes),
        }
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        mut idx: Vec<u32>,
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> usize {
        let n = idx.len();
        let mean = idx.iter().map(|&i| y[i as usize]).sum::<f64>() / n as f64;

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean });
            nodes.len() - 1
        };

        if depth >= params.max_depth || n < params.min_samples_split || x.cols() == 0 {
            return make_leaf(&mut self.nodes);
        }
        // Pure node?
        let sse: f64 = idx
            .iter()
            .map(|&i| {
                let d = y[i as usize] - mean;
                d * d
            })
            .sum();
        if sse < 1e-12 {
            return make_leaf(&mut self.nodes);
        }

        // Candidate features.
        let mut features: Vec<usize> = (0..x.cols()).collect();
        if let Some(k) = params.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1).min(x.cols()));
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for &f in &features {
            idx.sort_unstable_by(|&a, &b| x.get(a as usize, f).total_cmp(&x.get(b as usize, f)));
            // Prefix sums for O(n) split scan.
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let total_sum: f64 = idx.iter().map(|&i| y[i as usize]).sum();
            let total_sq: f64 = idx.iter().map(|&i| y[i as usize] * y[i as usize]).sum();
            for split in 1..n {
                let yi = y[idx[split - 1] as usize];
                left_sum += yi;
                left_sq += yi * yi;
                let (xl, xr) = (
                    x.get(idx[split - 1] as usize, f),
                    x.get(idx[split] as usize, f),
                );
                if xl == xr {
                    continue; // cannot split between equal values
                }
                if split < params.min_samples_leaf || n - split < params.min_samples_leaf {
                    continue;
                }
                let nl = split as f64;
                let nr = (n - split) as f64;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                // Weighted SSE of children.
                let child_sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.is_none_or(|(_, _, s)| child_sse < s) {
                    best = Some((f, (xl + xr) / 2.0, child_sse));
                }
            }
        }

        match best {
            None => make_leaf(&mut self.nodes),
            Some((feature, threshold, child_sse)) if child_sse < sse - 1e-12 => {
                let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = idx
                    .iter()
                    .partition(|&&i| x.get(i as usize, feature) <= threshold);
                // Reserve a slot for this split node before recursing.
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.build(x, y, left_idx, depth + 1, params, rng);
                let right = self.build(x, y, right_idx, depth + 1, params, rng);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
            _ => make_leaf(&mut self.nodes),
        }
    }

    /// Predict one sample.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        // The root is the first node created for the full index set. Because
        // we reserve split slots before recursing, the root is node 0.
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict a batch.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Flatten the fitted arena for serialization. The exact `f64` bit
    /// patterns of thresholds and leaf values are preserved, so a tree
    /// rebuilt with [`RegressionTree::from_nodes`] predicts bit-identically.
    pub fn export_nodes(&self) -> Vec<TreeNode> {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { value } => TreeNode::Leaf { value: *value },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => TreeNode::Split {
                    feature: *feature as u32,
                    threshold: *threshold,
                    left: *left as u32,
                    right: *right as u32,
                },
            })
            .collect()
    }

    /// Rebuild a tree from a flattened arena (the inverse of
    /// [`RegressionTree::export_nodes`]). Validates the structural
    /// invariants — non-empty, every split's feature within
    /// `n_features`, and every child index in range **and greater than
    /// its parent's** (which guarantees the walk from the root
    /// terminates) — so untrusted input can produce an error but never a
    /// panic or an infinite prediction loop.
    pub fn from_nodes(nodes: Vec<TreeNode>, n_features: usize) -> Result<RegressionTree> {
        if nodes.is_empty() {
            return Err(MlError::InvalidInput("tree has no nodes".into()));
        }
        let len = nodes.len();
        let mut arena = Vec::with_capacity(len);
        for (i, n) in nodes.into_iter().enumerate() {
            arena.push(match n {
                TreeNode::Leaf { value } => Node::Leaf { value },
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let (f, l, r) = (feature as usize, left as usize, right as usize);
                    if f >= n_features {
                        return Err(MlError::InvalidInput(format!(
                            "node {i} splits on feature {f} but the tree has {n_features}"
                        )));
                    }
                    if l <= i || r <= i || l >= len || r >= len {
                        return Err(MlError::InvalidInput(format!(
                            "node {i} has out-of-order child indices ({l}, {r}) in a \
                             {len}-node arena"
                        )));
                    }
                    Node::Split {
                        feature: f,
                        threshold,
                        left: l,
                        right: r,
                    }
                }
            });
        }
        Ok(RegressionTree {
            nodes: arena,
            n_features,
        })
    }

    /// Expected feature-vector width.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fits_step_function_exactly() {
        // y = 1 if x > 0.5 else 0 — one split suffices.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng()).unwrap();
        assert_eq!(tree.predict_row(&[0.2]), 0.0);
        assert_eq!(tree.predict_row(&[0.9]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let params = TreeParams {
            max_depth: 1,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &params, &mut rng()).unwrap();
        // depth 1 → at most 3 nodes (1 split + 2 leaves).
        assert!(tree.num_nodes() <= 3);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = vec![7.0; 4];
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng()).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_row(&[100.0]), 7.0);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let y = vec![0.0, 0.0, 10.0];
        let params = TreeParams {
            min_samples_leaf: 2,
            min_samples_split: 2,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &params, &mut rng()).unwrap();
        // A split would need a leaf of size 1 on one side for best fit at
        // x=1.5; with min leaf 2 the only legal split (at 0.5 or 1.5) keeps
        // ≥2 per side — at n=3 no split satisfies both sides ≥2.
        assert_eq!(tree.num_nodes(), 1);
    }

    #[test]
    fn two_feature_interaction() {
        // y = 1 iff x0 > 0.5 and x1 > 0.5.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (i as f64 / 20.0, j as f64 / 20.0);
                rows.push(vec![a, b]);
                y.push(if a > 0.5 && b > 0.5 { 1.0 } else { 0.0 });
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng()).unwrap();
        assert!(tree.predict_row(&[0.9, 0.9]) > 0.9);
        assert!(tree.predict_row(&[0.9, 0.1]) < 0.1);
        assert!(tree.predict_row(&[0.1, 0.9]) < 0.1);
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(RegressionTree::fit(&x, &[1.0, 2.0], &TreeParams::default(), &mut rng()).is_err());
        let empty = Matrix::zeros(0, 1);
        assert!(RegressionTree::fit(&empty, &[], &TreeParams::default(), &mut rng()).is_err());
    }
}
