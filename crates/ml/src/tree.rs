//! CART regression trees: variance-reduction splits on numeric features.
//!
//! This is the base learner of the random forest the paper uses to estimate
//! conditional probabilities (their sklearn `RandomForestRegressor`).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::error::{MlError, Result};
use crate::matrix::Matrix;

/// Hyper-parameters for a regression tree.
#[derive(Debug, Clone)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features examined per split (`None` = all).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_leaf: 2,
            min_samples_split: 4,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree (arena-allocated nodes).
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fit a tree on `(x, y)`; `rng` drives feature subsampling (pass any
    /// seeded rng; unused when `max_features` is `None`).
    pub fn fit(x: &Matrix, y: &[f64], params: &TreeParams, rng: &mut StdRng) -> Result<Self> {
        if x.rows() == 0 {
            return Err(MlError::InvalidInput("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::InvalidInput(format!(
                "x has {} rows, y has {}",
                x.rows(),
                y.len()
            )));
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: x.cols(),
        };
        let idx: Vec<u32> = (0..x.rows() as u32).collect();
        tree.build(x, y, idx, 0, params, rng);
        Ok(tree)
    }

    /// Fit using only the sample indices in `idx` (bootstrap support).
    pub fn fit_indices(
        x: &Matrix,
        y: &[f64],
        idx: Vec<u32>,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Result<Self> {
        if idx.is_empty() {
            return Err(MlError::InvalidInput("empty bootstrap sample".into()));
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: x.cols(),
        };
        tree.build(x, y, idx, 0, params, rng);
        Ok(tree)
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        mut idx: Vec<u32>,
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> usize {
        let n = idx.len();
        let mean = idx.iter().map(|&i| y[i as usize]).sum::<f64>() / n as f64;

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean });
            nodes.len() - 1
        };

        if depth >= params.max_depth || n < params.min_samples_split || x.cols() == 0 {
            return make_leaf(&mut self.nodes);
        }
        // Pure node?
        let sse: f64 = idx
            .iter()
            .map(|&i| {
                let d = y[i as usize] - mean;
                d * d
            })
            .sum();
        if sse < 1e-12 {
            return make_leaf(&mut self.nodes);
        }

        // Candidate features.
        let mut features: Vec<usize> = (0..x.cols()).collect();
        if let Some(k) = params.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1).min(x.cols()));
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for &f in &features {
            idx.sort_unstable_by(|&a, &b| x.get(a as usize, f).total_cmp(&x.get(b as usize, f)));
            // Prefix sums for O(n) split scan.
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            let total_sum: f64 = idx.iter().map(|&i| y[i as usize]).sum();
            let total_sq: f64 = idx.iter().map(|&i| y[i as usize] * y[i as usize]).sum();
            for split in 1..n {
                let yi = y[idx[split - 1] as usize];
                left_sum += yi;
                left_sq += yi * yi;
                let (xl, xr) = (
                    x.get(idx[split - 1] as usize, f),
                    x.get(idx[split] as usize, f),
                );
                if xl == xr {
                    continue; // cannot split between equal values
                }
                if split < params.min_samples_leaf || n - split < params.min_samples_leaf {
                    continue;
                }
                let nl = split as f64;
                let nr = (n - split) as f64;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                // Weighted SSE of children.
                let child_sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.is_none_or(|(_, _, s)| child_sse < s) {
                    best = Some((f, (xl + xr) / 2.0, child_sse));
                }
            }
        }

        match best {
            None => make_leaf(&mut self.nodes),
            Some((feature, threshold, child_sse)) if child_sse < sse - 1e-12 => {
                let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = idx
                    .iter()
                    .partition(|&&i| x.get(i as usize, feature) <= threshold);
                // Reserve a slot for this split node before recursing.
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.build(x, y, left_idx, depth + 1, params, rng);
                let right = self.build(x, y, right_idx, depth + 1, params, rng);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
            _ => make_leaf(&mut self.nodes),
        }
    }

    /// Predict one sample.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        // The root is the first node created for the full index set. Because
        // we reserve split slots before recursing, the root is node 0.
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict a batch.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Expected feature-vector width.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fits_step_function_exactly() {
        // y = 1 if x > 0.5 else 0 — one split suffices.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng()).unwrap();
        assert_eq!(tree.predict_row(&[0.2]), 0.0);
        assert_eq!(tree.predict_row(&[0.9]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let params = TreeParams {
            max_depth: 1,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &params, &mut rng()).unwrap();
        // depth 1 → at most 3 nodes (1 split + 2 leaves).
        assert!(tree.num_nodes() <= 3);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = vec![7.0; 4];
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng()).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_row(&[100.0]), 7.0);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let y = vec![0.0, 0.0, 10.0];
        let params = TreeParams {
            min_samples_leaf: 2,
            min_samples_split: 2,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, &y, &params, &mut rng()).unwrap();
        // A split would need a leaf of size 1 on one side for best fit at
        // x=1.5; with min leaf 2 the only legal split (at 0.5 or 1.5) keeps
        // ≥2 per side — at n=3 no split satisfies both sides ≥2.
        assert_eq!(tree.num_nodes(), 1);
    }

    #[test]
    fn two_feature_interaction() {
        // y = 1 iff x0 > 0.5 and x1 > 0.5.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let (a, b) = (i as f64 / 20.0, j as f64 / 20.0);
                rows.push(vec![a, b]);
                y.push(if a > 0.5 && b > 0.5 { 1.0 } else { 0.0 });
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let tree = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng()).unwrap();
        assert!(tree.predict_row(&[0.9, 0.9]) > 0.9);
        assert!(tree.predict_row(&[0.9, 0.1]) < 0.1);
        assert!(tree.predict_row(&[0.1, 0.9]) < 0.1);
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(RegressionTree::fit(&x, &[1.0, 2.0], &TreeParams::default(), &mut rng()).is_err());
        let empty = Matrix::zeros(0, 1);
        assert!(RegressionTree::fit(&empty, &[], &TreeParams::default(), &mut rng()).is_err());
    }
}
