//! Streaming, two-pass construction of the histogram training layout —
//! forest training without ever materializing the dense encoded matrix.
//!
//! The resident trainer ([`crate::forest::RandomForest::fit_on`]) takes a
//! fully materialized `rows × width` feature [`Matrix`], bins it
//! ([`crate::hist::BinnedMatrix`]), collapses the rows into joint cells
//! ([`crate::hist::CellIndex`]), and fits every tree over the cells. The
//! matrix exists only to be binned: once the cell layout is built, tree
//! fitting reads per-cell statistics plus a per-row cell id. For a 1M-row
//! view with a 60-wide one-hot encoding that transient matrix is ~480 MB
//! — the last resident-memory cliff in the cold-query path.
//!
//! This module streams the encoded rows **twice** in fixed-row chunks
//! (chunk granularity = morsel granularity, so out-of-core chunk layouts
//! line up) and builds the identical layout directly:
//!
//! 1. **Pass one** merges each feature's *exact* distinct-value set
//!    across chunks (sorted by `total_cmp`, deduplicated — the same set
//!    the resident binner sorts out of the whole column) and derives the
//!    identical split thresholds. An approximate quantile sketch would be
//!    cheaper but could pick different thresholds; exactness is what buys
//!    the bit-identity guarantee below. Features with more than
//!    [`STREAM_DISTINCT_CAP`] distinct values abort the stream (`None`),
//!    and the caller falls back to the resident path.
//! 2. **Pass two** re-streams the chunks, bins each row against the
//!    fixed splits, and replays [`crate::hist::CellIndex::build`]'s
//!    first-occurrence cell-id assignment in global row order. More than
//!    `max_cells` distinct cells also aborts to the resident path
//!    (continuous features keep the row-wise trainer).
//!
//! Peak resident footprint is O(bins × features + cells) for the layout
//! plus O(rows) for the per-row cell ids (4 B/row) and the caller's
//! target vectors (8 B/row each) — the dense matrix (8 B × width/row)
//! never exists.
//!
//! ## Determinism contract
//!
//! [`StreamedLayout::fit_forest`] is **bit-identical** (`f64::to_bits`)
//! to [`crate::forest::RandomForest::fit_on`] over the materialized
//! matrix, for any worker count and any chunk size, whenever the stream
//! succeeds: the distinct sets (hence splits), the cell ids, and the
//! per-tree `(seed, tree_index)` RNG derivation all match the resident
//! trainer exactly, and per-tree bootstrap accumulation into disjoint
//! cell-stat slabs is the same code in the same order. This is
//! property-tested across workers × chunk sizes × budgets in
//! `hyper-store`'s `prop_stream_train` suite.

use std::collections::HashMap;
use std::sync::OnceLock;

use hyper_runtime::HyperRuntime;
use hyper_storage::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::encode::TableEncoder;
use crate::error::{MlError, Result};
use crate::forest::{tree_seed, ForestParams, RandomForest};
use crate::hist::{bin_value, splits_from_distinct, BinnedFeature, BinnedMatrix, CellIndex};
use crate::matrix::Matrix;
use crate::tree::RegressionTree;

/// Pass-one cap on tracked distinct values per feature. Beyond this the
/// distinct set itself approaches O(rows) resident bytes, so the stream
/// aborts and the caller uses the resident trainer instead.
pub const STREAM_DISTINCT_CAP: usize = 1 << 16;

/// A restartable source of encoded feature chunks in global row order.
///
/// [`StreamedLayout::build`] calls [`TrainChunkSource::for_each_chunk`]
/// twice (pass one and pass two); both scans must yield the same chunks
/// in the same order. Concatenated chunk rows must equal the rows of the
/// matrix the resident encoder would produce, bit for bit — per-row
/// encodings depend only on their own row, so chunk-wise encoding
/// satisfies this by construction.
pub trait TrainChunkSource {
    /// Total rows across all chunks.
    fn num_rows(&self) -> usize;
    /// Encoded feature width (columns of every yielded chunk).
    fn num_cols(&self) -> usize;
    /// Stream every encoded chunk in row order.
    fn for_each_chunk(&mut self, f: &mut dyn FnMut(&Matrix) -> Result<()>) -> Result<()>;
}

/// Counters from one streaming layout build, surfaced through
/// `SessionStats` so out-of-core training is observable in serving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrainStreamStats {
    /// Encoded chunks streamed across both passes.
    pub chunks_streamed: u64,
    /// Peak resident bytes of the builder (distinct sets, splits, cell
    /// ids, cell bins, and the one in-flight chunk — never the dense
    /// matrix).
    pub peak_resident_bytes: u64,
}

/// The streaming trainer's materialized state: a splits-only
/// [`BinnedMatrix`] plus the joint-[`CellIndex`] — everything cell-mode
/// forest fitting needs, with no dense matrix and no per-row bin
/// vectors.
pub struct StreamedLayout {
    binned: BinnedMatrix,
    cells: CellIndex,
    rows: usize,
    stats: TrainStreamStats,
}

impl StreamedLayout {
    /// Build the layout from two streaming passes over `source`.
    ///
    /// Returns `Ok(None)` when the workload is not cell-trainable under
    /// the caps — some feature exceeds [`STREAM_DISTINCT_CAP`] distinct
    /// values, or the joint cells exceed `max_cells` (the same cap
    /// [`crate::hist::CellIndex::build`] enforces) — in which case the
    /// caller should materialize the matrix and use the resident
    /// trainer. `max_bins` is clamped exactly as
    /// [`BinnedMatrix::from_matrix`] clamps it.
    pub fn build<S: TrainChunkSource + ?Sized>(
        source: &mut S,
        max_bins: usize,
        max_cells: usize,
    ) -> Result<Option<StreamedLayout>> {
        let max_bins = max_bins.clamp(2, crate::hist::MAX_BINS);
        let n = source.num_rows();
        let d = source.num_cols();
        if n == 0 || d == 0 {
            return Ok(None);
        }
        let _span = hyper_trace::span(hyper_trace::Phase::ForestTrain);
        let mut stats = TrainStreamStats::default();

        // Pass one: exact per-feature distinct sets, merged chunk by
        // chunk.
        let mut distinct: Vec<Vec<f64>> = vec![Vec::new(); d];
        let mut chunk_vals: Vec<f64> = Vec::new();
        let mut merged: Vec<f64> = Vec::new();
        let mut overflow = false;
        source.for_each_chunk(&mut |chunk| {
            if chunk.cols() != d {
                return Err(MlError::InvalidInput(format!(
                    "chunk has {} columns, source declares {d}",
                    chunk.cols()
                )));
            }
            stats.chunks_streamed += 1;
            if overflow {
                return Ok(());
            }
            for (j, dj) in distinct.iter_mut().enumerate() {
                chunk_vals.clear();
                chunk_vals.extend((0..chunk.rows()).map(|i| chunk.get(i, j)));
                chunk_vals.sort_unstable_by(f64::total_cmp);
                chunk_vals.dedup_by(|a, b| a.total_cmp(b).is_eq());
                merge_distinct(dj, &chunk_vals, &mut merged);
                std::mem::swap(dj, &mut merged);
                if dj.len() > STREAM_DISTINCT_CAP {
                    overflow = true;
                    break;
                }
            }
            let resident = distinct.iter().map(|v| v.len() as u64 * 8).sum::<u64>()
                + (chunk.rows() * d) as u64 * 8;
            stats.peak_resident_bytes = stats.peak_resident_bytes.max(resident);
            Ok(())
        })?;
        if overflow {
            return Ok(None);
        }
        let features: Vec<BinnedFeature> = distinct
            .iter()
            .map(|dv| BinnedFeature::from_splits(splits_from_distinct(dv, max_bins)))
            .collect();
        drop(distinct);
        let splits_bytes: u64 = features.iter().map(|f| f.splits().len() as u64 * 8).sum();

        // Pass two: bin each row against the fixed splits and replay
        // `CellIndex::build`'s first-occurrence id assignment in global
        // row order.
        let mut key = vec![0u8; d];
        let mut ids: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut cell_of_row: Vec<u32> = Vec::with_capacity(n);
        let mut cell_bins: Vec<Vec<u8>> = vec![Vec::new(); d];
        let mut too_many_cells = false;
        source.for_each_chunk(&mut |chunk| {
            stats.chunks_streamed += 1;
            if too_many_cells {
                return Ok(());
            }
            for i in 0..chunk.rows() {
                for (f, k) in key.iter_mut().enumerate() {
                    *k = bin_value(features[f].splits(), chunk.get(i, f));
                }
                let next_id = ids.len() as u32;
                let id = *ids.entry(key.clone()).or_insert(next_id);
                if id == next_id {
                    if ids.len() > max_cells {
                        too_many_cells = true;
                        return Ok(());
                    }
                    for (f, bins) in cell_bins.iter_mut().enumerate() {
                        bins.push(key[f]);
                    }
                }
                cell_of_row.push(id);
            }
            let resident = splits_bytes
                + cell_of_row.len() as u64 * 4
                + ids.len() as u64 * (d as u64 + 48)
                + (ids.len() * d) as u64
                + (chunk.rows() * d) as u64 * 8;
            stats.peak_resident_bytes = stats.peak_resident_bytes.max(resident);
            Ok(())
        })?;
        if too_many_cells {
            return Ok(None);
        }
        if cell_of_row.len() != n {
            return Err(MlError::InvalidInput(format!(
                "source streamed {} rows, declared {n}",
                cell_of_row.len()
            )));
        }
        let num_cells = ids.len();
        Ok(Some(StreamedLayout {
            binned: BinnedMatrix::from_features(features, n),
            cells: CellIndex::from_parts(cell_of_row, cell_bins, num_cells),
            rows: n,
            stats,
        }))
    }

    /// Rows covered by the layout.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Distinct joint cells.
    pub fn num_cells(&self) -> usize {
        self.cells.num_cells()
    }

    /// Streaming counters from the build.
    pub fn stats(&self) -> TrainStreamStats {
        self.stats
    }

    /// Fit a forest over the streamed layout — the exact cell-mode
    /// training loop of [`RandomForest::fit_on`] (same validation, same
    /// √d feature-subsampling default, same `(seed, tree_index)` RNG
    /// derivation, same per-tree bootstrap accumulation), so the result
    /// is bit-identical to the resident trainer for any worker count.
    /// One layout can fit several forests (e.g. a numerator and a
    /// denominator model over different targets).
    pub fn fit_forest(
        &self,
        runtime: &HyperRuntime,
        y: &[f64],
        params: &ForestParams,
    ) -> Result<RandomForest> {
        if self.rows == 0 {
            return Err(MlError::InvalidInput("empty training set".into()));
        }
        if self.rows != y.len() {
            return Err(MlError::InvalidInput(format!(
                "x has {} rows, y has {}",
                self.rows,
                y.len()
            )));
        }
        if params.n_trees == 0 {
            return Err(MlError::InvalidInput("n_trees must be ≥ 1".into()));
        }
        let _span = hyper_trace::span(hyper_trace::Phase::ForestTrain);
        let mut tree_params = params.tree.clone();
        if tree_params.max_features.is_none() && self.binned.cols() > 3 {
            tree_params.max_features = Some((self.binned.cols() as f64).sqrt().ceil() as usize);
        }
        let n = self.rows;
        let cells = &self.cells;
        let slots: Vec<OnceLock<Result<RegressionTree>>> =
            (0..params.n_trees).map(|_| OnceLock::new()).collect();
        runtime.for_each_parallel(params.n_trees, |t| {
            let mut rng = StdRng::seed_from_u64(tree_seed(params.seed, t));
            let mut stats = vec![(0u32, 0.0f64, 0.0f64); cells.num_cells()];
            let cell_of_row = cells.cell_of_row();
            if params.bootstrap {
                for _ in 0..n {
                    let r = rng.gen_range(0..n);
                    let slot = &mut stats[cell_of_row[r] as usize];
                    let yv = y[r];
                    slot.0 += 1;
                    slot.1 += yv;
                    slot.2 += yv * yv;
                }
            } else {
                for (r, &yv) in y.iter().enumerate() {
                    let slot = &mut stats[cell_of_row[r] as usize];
                    slot.0 += 1;
                    slot.1 += yv;
                    slot.2 += yv * yv;
                }
            }
            let tree =
                RegressionTree::fit_cells(&self.binned, cells, &stats, &tree_params, &mut rng);
            let _ = slots[t].set(tree);
        });
        let mut trees = Vec::with_capacity(params.n_trees);
        for slot in slots {
            trees.push(slot.into_inner().expect("every tree slot is filled")?);
        }
        RandomForest::from_trees(trees)
    }
}

/// Merge two `total_cmp`-sorted deduplicated runs into `out` (cleared
/// first), keeping the result sorted and deduplicated.
fn merge_distinct(a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].total_cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// [`TrainChunkSource`] over a resident table: slices `chunk_rows`-row
/// windows (chunk granularity = morsel granularity when callers pass
/// `DEFAULT_MORSEL_ROWS`) and encodes each through a fitted
/// [`TableEncoder`]. Every encoded cell depends only on its own row, so
/// the chunked encode is bit-identical to encoding the whole table —
/// this is the `train_budget_bytes` route, where the *table* fits in
/// memory but the much wider one-hot matrix must not be materialized.
pub struct EncodedTableSource<'a> {
    encoder: &'a TableEncoder,
    table: &'a Table,
    chunk_rows: usize,
}

impl<'a> EncodedTableSource<'a> {
    /// Stream `table` through `encoder` in `chunk_rows`-row chunks
    /// (clamped to ≥ 1).
    pub fn new(
        encoder: &'a TableEncoder,
        table: &'a Table,
        chunk_rows: usize,
    ) -> EncodedTableSource<'a> {
        EncodedTableSource {
            encoder,
            table,
            chunk_rows: chunk_rows.max(1),
        }
    }
}

impl TrainChunkSource for EncodedTableSource<'_> {
    fn num_rows(&self) -> usize {
        self.table.num_rows()
    }

    fn num_cols(&self) -> usize {
        self.encoder.width()
    }

    fn for_each_chunk(&mut self, f: &mut dyn FnMut(&Matrix) -> Result<()>) -> Result<()> {
        let n = self.table.num_rows();
        let mut start = 0usize;
        while start < n {
            let len = self.chunk_rows.min(n - start);
            let slice = self.table.slice(start, len);
            let m = self.encoder.encode_table(&slice)?;
            f(&m)?;
            start += len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::{DataType, Field, Schema, TableBuilder, Value};

    fn sample(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
            Field::nullable("c", DataType::Float),
            Field::new("y", DataType::Float),
        ])
        .unwrap();
        let mut b = TableBuilder::new("t", schema);
        for i in 0..n {
            let c: Value = if i % 6 == 0 {
                Value::Null
            } else {
                Value::Float((i % 2) as f64 * 0.5)
            };
            b.push(vec![
                Value::Int((i % 4) as i64),
                ["u", "v", "w"][i % 3].into(),
                c,
                Value::Float((i % 4) as f64 + 0.25),
            ])
            .unwrap();
        }
        b.build()
    }

    fn cols() -> Vec<String> {
        vec!["a".into(), "b".into(), "c".into()]
    }

    #[test]
    fn streamed_forest_is_bit_identical_to_resident() {
        let t = sample(500);
        let enc = TableEncoder::fit(&t, &cols()).unwrap();
        let x = enc.encode_table(&t).unwrap();
        let y = TableEncoder::target_vector(&t, "y").unwrap();
        let params = ForestParams {
            n_trees: 7,
            seed: 42,
            ..Default::default()
        };
        let rt = HyperRuntime::with_workers(0);
        let resident = RandomForest::fit_on(&rt, &x, &y, &params).unwrap();
        for chunk_rows in [1usize, 7, 4096] {
            let mut src = EncodedTableSource::new(&enc, &t, chunk_rows);
            let layout = StreamedLayout::build(&mut src, crate::hist::MAX_BINS, 500 / 4)
                .unwrap()
                .expect("discrete features stay cell-trainable");
            let streamed = layout.fit_forest(&rt, &y, &params).unwrap();
            let probe: Vec<f64> = (0..x.cols()).map(|j| x.get(3, j)).collect();
            assert_eq!(
                resident.predict_row(&probe).to_bits(),
                streamed.predict_row(&probe).to_bits(),
                "chunk_rows={chunk_rows}"
            );
            assert_eq!(resident.num_trees(), streamed.num_trees());
            assert!(layout.stats().chunks_streamed >= 2);
            assert!(layout.stats().peak_resident_bytes > 0);
        }
    }

    #[test]
    fn cell_cap_overflow_falls_back_to_none() {
        let t = sample(200);
        let enc = TableEncoder::fit(&t, &cols()).unwrap();
        let mut src = EncodedTableSource::new(&enc, &t, 64);
        // A 1-cell cap cannot hold the joint distinct cells.
        let layout = StreamedLayout::build(&mut src, crate::hist::MAX_BINS, 1).unwrap();
        assert!(layout.is_none());
    }

    #[test]
    fn empty_source_is_none() {
        let t = sample(0);
        let enc = TableEncoder::fit(&t, &cols()).unwrap();
        let mut src = EncodedTableSource::new(&enc, &t, 64);
        assert!(StreamedLayout::build(&mut src, 255, 64).unwrap().is_none());
    }

    #[test]
    fn merge_distinct_keeps_sorted_dedup() {
        let mut out = Vec::new();
        merge_distinct(&[1.0, 3.0, 5.0], &[0.0, 3.0, 9.0], &mut out);
        assert_eq!(out, vec![0.0, 1.0, 3.0, 5.0, 9.0]);
        merge_distinct(&[], &[2.0], &mut out);
        assert_eq!(out, vec![2.0]);
    }
}
