//! Discretization of continuous attributes (paper §4.3 and §5.4: "HypeR
//! bucketizes all continuous attributes before solving the integer program";
//! Figure 9 sweeps the number of equi-width buckets).

use hyper_storage::Value;

use crate::error::{MlError, Result};

/// Binning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinStrategy {
    /// Equal-width bins over `[min, max]` (the paper's choice).
    EquiWidth,
    /// Equal-frequency (quantile) bins.
    EquiFrequency,
}

/// A fitted discretizer: bin edges plus representative midpoints.
#[derive(Debug, Clone)]
pub struct Discretizer {
    edges: Vec<f64>,
    midpoints: Vec<f64>,
}

impl Discretizer {
    /// Fit `k` bins over the numeric data.
    pub fn fit(values: &[f64], k: usize, strategy: BinStrategy) -> Result<Discretizer> {
        if k == 0 {
            return Err(MlError::InvalidInput("k must be ≥ 1".into()));
        }
        if values.is_empty() {
            return Err(MlError::InvalidInput("no values to discretize".into()));
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return Err(MlError::InvalidInput("no finite values".into()));
        }
        sorted.sort_by(f64::total_cmp);
        let lo = sorted[0];
        let hi = *sorted.last().expect("non-empty");

        let edges: Vec<f64> = match strategy {
            BinStrategy::EquiWidth => {
                let width = (hi - lo) / k as f64;
                (0..=k).map(|i| lo + width * i as f64).collect()
            }
            BinStrategy::EquiFrequency => {
                let n = sorted.len();
                let mut e: Vec<f64> = (0..=k)
                    .map(|i| {
                        let pos = (i * (n - 1)) / k;
                        sorted[pos]
                    })
                    .collect();
                e.dedup();
                // Degenerate distributions can collapse edges; pad to ≥ 2.
                if e.len() < 2 {
                    e = vec![lo, hi];
                }
                e
            }
        };
        let midpoints = edges.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect();
        Ok(Discretizer { edges, midpoints })
    }

    /// Fit over a column of [`Value`]s (non-numeric values are an error).
    pub fn fit_values(values: &[Value], k: usize, strategy: BinStrategy) -> Result<Discretizer> {
        let xs: Vec<f64> = values
            .iter()
            .filter(|v| !v.is_null())
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| MlError::InvalidInput(format!("non-numeric value {v}")))
            })
            .collect::<Result<_>>()?;
        Discretizer::fit(&xs, k, strategy)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.midpoints.len()
    }

    /// Bin edges (length `num_bins() + 1`).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Bin midpoints — the candidate values the how-to IP enumerates.
    pub fn midpoints(&self) -> &[f64] {
        &self.midpoints
    }

    /// Index of the bin containing `x` (clamped to the outer bins).
    pub fn bin_of(&self, x: f64) -> usize {
        if x <= self.edges[0] {
            return 0;
        }
        let last = self.num_bins() - 1;
        if x >= self.edges[self.edges.len() - 1] {
            return last;
        }
        // Binary search over edges.
        let mut lo = 0usize;
        let mut hi = self.edges.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if x < self.edges[mid] {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo.min(last)
    }

    /// Replace `x` with its bin midpoint.
    pub fn transform(&self, x: f64) -> f64 {
        self.midpoints[self.bin_of(x)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_edges() {
        let d = Discretizer::fit(&[0.0, 10.0], 5, BinStrategy::EquiWidth).unwrap();
        assert_eq!(d.num_bins(), 5);
        assert_eq!(d.edges(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(d.midpoints(), &[1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn bin_assignment_and_transform() {
        let d = Discretizer::fit(&[0.0, 10.0], 5, BinStrategy::EquiWidth).unwrap();
        assert_eq!(d.bin_of(-1.0), 0);
        assert_eq!(d.bin_of(0.5), 0);
        assert_eq!(d.bin_of(4.5), 2);
        assert_eq!(d.bin_of(10.0), 4);
        assert_eq!(d.bin_of(99.0), 4);
        assert_eq!(d.transform(4.5), 5.0);
    }

    #[test]
    fn equi_frequency_balances_counts() {
        // Heavily skewed data: quantile bins adapt.
        let mut xs: Vec<f64> = (0..90).map(|i| i as f64 / 100.0).collect();
        xs.extend((0..10).map(|i| 100.0 + i as f64));
        let d = Discretizer::fit(&xs, 4, BinStrategy::EquiFrequency).unwrap();
        assert!(d.num_bins() >= 2);
        // Most mass is below 1.0, so at least two edges are below 1.0.
        assert!(d.edges().iter().filter(|&&e| e < 1.0).count() >= 2);
    }

    #[test]
    fn single_bin_and_constant_data() {
        let d = Discretizer::fit(&[5.0, 5.0, 5.0], 3, BinStrategy::EquiWidth).unwrap();
        assert_eq!(d.transform(5.0), 5.0);
        let d = Discretizer::fit(&[1.0, 9.0], 1, BinStrategy::EquiWidth).unwrap();
        assert_eq!(d.num_bins(), 1);
        assert_eq!(d.transform(3.3), 5.0);
    }

    #[test]
    fn invalid_inputs() {
        assert!(Discretizer::fit(&[], 3, BinStrategy::EquiWidth).is_err());
        assert!(Discretizer::fit(&[1.0], 0, BinStrategy::EquiWidth).is_err());
        assert!(Discretizer::fit_values(&[Value::str("x")], 2, BinStrategy::EquiWidth).is_err());
    }

    #[test]
    fn fit_values_skips_nulls() {
        let vals = vec![Value::Float(1.0), Value::Null, Value::Float(3.0)];
        let d = Discretizer::fit_values(&vals, 2, BinStrategy::EquiWidth).unwrap();
        assert_eq!(d.edges(), &[1.0, 2.0, 3.0]);
    }
}
