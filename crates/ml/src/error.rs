//! Error type for the ML subsystem.

use std::fmt;

/// Errors raised by estimators and encoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Training data is empty or shapes disagree.
    InvalidInput(String),
    /// A categorical value unseen at fit time was encountered and the
    /// encoder is configured to reject unknowns.
    UnknownCategory(String),
    /// Model was used before fitting.
    NotFitted,
    /// Numerical failure (singular system etc.).
    Numerical(String),
    /// Propagated storage error.
    Storage(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            MlError::UnknownCategory(m) => write!(f, "unknown category: {m}"),
            MlError::NotFitted => write!(f, "model not fitted"),
            MlError::Numerical(m) => write!(f, "numerical error: {m}"),
            MlError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for MlError {}

impl From<hyper_storage::StorageError> for MlError {
    fn from(e: hyper_storage::StorageError) -> Self {
        MlError::Storage(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MlError>;
