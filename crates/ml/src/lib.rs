//! # hyper-ml
//!
//! The ML substrate of the HypeR reproduction: the conditional-probability
//! estimators of paper §3.3 and §A.4. HypeR "uses the input database D to
//! learn a single regression function … to estimate the conditional
//! probability distribution"; the authors used sklearn's
//! `RandomForestRegressor`. Everything here is implemented from scratch:
//!
//! * [`matrix`] — dense feature matrices;
//! * [`encode`] — table → feature-vector encoding (one-hot categoricals);
//! * [`hist`] — histogram binning of feature matrices (bin once per
//!   forest, search splits per node over bins instead of sorts);
//! * [`tree`] / [`forest`] — CART regression trees and bagged forests
//!   (trees train in parallel over the
//!   [`hyper_runtime::HyperRuntime`] worker pool, deterministically for a
//!   fixed seed whatever the worker count);
//! * [`stream`] — streaming, two-pass construction of the histogram
//!   training layout over chunked sources, so the dense encoded matrix
//!   never materializes for cell-trainable workloads;
//! * [`linear`] — OLS/ridge for the how-to objective linearization (§4.3);
//! * [`discretize`] — equi-width/equi-frequency bucketization (§4.3, Fig 9);
//! * [`metrics`] — MSE/MAE/R².
//!
//! ## The training pipeline
//!
//! Forest training has two equivalent routes:
//!
//! * **Resident**: encode the view to a dense `rows × width`
//!   [`Matrix`], bin it ([`BinnedMatrix`]), collapse rows into joint
//!   cells ([`hist::CellIndex`]), fit every tree over per-cell
//!   statistics ([`RandomForest::fit_on`]). Trees fan out over the
//!   [`hyper_runtime::HyperRuntime`] worker pool.
//! * **Streaming** ([`StreamedLayout`]): two chunk-at-a-time passes
//!   over a [`TrainChunkSource`] — pass one merges each feature's exact
//!   distinct-value set to fix the bin splits, pass two bins rows
//!   against the fixed splits and replays the cell-id assignment — so
//!   peak resident bytes are O(bins × features + cells) + O(rows) for
//!   cell ids and targets, never O(rows × width).
//!
//! Both routes are **bit-identical** (`f64::to_bits`) for any worker
//! count and chunk size: splits derive from the same distinct sets,
//! cell ids from the same first-occurrence order, and each tree's RNG
//! from the same `(seed, tree_index)` scramble. The streaming route
//! declines (returns `None`) when a feature exceeds
//! [`STREAM_DISTINCT_CAP`] distinct values or the joint cells exceed
//! the resident trainer's cell cap — callers then fall back to the
//! resident route, which handles continuous features row-wise.

#![warn(missing_docs)]

pub mod discretize;
pub mod encode;
pub mod error;
pub mod forest;
pub mod hist;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod stream;
pub mod tree;

pub use discretize::{BinStrategy, Discretizer};
pub use encode::{ColumnEncoding, EncoderFitState, TableEncoder};
pub use error::{MlError, Result};
pub use forest::{ForestParams, RandomForest};
pub use hist::{BinnedMatrix, MAX_BINS};
pub use linear::LinearModel;
pub use matrix::Matrix;
pub use stream::{
    EncodedTableSource, StreamedLayout, TrainChunkSource, TrainStreamStats, STREAM_DISTINCT_CAP,
};
pub use tree::{RegressionTree, TreeNode, TreeParams};
