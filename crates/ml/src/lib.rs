//! # hyper-ml
//!
//! The ML substrate of the HypeR reproduction: the conditional-probability
//! estimators of paper §3.3 and §A.4. HypeR "uses the input database D to
//! learn a single regression function … to estimate the conditional
//! probability distribution"; the authors used sklearn's
//! `RandomForestRegressor`. Everything here is implemented from scratch:
//!
//! * [`matrix`] — dense feature matrices;
//! * [`encode`] — table → feature-vector encoding (one-hot categoricals);
//! * [`hist`] — histogram binning of feature matrices (bin once per
//!   forest, search splits per node over bins instead of sorts);
//! * [`tree`] / [`forest`] — CART regression trees and bagged forests
//!   (trees train in parallel over the
//!   [`hyper_runtime::HyperRuntime`] worker pool, deterministically for a
//!   fixed seed whatever the worker count);
//! * [`linear`] — OLS/ridge for the how-to objective linearization (§4.3);
//! * [`discretize`] — equi-width/equi-frequency bucketization (§4.3, Fig 9);
//! * [`metrics`] — MSE/MAE/R².

#![warn(missing_docs)]

pub mod discretize;
pub mod encode;
pub mod error;
pub mod forest;
pub mod hist;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod tree;

pub use discretize::{BinStrategy, Discretizer};
pub use encode::{ColumnEncoding, TableEncoder};
pub use error::{MlError, Result};
pub use forest::{ForestParams, RandomForest};
pub use hist::{BinnedMatrix, MAX_BINS};
pub use linear::LinearModel;
pub use matrix::Matrix;
pub use tree::{RegressionTree, TreeNode, TreeParams};
