//! Regression quality metrics.

/// Mean squared error.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Coefficient of determination R².
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn known_values() {
        let pred = [1.0, 2.0];
        let truth = [2.0, 4.0];
        assert_eq!(mse(&pred, &truth), (1.0 + 4.0) / 2.0);
        assert_eq!(mae(&pred, &truth), 1.5);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r2(&pred, &truth).abs() < 1e-12);
    }

    #[test]
    fn constant_truth_edge_case() {
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&[4.0, 6.0], &[5.0, 5.0]), 0.0);
    }
}
