//! Histogram binning of feature matrices for fast tree training.
//!
//! CART split search over raw features costs a sort per (node, feature).
//! HypeR's feature matrices come off typed columnar storage — dictionary
//! codes one-hot encoded to {0, 1} and small discrete numeric domains —
//! so almost every feature has a handful of distinct values. Binning each
//! feature **once per forest** into at most [`MAX_BINS`] ordered bins
//! turns each node's split search into one O(rows-in-node) histogram
//! accumulation plus an O(bins) boundary scan, shared by every tree.
//!
//! Bin boundaries are midpoints between adjacent *distinct* feature
//! values, exactly the thresholds exhaustive CART would consider — so for
//! features with ≤ [`MAX_BINS`] distinct values (every dictionary-coded
//! or one-hot feature) the binned search examines the identical candidate
//! split set. Features with more distinct values (continuous columns)
//! keep every `distinct/MAX_BINS`-quantile boundary, the standard
//! histogram-gradient-boosting approximation.

/// Maximum number of bins per feature; bin ids fit in a `u8`.
pub const MAX_BINS: usize = 255;

use crate::matrix::Matrix;

/// One binned feature: a per-row bin id plus the real-valued thresholds
/// between adjacent bins (`splits()[b]` separates bin `b` from bin
/// `b + 1`; a tree split "bin ≤ b" is the predicate `value ≤ splits[b]`).
///
/// Fields are private to preserve the invariant the unchecked training
/// loops rely on: every bin id is `< num_bins()`, and `bins().len()`
/// equals the source matrix's row count.
pub struct BinnedFeature {
    /// Per-row bin id, ascending in feature value.
    bins: Vec<u8>,
    /// Candidate thresholds, one between each adjacent bin pair.
    splits: Vec<f64>,
}

impl BinnedFeature {
    /// A splits-only view with **no per-row bins**, for the streaming
    /// trainer (`crate::stream`): cell-mode tree fitting reads only
    /// `num_bins()` / `splits()` plus the [`CellIndex`], never the
    /// per-row bin ids, so the dense bin vector need not exist.
    pub(crate) fn from_splits(splits: Vec<f64>) -> BinnedFeature {
        BinnedFeature {
            bins: Vec::new(),
            splits,
        }
    }

    /// Number of bins (`splits().len() + 1`, or 1 for a constant feature).
    pub fn num_bins(&self) -> usize {
        self.splits.len() + 1
    }

    /// Per-row bin ids (ascending in feature value).
    pub fn bins(&self) -> &[u8] {
        &self.bins
    }

    /// Candidate thresholds between adjacent bins.
    pub fn splits(&self) -> &[f64] {
        &self.splits
    }
}

/// A feature matrix binned column-wise: the immutable, share-everything
/// input to binned tree fitting. Built once per forest; every tree reads
/// the same bins through its own bootstrap index set.
pub struct BinnedMatrix {
    n_rows: usize,
    /// One binned view per feature, in matrix column order.
    features: Vec<BinnedFeature>,
}

impl BinnedMatrix {
    /// Bin every column of `x` into at most `max_bins` ordered bins.
    pub fn from_matrix(x: &Matrix, max_bins: usize) -> BinnedMatrix {
        let max_bins = max_bins.clamp(2, MAX_BINS);
        let n = x.rows();
        let mut features = Vec::with_capacity(x.cols());
        let mut column = vec![0.0f64; n];
        for j in 0..x.cols() {
            for (i, slot) in column.iter_mut().enumerate() {
                *slot = x.get(i, j);
            }
            features.push(bin_column(&column, max_bins));
        }
        BinnedMatrix {
            n_rows: n,
            features,
        }
    }

    /// Assemble from pre-built (possibly splits-only) features — the
    /// streaming trainer's constructor.
    pub(crate) fn from_features(features: Vec<BinnedFeature>, n_rows: usize) -> BinnedMatrix {
        BinnedMatrix { n_rows, features }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn cols(&self) -> usize {
        self.features.len()
    }

    /// The binned view of feature `j`.
    pub fn feature(&self, j: usize) -> &BinnedFeature {
        &self.features[j]
    }
}

/// The joint-cell decomposition of a binned matrix: rows sharing the same
/// bin vector across every feature are indistinguishable to a tree (the
/// split predicates cannot separate them), so training only needs
/// per-cell statistics. This is the paper's §3.3 support-index insight
/// applied to *fitting*: over HypeR's discrete adjustment sets a 10k-row
/// view collapses to a few hundred cells, and each forest tree fits over
/// the cells in microseconds after one O(rows) weighted pass.
///
/// Built only when the distinct-cell count stays under the requested cap
/// ([`CellIndex::build`] returns `None` otherwise — continuous features
/// keep the row-wise path).
pub struct CellIndex {
    /// Cell id of each row.
    cell_of_row: Vec<u32>,
    /// Per-feature bin id of each cell (`cell_bins[f][cell]`).
    cell_bins: Vec<Vec<u8>>,
    num_cells: usize,
}

impl CellIndex {
    /// Group the rows of `data` by their joint bin vector; `None` when
    /// more than `max_cells` distinct cells exist.
    pub fn build(data: &BinnedMatrix, max_cells: usize) -> Option<CellIndex> {
        use std::collections::HashMap;
        let n = data.rows();
        let d = data.cols();
        let mut key = vec![0u8; d];
        let mut ids: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut cell_of_row = Vec::with_capacity(n);
        let mut cell_bins: Vec<Vec<u8>> = vec![Vec::new(); d];
        for i in 0..n {
            for (f, k) in key.iter_mut().enumerate() {
                *k = data.features[f].bins[i];
            }
            let next_id = ids.len() as u32;
            let id = *ids.entry(key.clone()).or_insert(next_id);
            if id == next_id {
                if ids.len() > max_cells {
                    return None;
                }
                for (f, bins) in cell_bins.iter_mut().enumerate() {
                    bins.push(key[f]);
                }
            }
            cell_of_row.push(id);
        }
        Some(CellIndex {
            cell_of_row,
            cell_bins,
            num_cells: ids.len(),
        })
    }

    /// Assemble from pre-computed parts (the streaming builder replays
    /// [`CellIndex::build`]'s exact first-occurrence id assignment
    /// chunk-at-a-time; see `crate::stream`).
    pub(crate) fn from_parts(
        cell_of_row: Vec<u32>,
        cell_bins: Vec<Vec<u8>>,
        num_cells: usize,
    ) -> CellIndex {
        CellIndex {
            cell_of_row,
            cell_bins,
            num_cells,
        }
    }

    /// Number of distinct cells.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Cell id of each row.
    pub fn cell_of_row(&self) -> &[u32] {
        &self.cell_of_row
    }

    /// Bin id of each cell under feature `f` (aligned with cell ids).
    pub fn cell_bins(&self, f: usize) -> &[u8] {
        &self.cell_bins[f]
    }
}

/// Bin one feature column: distinct values become bins (midpoint
/// thresholds); above `max_bins` distinct values, thresholds thin to
/// evenly-spaced distinct-value quantiles.
fn bin_column(values: &[f64], max_bins: usize) -> BinnedFeature {
    let mut distinct: Vec<f64> = values.to_vec();
    distinct.sort_unstable_by(f64::total_cmp);
    distinct.dedup_by(|a, b| a.total_cmp(b).is_eq());

    let splits = splits_from_distinct(&distinct, max_bins);
    let bins: Vec<u8> = values.iter().map(|&v| bin_value(&splits, v)).collect();
    BinnedFeature { bins, splits }
}

/// Thresholds for a feature whose sorted (by `total_cmp`), deduplicated
/// distinct values are `distinct` — shared by the resident
/// [`bin_column`] and the streaming pass-one binner so both produce the
/// same splits from the same distinct set.
pub(crate) fn splits_from_distinct(distinct: &[f64], max_bins: usize) -> Vec<f64> {
    let m = distinct.len();
    if m <= 1 {
        Vec::new()
    } else if m <= max_bins {
        (0..m - 1)
            .map(|i| midpoint(distinct[i], distinct[i + 1]))
            .collect()
    } else {
        // Quantile thinning over the distinct values: boundary k sits
        // between distinct values ⌊k·m/max_bins⌋−1 and ⌊k·m/max_bins⌋.
        let mut cuts = Vec::with_capacity(max_bins - 1);
        for k in 1..max_bins {
            let pos = k * m / max_bins;
            if pos == 0 || pos >= m {
                continue;
            }
            cuts.push(midpoint(distinct[pos - 1], distinct[pos]));
        }
        cuts.dedup_by(|a, b| a.total_cmp(b).is_eq());
        cuts
    }
}

/// The bin id of `v` under `splits` (the same `partition_point` the
/// resident binner uses).
pub(crate) fn bin_value(splits: &[f64], v: f64) -> u8 {
    splits.partition_point(|s| *s < v) as u8
}

/// Midpoint that can never round onto either endpoint into a degenerate
/// threshold: the result must be *strictly* between `lo` and `hi`, or the
/// boundary falls back to `lo` itself (a threshold of `lo` still
/// separates the pair, since bin assignment tests `split < value`).
/// Rounding the average onto `hi` is common for adjacent floats; landing
/// on it would fuse the two values into one bin and silently delete
/// their candidate split.
fn midpoint(lo: f64, hi: f64) -> f64 {
    let mid = lo + (hi - lo) / 2.0;
    if mid > lo && mid < hi {
        mid
    } else {
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_domain_bins_are_exact_distinct_values() {
        let vals = [2.0, 0.0, 1.0, 2.0, 0.0];
        let f = bin_column(&vals, 255);
        assert_eq!(f.num_bins(), 3);
        assert_eq!(f.splits, vec![0.5, 1.5]);
        assert_eq!(f.bins, vec![2, 0, 1, 2, 0]);
    }

    #[test]
    fn adjacent_floats_stay_separable() {
        // lo and its immediate successor: the arithmetic midpoint rounds
        // onto one endpoint, so the threshold must fall back to `lo` and
        // the two values must still land in different bins.
        let lo = 1.0f64;
        let hi = f64::from_bits(lo.to_bits() + 1);
        let f = bin_column(&[lo, hi, lo], 255);
        assert_eq!(f.num_bins(), 2);
        assert_eq!(f.bins(), &[0, 1, 0]);
        let t = f.splits()[0];
        assert!(lo <= t && t < hi, "threshold {t} separates {lo} from {hi}");
    }

    #[test]
    fn constant_feature_has_one_bin() {
        let f = bin_column(&[7.0; 10], 255);
        assert_eq!(f.num_bins(), 1);
        assert!(f.splits.is_empty());
        assert!(f.bins.iter().all(|&b| b == 0));
    }

    #[test]
    fn wide_domain_thins_to_quantile_boundaries() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let f = bin_column(&vals, 8);
        assert_eq!(f.num_bins(), 8);
        // Bins are ordered and balanced-ish.
        let mut counts = [0usize; 8];
        for &b in &f.bins {
            counts[b as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 100));
        // Bin order respects value order.
        assert!(f.bins.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn matrix_binning_is_column_aligned() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 10.0], vec![1.0, 20.0]]).unwrap();
        let b = BinnedMatrix::from_matrix(&x, 255);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 2);
        assert_eq!(b.feature(0).bins(), &[0, 1, 0]);
        assert_eq!(b.feature(1).bins(), &[0, 0, 1]);
    }
}
