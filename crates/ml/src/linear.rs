//! Ordinary least squares with optional ridge regularization, solved by
//! Gaussian elimination on the normal equations.
//!
//! Used by the how-to optimizer to linearize the what-if objective (§4.3:
//! "the corresponding what-if query is estimated as a linear expression …
//! training a regression function over the dataset").

use crate::error::{MlError, Result};
use crate::matrix::Matrix;

/// A fitted linear model `y = intercept + Σ coef·x`.
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// Intercept term.
    pub intercept: f64,
    /// Per-feature coefficients.
    pub coefs: Vec<f64>,
}

impl LinearModel {
    /// Fit by least squares with ridge penalty `l2` (0 for plain OLS; a tiny
    /// ridge keeps collinear systems solvable).
    #[allow(clippy::needless_range_loop)]
    pub fn fit(x: &Matrix, y: &[f64], l2: f64) -> Result<LinearModel> {
        let n = x.rows();
        let d = x.cols();
        if n == 0 {
            return Err(MlError::InvalidInput("empty training set".into()));
        }
        if n != y.len() {
            return Err(MlError::InvalidInput(format!(
                "x has {n} rows, y has {}",
                y.len()
            )));
        }
        // Augmented design: [1, x]; normal equations A β = b with
        // A = Xᵀ X + λ diag(0, 1, …), b = Xᵀ y.
        let k = d + 1;
        let mut a = vec![0.0f64; k * k];
        let mut b = vec![0.0f64; k];
        let mut xi = vec![0.0f64; k];
        for i in 0..n {
            xi[0] = 1.0;
            xi[1..].copy_from_slice(x.row(i));
            for r in 0..k {
                b[r] += xi[r] * y[i];
                for c in 0..k {
                    a[r * k + c] += xi[r] * xi[c];
                }
            }
        }
        for r in 1..k {
            a[r * k + r] += l2;
        }
        let beta = solve(&mut a, &mut b, k)?;
        Ok(LinearModel {
            intercept: beta[0],
            coefs: beta[1..].to_vec(),
        })
    }

    /// Predict one sample.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.intercept + self.coefs.iter().zip(row).map(|(c, x)| c * x).sum::<f64>()
    }

    /// Batch prediction.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }
}

/// Solve `A β = b` in place (partial-pivot Gaussian elimination).
fn solve(a: &mut [f64], b: &mut [f64], k: usize) -> Result<Vec<f64>> {
    for col in 0..k {
        // Pivot.
        let mut pivot = col;
        for r in col + 1..k {
            if a[r * k + col].abs() > a[pivot * k + col].abs() {
                pivot = r;
            }
        }
        if a[pivot * k + col].abs() < 1e-12 {
            return Err(MlError::Numerical(format!(
                "singular normal equations at column {col}"
            )));
        }
        if pivot != col {
            for c in 0..k {
                a.swap(col * k + c, pivot * k + c);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        for r in col + 1..k {
            let factor = a[r * k + col] / a[col * k + col];
            if factor == 0.0 {
                continue;
            }
            for c in col..k {
                a[r * k + c] -= factor * a[col * k + c];
            }
            b[r] -= factor * b[col];
        }
    }
    // Back-substitute.
    let mut beta = vec![0.0; k];
    for col in (0..k).rev() {
        let mut acc = b[col];
        for c in col + 1..k {
            acc -= a[col * k + c] * beta[c];
        }
        beta[col] = acc / a[col * k + col];
    }
    Ok(beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_coefficients() {
        // y = 3 + 2a − b.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let m = LinearModel::fit(&x, &y, 0.0).unwrap();
        assert!((m.intercept - 3.0).abs() < 1e-8);
        assert!((m.coefs[0] - 2.0).abs() < 1e-8);
        assert!((m.coefs[1] + 1.0).abs() < 1e-8);
        assert!((m.predict_row(&[10.0, 2.0]) - 21.0).abs() < 1e-8);
    }

    #[test]
    fn ridge_handles_collinearity() {
        // Perfectly collinear features: OLS singular, ridge solvable.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        assert!(LinearModel::fit(&x, &y, 0.0).is_err());
        let m = LinearModel::fit(&x, &y, 1e-6).unwrap();
        assert!((m.predict_row(&[10.0, 20.0]) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn intercept_only_model() {
        let x = Matrix::zeros(4, 0);
        let m = LinearModel::fit(&x, &[2.0, 4.0, 6.0, 8.0], 0.0).unwrap();
        assert!((m.intercept - 5.0).abs() < 1e-10);
        assert!(m.coefs.is_empty());
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(LinearModel::fit(&x, &[1.0, 2.0], 0.0).is_err());
        assert!(LinearModel::fit(&Matrix::zeros(0, 1), &[], 0.0).is_err());
    }
}
