//! Feature encoding: map relational rows to numeric feature vectors.
//!
//! Numeric columns pass through; categorical (string/bool) columns are
//! one-hot encoded over the categories observed at fit time. The encoder is
//! reused at prediction time to encode hypothetical rows consistently.

use std::collections::HashMap;

use hyper_storage::{Table, Value};

use crate::error::{MlError, Result};
use crate::matrix::Matrix;

#[derive(Debug, Clone)]
enum ColumnEncoding {
    /// Pass the numeric value through (NULL → column mean seen at fit).
    Numeric { mean: f64 },
    /// One-hot over observed categories; unseen categories encode to all
    /// zeros.
    OneHot { categories: Vec<Value> },
}

/// Fitted table→matrix encoder.
#[derive(Debug, Clone)]
pub struct TableEncoder {
    columns: Vec<String>,
    encodings: Vec<ColumnEncoding>,
    width: usize,
}

impl TableEncoder {
    /// Fit an encoder over the named columns of `table`.
    pub fn fit(table: &Table, columns: &[String]) -> Result<TableEncoder> {
        let mut encodings = Vec::with_capacity(columns.len());
        let mut width = 0usize;
        for name in columns {
            let idx = table.schema().index_of(name)?;
            let values = table.column(idx);
            let numeric = values.iter().all(|v| v.is_null() || v.as_f64().is_some());
            let has_non_null = values.iter().any(|v| !v.is_null());
            if numeric && has_non_null {
                let (mut sum, mut n) = (0.0, 0usize);
                for v in values {
                    if let Some(x) = v.as_f64() {
                        sum += x;
                        n += 1;
                    }
                }
                encodings.push(ColumnEncoding::Numeric {
                    mean: sum / n as f64,
                });
                width += 1;
            } else {
                let mut cats: Vec<Value> = Vec::new();
                let mut seen: HashMap<Value, ()> = HashMap::new();
                for v in values {
                    if !v.is_null() && seen.insert(v.clone(), ()).is_none() {
                        cats.push(v.clone());
                    }
                }
                cats.sort();
                width += cats.len();
                encodings.push(ColumnEncoding::OneHot { categories: cats });
            }
        }
        Ok(TableEncoder {
            columns: columns.to_vec(),
            encodings,
            width,
        })
    }

    /// Number of output features.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encoded width contributed by each input column, in order.
    pub fn column_widths(&self) -> Vec<usize> {
        self.encodings
            .iter()
            .map(|e| match e {
                ColumnEncoding::Numeric { .. } => 1,
                ColumnEncoding::OneHot { categories } => categories.len(),
            })
            .collect()
    }

    /// The input column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Encode one logical row given as values aligned with `columns()`.
    pub fn encode_values(&self, values: &[Value]) -> Result<Vec<f64>> {
        if values.len() != self.encodings.len() {
            return Err(MlError::InvalidInput(format!(
                "expected {} values, got {}",
                self.encodings.len(),
                values.len()
            )));
        }
        let mut out = Vec::with_capacity(self.width);
        for (v, enc) in values.iter().zip(&self.encodings) {
            match enc {
                ColumnEncoding::Numeric { mean } => {
                    out.push(v.as_f64().unwrap_or(*mean));
                }
                ColumnEncoding::OneHot { categories } => {
                    for c in categories {
                        out.push(if v == c { 1.0 } else { 0.0 });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Encode every row of `table` (must contain the fitted columns).
    pub fn encode_table(&self, table: &Table) -> Result<Matrix> {
        let idxs: Vec<usize> = self
            .columns
            .iter()
            .map(|c| table.schema().index_of(c))
            .collect::<hyper_storage::Result<_>>()?;
        let mut m = Matrix::zeros(0, 0);
        let mut buf: Vec<Value> = Vec::with_capacity(idxs.len());
        for i in 0..table.num_rows() {
            buf.clear();
            for &c in &idxs {
                buf.push(table.get(i, c).clone());
            }
            let row = self.encode_values(&buf)?;
            m.push_row(&row)?;
        }
        if table.num_rows() == 0 {
            // Preserve the width even for empty inputs.
            m = Matrix::zeros(0, self.width);
        }
        Ok(m)
    }

    /// Extract a numeric target column.
    pub fn target_vector(table: &Table, column: &str) -> Result<Vec<f64>> {
        let idx = table.schema().index_of(column)?;
        table
            .column(idx)
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| MlError::InvalidInput(format!("non-numeric target value {v}")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::{DataType, Field, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("color", DataType::Str),
            Field::nullable("score", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        t.push_row(vec![30.into(), "red".into(), 1.0.into()])
            .unwrap();
        t.push_row(vec![40.into(), "blue".into(), Value::Null])
            .unwrap();
        t.push_row(vec![50.into(), "red".into(), 3.0.into()])
            .unwrap();
        t
    }

    #[test]
    fn mixed_encoding_width() {
        let enc =
            TableEncoder::fit(&table(), &["age".into(), "color".into(), "score".into()]).unwrap();
        // age (1) + color one-hot (2) + score (1) = 4.
        assert_eq!(enc.width(), 4);
        let m = enc.encode_table(&table()).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        // Row 0: age=30, blue=0, red=1, score=1.0 (categories sorted).
        assert_eq!(m.row(0), &[30.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn null_numeric_imputes_mean() {
        let enc = TableEncoder::fit(&table(), &["score".into()]).unwrap();
        let m = enc.encode_table(&table()).unwrap();
        assert_eq!(m.get(1, 0), 2.0, "NULL imputed with mean of {{1, 3}}");
    }

    #[test]
    fn unseen_category_encodes_to_zeros() {
        let enc = TableEncoder::fit(&table(), &["color".into()]).unwrap();
        let v = enc.encode_values(&["green".into()]).unwrap();
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn value_arity_checked() {
        let enc = TableEncoder::fit(&table(), &["color".into()]).unwrap();
        assert!(enc.encode_values(&["red".into(), 1.into()]).is_err());
    }

    #[test]
    fn target_vector_extraction() {
        let y = TableEncoder::target_vector(&table(), "age").unwrap();
        assert_eq!(y, vec![30.0, 40.0, 50.0]);
        assert!(TableEncoder::target_vector(&table(), "color").is_err());
    }

    #[test]
    fn empty_table_keeps_width() {
        let t = table();
        let enc = TableEncoder::fit(&t, &["age".into(), "color".into()]).unwrap();
        let empty = t.gather(&[]);
        let m = enc.encode_table(&empty).unwrap();
        assert_eq!(m.rows(), 0);
        assert_eq!(m.cols(), 3);
    }
}
