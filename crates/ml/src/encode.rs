//! Feature encoding: map relational rows to numeric feature vectors.
//!
//! Numeric columns pass through; categorical (string/bool) columns are
//! one-hot encoded over the categories observed at fit time. The encoder is
//! reused at prediction time to encode hypothetical rows consistently.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Mutex;

use hyper_runtime::HyperRuntime;
use hyper_storage::{Column, DataType, Table, Value, DEFAULT_MORSEL_ROWS, PARALLEL_ROW_THRESHOLD};

use crate::error::{MlError, Result};
use crate::matrix::Matrix;

/// How one input column maps to feature dimensions. Public so fitted
/// encoders can be serialized ([`TableEncoder::parts`] /
/// [`TableEncoder::from_parts`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnEncoding {
    /// Pass the numeric value through (NULL → column mean seen at fit).
    Numeric {
        /// Mean observed at fit time, imputed for NULLs.
        mean: f64,
    },
    /// One-hot over observed categories; unseen categories encode to all
    /// zeros.
    OneHot {
        /// Fitted categories, one feature dimension each (sorted).
        categories: Vec<Value>,
    },
}

/// Fitted table→matrix encoder.
#[derive(Debug, Clone)]
pub struct TableEncoder {
    columns: Vec<String>,
    encodings: Vec<ColumnEncoding>,
    width: usize,
}

impl TableEncoder {
    /// Fit an encoder over the named columns of `table`. Statistics come
    /// straight off the typed buffers: numeric means are slice sums, and
    /// string categories are the dictionary codes observed in the column
    /// (no per-cell `Value` hashing).
    pub fn fit(table: &Table, columns: &[String]) -> Result<TableEncoder> {
        let _span = hyper_trace::span(hyper_trace::Phase::EncoderFit);
        let mut encodings = Vec::with_capacity(columns.len());
        let mut width = 0usize;
        for name in columns {
            let idx = table.schema().index_of(name)?;
            let col = table.column(idx);
            let non_null = col.len() - col.null_count();
            let numeric = matches!(
                col.data_type(),
                DataType::Int | DataType::Float | DataType::Bool
            );
            if numeric && non_null > 0 {
                let mut sum = 0.0;
                for i in 0..col.len() {
                    if let Some(x) = col.f64_at(i) {
                        sum += x;
                    }
                }
                encodings.push(ColumnEncoding::Numeric {
                    mean: sum / non_null as f64,
                });
                width += 1;
            } else {
                let mut cats: Vec<Value> = match col.as_str() {
                    Some((codes, dict, nulls)) => {
                        // Observed codes only — a gathered column shares a
                        // dictionary that may be a superset of its rows.
                        let mut seen = vec![false; dict.len()];
                        for (i, &c) in codes.iter().enumerate() {
                            if !nulls.is_null(i) {
                                seen[c as usize] = true;
                            }
                        }
                        seen.iter()
                            .enumerate()
                            .filter(|(_, &s)| s)
                            .map(|(c, _)| Value::Str(std::sync::Arc::clone(dict.get(c as u32))))
                            .collect()
                    }
                    None => {
                        let mut seen: HashMap<Value, ()> = HashMap::new();
                        let mut cats = Vec::new();
                        for v in col.iter() {
                            if !v.is_null() && seen.insert(v.clone(), ()).is_none() {
                                cats.push(v);
                            }
                        }
                        cats
                    }
                };
                cats.sort();
                width += cats.len();
                encodings.push(ColumnEncoding::OneHot { categories: cats });
            }
        }
        Ok(TableEncoder {
            columns: columns.to_vec(),
            encodings,
            width,
        })
    }

    /// Number of output features.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encoded width contributed by each input column, in order.
    pub fn column_widths(&self) -> Vec<usize> {
        self.encodings
            .iter()
            .map(|e| match e {
                ColumnEncoding::Numeric { .. } => 1,
                ColumnEncoding::OneHot { categories } => categories.len(),
            })
            .collect()
    }

    /// The input column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The fitted state — input column names and their per-column
    /// encodings — exposed for serialization.
    pub fn parts(&self) -> (&[String], &[ColumnEncoding]) {
        (&self.columns, &self.encodings)
    }

    /// Reassemble a fitted encoder from its [`TableEncoder::parts`]. The
    /// derived output width is recomputed; column and encoding counts
    /// must agree.
    pub fn from_parts(
        columns: Vec<String>,
        encodings: Vec<ColumnEncoding>,
    ) -> Result<TableEncoder> {
        if columns.len() != encodings.len() {
            return Err(MlError::InvalidInput(format!(
                "{} column name(s) but {} encoding(s)",
                columns.len(),
                encodings.len()
            )));
        }
        let width = encodings
            .iter()
            .map(|e| match e {
                ColumnEncoding::Numeric { .. } => 1,
                ColumnEncoding::OneHot { categories } => categories.len(),
            })
            .sum();
        Ok(TableEncoder {
            columns,
            encodings,
            width,
        })
    }

    /// Approximate memory footprint in bytes (category values dominate).
    pub fn approx_bytes(&self) -> usize {
        let cats: usize = self
            .encodings
            .iter()
            .map(|e| match e {
                ColumnEncoding::Numeric { .. } => 8,
                ColumnEncoding::OneHot { categories } => categories.len() * 32,
            })
            .sum();
        cats + self.columns.iter().map(|c| c.len() + 24).sum::<usize>()
    }

    /// Encode one logical row given as values aligned with `columns()`.
    pub fn encode_values(&self, values: &[Value]) -> Result<Vec<f64>> {
        if values.len() != self.encodings.len() {
            return Err(MlError::InvalidInput(format!(
                "expected {} values, got {}",
                self.encodings.len(),
                values.len()
            )));
        }
        let mut out = Vec::with_capacity(self.width);
        for (v, enc) in values.iter().zip(&self.encodings) {
            match enc {
                ColumnEncoding::Numeric { mean } => {
                    out.push(v.as_f64().unwrap_or(*mean));
                }
                ColumnEncoding::OneHot { categories } => {
                    for c in categories {
                        out.push(if v == c { 1.0 } else { 0.0 });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Encode every row of `table` (must contain the fitted columns).
    ///
    /// The feature matrix is filled **column-wise** off the typed buffers:
    /// numeric features are slice reads with mean imputation, and one-hot
    /// features over string columns resolve each fitted category to a
    /// dictionary code once, then compare codes per row — no per-cell
    /// `Value` materialization or hashing. Large inputs fill disjoint row
    /// slabs morsel-parallel over the global [`HyperRuntime`]; every cell
    /// is computed the same way regardless of worker count, so the matrix
    /// is bit-identical to the sequential encode.
    pub fn encode_table(&self, table: &Table) -> Result<Matrix> {
        let cols: Vec<&Column> = self
            .columns
            .iter()
            .map(|c| table.column_by_name(c))
            .collect::<hyper_storage::Result<_>>()?;
        self.encode_columns(&cols)
    }

    /// Encode typed columns positionally aligned with [`TableEncoder::
    /// columns`] (the no-schema variant of [`TableEncoder::encode_table`],
    /// used when callers assemble hypothetical post-update columns).
    pub fn encode_columns(&self, cols: &[&Column]) -> Result<Matrix> {
        let n = cols.first().map_or(0, |c| c.len());
        let rt = HyperRuntime::global();
        let morsel_rows = if n >= PARALLEL_ROW_THRESHOLD && rt.workers() > 0 {
            DEFAULT_MORSEL_ROWS
        } else {
            n.max(1) // one slab: the plain sequential fill
        };
        self.encode_columns_on(rt, cols, morsel_rows)
    }

    /// [`TableEncoder::encode_columns`] on a caller-chosen runtime and
    /// morsel size (the parity tests drive this across worker counts).
    pub fn encode_columns_on(
        &self,
        rt: &HyperRuntime,
        cols: &[&Column],
        morsel_rows: usize,
    ) -> Result<Matrix> {
        if cols.len() != self.encodings.len() {
            return Err(MlError::InvalidInput(format!(
                "expected {} columns, got {}",
                self.encodings.len(),
                cols.len()
            )));
        }
        let n = cols.first().map_or(0, |c| c.len());
        if cols.iter().any(|c| c.len() != n) {
            return Err(MlError::InvalidInput("ragged input columns".into()));
        }
        let width = self.width;
        let mut m = Matrix::zeros(n, width);
        if n == 0 || width == 0 {
            return Ok(m);
        }
        // Resolve one-hot dictionary slots once, shared by every morsel.
        let slot_maps: Vec<Option<Vec<Option<usize>>>> = cols
            .iter()
            .zip(&self.encodings)
            .map(|(&col, enc)| match (enc, col.as_str()) {
                (ColumnEncoding::OneHot { categories }, Some((_, dict, _))) => {
                    let mut slot_of_code: Vec<Option<usize>> = vec![None; dict.len()];
                    for (k, cat) in categories.iter().enumerate() {
                        if let Some(code) = cat.as_str().and_then(|s| dict.code_of(s)) {
                            slot_of_code[code as usize] = Some(k);
                        }
                    }
                    Some(slot_of_code)
                }
                _ => None,
            })
            .collect();

        // Fill disjoint row slabs, one morsel each. Each cell's value
        // depends only on its own row, so the parallel fill is
        // bit-identical to the sequential one.
        let morsel_rows = morsel_rows.max(1);
        let slabs: Vec<Mutex<&mut [f64]>> = m
            .data_mut()
            .chunks_mut(morsel_rows * width)
            .map(Mutex::new)
            .collect();
        rt.for_each_chunked(n, morsel_rows, |rows| {
            let mut slab = slabs[rows.start / morsel_rows].lock().expect("slab lock");
            let mut offset = 0usize;
            for ((&col, enc), slots) in cols.iter().zip(&self.encodings).zip(&slot_maps) {
                match enc {
                    ColumnEncoding::Numeric { mean } => {
                        fill_numeric(&mut slab, width, col, rows.clone(), offset, *mean);
                        offset += 1;
                    }
                    ColumnEncoding::OneHot { categories } => {
                        fill_one_hot(
                            &mut slab,
                            width,
                            col,
                            rows.clone(),
                            offset,
                            categories,
                            slots.as_deref(),
                        );
                        offset += categories.len();
                    }
                }
            }
        });
        drop(slabs);
        Ok(m)
    }

    /// Begin an incremental fit over the named columns: feed row-order
    /// chunks to [`EncoderFitState::observe`], then
    /// [`EncoderFitState::finish`]. Bit-identical to
    /// [`TableEncoder::fit`] over the concatenated rows for any
    /// chunking (numeric means accumulate in global row order, so the
    /// float sums match; category sets are order-insensitive and sorted
    /// at the end).
    pub fn fit_begin(columns: &[String]) -> EncoderFitState {
        EncoderFitState {
            columns: columns.to_vec(),
            cols: columns.iter().map(|_| ColumnFitState::default()).collect(),
        }
    }

    /// Extract a numeric target column.
    pub fn target_vector(table: &Table, column: &str) -> Result<Vec<f64>> {
        let idx = table.schema().index_of(column)?;
        table
            .column(idx)
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| MlError::InvalidInput(format!("non-numeric target value {v}")))
            })
            .collect()
    }
}

/// Per-column accumulator of [`EncoderFitState`].
#[derive(Debug, Default)]
struct ColumnFitState {
    dtype: Option<DataType>,
    sum: f64,
    non_null: usize,
    seen: HashMap<Value, ()>,
    cats: Vec<Value>,
}

/// In-progress chunk-at-a-time encoder fit (see
/// [`TableEncoder::fit_begin`]) — lets out-of-core sources fit the
/// encoder without assembling the whole table resident.
#[derive(Debug)]
pub struct EncoderFitState {
    columns: Vec<String>,
    cols: Vec<ColumnFitState>,
}

impl EncoderFitState {
    /// Accumulate one chunk (must contain every fitted column; chunks
    /// must arrive in global row order for bit-identical numeric means).
    pub fn observe(&mut self, chunk: &Table) -> Result<()> {
        for (name, st) in self.columns.iter().zip(&mut self.cols) {
            let idx = chunk.schema().index_of(name)?;
            let col = chunk.column(idx);
            let dt = col.data_type();
            if *st.dtype.get_or_insert(dt) != dt {
                return Err(MlError::InvalidInput(format!(
                    "column `{name}` changes type across chunks"
                )));
            }
            st.non_null += col.len() - col.null_count();
            if matches!(dt, DataType::Int | DataType::Float | DataType::Bool) {
                // Numeric columns only ever need the running sum: if every
                // value turns out NULL the fit degrades to an empty
                // one-hot, exactly like the resident fit.
                for i in 0..col.len() {
                    if let Some(x) = col.f64_at(i) {
                        st.sum += x;
                    }
                }
            } else {
                for v in col.iter() {
                    if !v.is_null() && st.seen.insert(v.clone(), ()).is_none() {
                        st.cats.push(v);
                    }
                }
            }
        }
        Ok(())
    }

    /// Finalize into a fitted encoder.
    pub fn finish(self) -> Result<TableEncoder> {
        let mut encodings = Vec::with_capacity(self.cols.len());
        let mut width = 0usize;
        for st in self.cols {
            let numeric = matches!(
                st.dtype,
                Some(DataType::Int | DataType::Float | DataType::Bool)
            );
            if numeric && st.non_null > 0 {
                encodings.push(ColumnEncoding::Numeric {
                    mean: st.sum / st.non_null as f64,
                });
                width += 1;
            } else {
                let mut cats = st.cats;
                cats.sort();
                width += cats.len();
                encodings.push(ColumnEncoding::OneHot { categories: cats });
            }
        }
        Ok(TableEncoder {
            columns: self.columns,
            encodings,
            width,
        })
    }
}

/// Fill feature column `j` for the rows in `rows` into a row slab whose
/// first element is `rows.start`'s feature 0.
fn fill_numeric(
    out: &mut [f64],
    width: usize,
    col: &Column,
    rows: Range<usize>,
    j: usize,
    mean: f64,
) {
    match col.as_float() {
        Some((values, nulls)) if !nulls.any_null() => {
            for (local, i) in rows.enumerate() {
                out[local * width + j] = values[i];
            }
        }
        _ => {
            for (local, i) in rows.enumerate() {
                out[local * width + j] = col.f64_at(i).unwrap_or(mean);
            }
        }
    }
}

/// One-hot fill for the rows in `rows`; `slot_of_code` is the fitted
/// dictionary-code → category-slot map when `col` is a string column.
fn fill_one_hot(
    out: &mut [f64],
    width: usize,
    col: &Column,
    rows: Range<usize>,
    offset: usize,
    categories: &[Value],
    slot_of_code: Option<&[Option<usize>]>,
) {
    if let (Some((codes, _, nulls)), Some(slots)) = (col.as_str(), slot_of_code) {
        for (local, i) in rows.enumerate() {
            if nulls.is_null(i) {
                continue;
            }
            if let Some(k) = slots[codes[i] as usize] {
                out[local * width + offset + k] = 1.0;
            }
        }
    } else {
        // Fallback for non-string one-hot columns (e.g. re-typed
        // inputs): strict Value comparison, as in `encode_values`.
        for (local, i) in rows.enumerate() {
            let v = col.value(i);
            for (k, cat) in categories.iter().enumerate() {
                if v == *cat {
                    out[local * width + offset + k] = 1.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::{DataType, Field, Schema, TableBuilder};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("age", DataType::Int),
            Field::new("color", DataType::Str),
            Field::nullable("score", DataType::Float),
        ])
        .unwrap();
        TableBuilder::new("t", schema)
            .rows([
                vec![30.into(), "red".into(), 1.0.into()],
                vec![40.into(), "blue".into(), Value::Null],
                vec![50.into(), "red".into(), 3.0.into()],
            ])
            .unwrap()
            .build()
    }

    #[test]
    fn mixed_encoding_width() {
        let enc =
            TableEncoder::fit(&table(), &["age".into(), "color".into(), "score".into()]).unwrap();
        // age (1) + color one-hot (2) + score (1) = 4.
        assert_eq!(enc.width(), 4);
        let m = enc.encode_table(&table()).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        // Row 0: age=30, blue=0, red=1, score=1.0 (categories sorted).
        assert_eq!(m.row(0), &[30.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn null_numeric_imputes_mean() {
        let enc = TableEncoder::fit(&table(), &["score".into()]).unwrap();
        let m = enc.encode_table(&table()).unwrap();
        assert_eq!(m.get(1, 0), 2.0, "NULL imputed with mean of {{1, 3}}");
    }

    #[test]
    fn unseen_category_encodes_to_zeros() {
        let enc = TableEncoder::fit(&table(), &["color".into()]).unwrap();
        let v = enc.encode_values(&["green".into()]).unwrap();
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn value_arity_checked() {
        let enc = TableEncoder::fit(&table(), &["color".into()]).unwrap();
        assert!(enc.encode_values(&["red".into(), 1.into()]).is_err());
    }

    #[test]
    fn target_vector_extraction() {
        let y = TableEncoder::target_vector(&table(), "age").unwrap();
        assert_eq!(y, vec![30.0, 40.0, 50.0]);
        assert!(TableEncoder::target_vector(&table(), "color").is_err());
    }

    #[test]
    fn empty_table_keeps_width() {
        let t = table();
        let enc = TableEncoder::fit(&t, &["age".into(), "color".into()]).unwrap();
        let empty = t.gather(&[]);
        let m = enc.encode_table(&empty).unwrap();
        assert_eq!(m.rows(), 0);
        assert_eq!(m.cols(), 3);
    }
}
