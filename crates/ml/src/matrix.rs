//! A minimal dense row-major matrix for feature data.

use crate::error::{MlError, Result};

/// Dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MlError::InvalidInput(format!(
                "data length {} != {rows}×{cols}",
                data.len()
            )));
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Build from a slice of rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(MlError::InvalidInput("ragged rows".into()));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            data,
            rows: r,
            cols: c,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Cell accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Cell mutator.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// The full row-major buffer, mutably — lets the encoder hand
    /// disjoint row slabs to parallel fill tasks.
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A new matrix with `col` appended as an extra trailing column
    /// (re-laid out row-major in one pass).
    pub fn with_appended_column(&self, col: &[f64]) -> Result<Matrix> {
        if col.len() != self.rows {
            return Err(MlError::InvalidInput(format!(
                "appended column has {} values, matrix has {} rows",
                col.len(),
                self.rows
            )));
        }
        let cols = self.cols + 1;
        let mut data = Vec::with_capacity(self.rows * cols);
        for (i, &extra) in col.iter().enumerate() {
            data.extend_from_slice(self.row(i));
            data.push(extra);
        }
        Ok(Matrix {
            data,
            rows: self.rows,
            cols,
        })
    }

    /// Append a row.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        if row.len() != self.cols {
            return Err(MlError::InvalidInput(format!(
                "row length {} != {}",
                row.len(),
                self.cols
            )));
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1., 2., 3.]);
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert!(m.push_row(&[5.0]).is_err());
        assert_eq!(m.rows(), 2);
        assert_eq!(m.get(1, 0), 3.0);
    }
}
