//! Unfolding cyclic attribute dependencies into two-layer *chain graphs* —
//! the paper's §7 future-work idea, implemented as an extension:
//!
//! > "One idea that can be explored is 'unfolding' cyclic dependencies
//! > between attributes A and B by using a time component on attributes,
//! > and adding edges from A\[t\] to B\[t'\] and B\[t\] to A\[t'\] where
//! > time t' > t (called 'chain graphs')."
//!
//! [`unfold_cyclic`] takes a possibly-cyclic edge specification and
//! produces an acyclic [`CausalGraph`] over time-indexed attributes
//! `A@0` / `A@1`: edges on a cycle cross layers (`A@0 → B@1`), edges not on
//! any cycle are replicated within both layers, and every attribute gets a
//! persistence edge `A@0 → A@1`. The result can be used everywhere a DAG is
//! required (backdoor sets, blocks, estimation) with updates interpreted as
//! interventions on layer 0 and outcomes read at layer 1.

use std::collections::HashSet;

use crate::error::{CausalError, Result};
use crate::graph::{AttrNode, CausalGraph, EdgeKind, NodeId};

/// A possibly-cyclic causal specification.
#[derive(Debug, Clone, Default)]
pub struct CyclicSpec {
    nodes: Vec<AttrNode>,
    edges: Vec<(usize, usize, EdgeKind)>,
}

impl CyclicSpec {
    /// Empty specification.
    pub fn new() -> Self {
        CyclicSpec::default()
    }

    /// Add (or look up) a node.
    pub fn node(&mut self, relation: &str, attribute: &str) -> usize {
        if let Some(i) = self
            .nodes
            .iter()
            .position(|n| n.relation == relation && n.attribute == attribute)
        {
            return i;
        }
        self.nodes.push(AttrNode::new(relation, attribute));
        self.nodes.len() - 1
    }

    /// Add a directed edge — cycles are allowed here.
    pub fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind) -> Result<()> {
        if from >= self.nodes.len() || to >= self.nodes.len() {
            return Err(CausalError::UnknownNode(format!("edge {from}→{to}")));
        }
        self.edges.push((from, to, kind));
        Ok(())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the specification contains a directed cycle.
    pub fn has_cycle(&self) -> bool {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for &(u, v, _) in &self.edges {
            adj[u].push(v);
        }
        crate::topo::topological_order(&adj).is_none()
    }

    fn reachable_from(&self, start: usize) -> HashSet<usize> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for &(u, v, _) in &self.edges {
            adj[u].push(v);
        }
        crate::topo::reachable(&adj, &[start]).into_iter().collect()
    }
}

/// The unfolded chain graph plus the layer-indexed node lookup.
#[derive(Debug, Clone)]
pub struct UnfoldedGraph {
    /// The acyclic two-layer graph.
    pub graph: CausalGraph,
    layer0: Vec<NodeId>,
    layer1: Vec<NodeId>,
    names: Vec<AttrNode>,
}

impl UnfoldedGraph {
    /// The unfolded node for `(relation, attribute)` at `layer` (0 or 1).
    pub fn node_at(&self, relation: &str, attribute: &str, layer: usize) -> Result<NodeId> {
        let idx = self
            .names
            .iter()
            .position(|n| n.relation == relation && n.attribute == attribute)
            .ok_or_else(|| CausalError::UnknownNode(format!("{relation}.{attribute}")))?;
        match layer {
            0 => Ok(self.layer0[idx]),
            1 => Ok(self.layer1[idx]),
            other => Err(CausalError::UnknownNode(format!("layer {other}"))),
        }
    }
}

/// Unfold a possibly-cyclic specification into a two-layer DAG.
pub fn unfold_cyclic(spec: &CyclicSpec) -> Result<UnfoldedGraph> {
    let mut graph = CausalGraph::new();
    let mut layer0 = Vec::with_capacity(spec.num_nodes());
    let mut layer1 = Vec::with_capacity(spec.num_nodes());
    for n in &spec.nodes {
        layer0.push(graph.add_node(AttrNode::new(
            n.relation.clone(),
            format!("{}@0", n.attribute),
        ))?);
        layer1.push(graph.add_node(AttrNode::new(
            n.relation.clone(),
            format!("{}@1", n.attribute),
        ))?);
    }
    // Persistence edges A@0 → A@1.
    for i in 0..spec.num_nodes() {
        graph.add_edge(layer0[i], layer1[i], EdgeKind::Intra)?;
    }
    // An edge (u, v) lies on a cycle iff u is reachable from v.
    for &(u, v, ref kind) in &spec.edges {
        let cyclic = spec.reachable_from(v).contains(&u);
        if cyclic {
            graph.add_edge(layer0[u], layer1[v], kind.clone())?;
        } else {
            graph.add_edge(layer0[u], layer0[v], kind.clone())?;
            graph.add_edge(layer1[u], layer1[v], kind.clone())?;
        }
    }
    Ok(UnfoldedGraph {
        graph,
        layer0,
        layer1,
        names: spec.nodes.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Demand ↔ Price feedback with an exogenous Season.
    fn feedback_spec() -> CyclicSpec {
        let mut spec = CyclicSpec::new();
        let season = spec.node("t", "season");
        let price = spec.node("t", "price");
        let demand = spec.node("t", "demand");
        spec.add_edge(season, demand, EdgeKind::Intra).unwrap();
        spec.add_edge(price, demand, EdgeKind::Intra).unwrap();
        spec.add_edge(demand, price, EdgeKind::Intra).unwrap();
        spec
    }

    #[test]
    fn detects_cycles() {
        assert!(feedback_spec().has_cycle());
        let mut acyclic = CyclicSpec::new();
        let a = acyclic.node("t", "a");
        let b = acyclic.node("t", "b");
        acyclic.add_edge(a, b, EdgeKind::Intra).unwrap();
        assert!(!acyclic.has_cycle());
    }

    #[test]
    fn unfolds_feedback_loop_into_dag() {
        let spec = feedback_spec();
        let u = unfold_cyclic(&spec).unwrap();
        // 3 attributes × 2 layers.
        assert_eq!(u.graph.num_nodes(), 6);
        // Cyclic edges cross layers.
        let p0 = u.node_at("t", "price", 0).unwrap();
        let p1 = u.node_at("t", "price", 1).unwrap();
        let d0 = u.node_at("t", "demand", 0).unwrap();
        let d1 = u.node_at("t", "demand", 1).unwrap();
        assert!(u.graph.children_of(p0).contains(&d1));
        assert!(u.graph.children_of(d0).contains(&p1));
        // No same-layer edge between the cyclic pair.
        assert!(!u.graph.children_of(p0).contains(&d0));
        assert!(!u.graph.children_of(p1).contains(&d1));
        // Persistence.
        assert!(u.graph.children_of(p0).contains(&p1));
        // The acyclic season edge is replicated in both layers.
        let s0 = u.node_at("t", "season", 0).unwrap();
        let s1 = u.node_at("t", "season", 1).unwrap();
        assert!(u.graph.children_of(s0).contains(&d0));
        assert!(u.graph.children_of(s1).contains(&d1));
    }

    #[test]
    fn unfolded_graph_supports_backdoor_analysis() {
        // Intervene on price@0, read demand@1: season@0/1 confound via
        // demand's inputs; a valid backdoor set exists in the unfolded DAG.
        let u = unfold_cyclic(&feedback_spec()).unwrap();
        let p0 = u.node_at("t", "price", 0).unwrap();
        let d1 = u.node_at("t", "demand", 1).unwrap();
        let set = crate::backdoor::minimal_backdoor_set(&u.graph, p0, d1);
        assert!(set.is_some(), "unfolded DAG must admit a backdoor set");
        let set = set.unwrap();
        assert!(crate::backdoor::is_valid_backdoor_set(
            &u.graph, p0, d1, &set
        ));
    }

    #[test]
    fn acyclic_spec_unfolds_to_two_stacked_copies() {
        let mut spec = CyclicSpec::new();
        let a = spec.node("t", "a");
        let b = spec.node("t", "b");
        spec.add_edge(a, b, EdgeKind::Intra).unwrap();
        let u = unfold_cyclic(&spec).unwrap();
        let a0 = u.node_at("t", "a", 0).unwrap();
        let b0 = u.node_at("t", "b", 0).unwrap();
        let a1 = u.node_at("t", "a", 1).unwrap();
        let b1 = u.node_at("t", "b", 1).unwrap();
        assert!(u.graph.children_of(a0).contains(&b0));
        assert!(u.graph.children_of(a1).contains(&b1));
        assert!(u.graph.children_of(a0).contains(&a1));
        assert!(!u.graph.children_of(a0).contains(&b1));
    }

    #[test]
    fn self_loop_unfolds_across_layers() {
        let mut spec = CyclicSpec::new();
        let a = spec.node("t", "a");
        spec.add_edge(a, a, EdgeKind::Intra).unwrap();
        assert!(spec.has_cycle());
        let u = unfold_cyclic(&spec).unwrap();
        let a0 = u.node_at("t", "a", 0).unwrap();
        let a1 = u.node_at("t", "a", 1).unwrap();
        assert!(u.graph.children_of(a0).contains(&a1));
        assert_eq!(u.graph.num_nodes(), 2);
    }

    #[test]
    fn bad_layer_and_unknown_node_error() {
        let u = unfold_cyclic(&feedback_spec()).unwrap();
        assert!(u.node_at("t", "price", 2).is_err());
        assert!(u.node_at("t", "ghost", 0).is_err());
    }
}
