//! d-separation on DAGs (Koller & Friedman's "reachable" / Bayes-ball
//! algorithm), the primitive behind backdoor-set validation.

use std::collections::HashSet;

use crate::topo;

/// Compute all nodes d-connected to any source in `xs` given conditioning
/// set `z`, on the DAG described by `children`/`parents` adjacency.
///
/// Returns the set of reachable nodes (excluding members of `z`).
pub fn d_connected_set(
    children: &[Vec<usize>],
    parents: &[Vec<usize>],
    xs: &[usize],
    z: &HashSet<usize>,
) -> HashSet<usize> {
    let n = children.len();
    // Phase 1: Z and all ancestors of Z (colliders are activated when they
    // or a descendant are conditioned on).
    let z_vec: Vec<usize> = z.iter().copied().collect();
    let ancestors_of_z: HashSet<usize> = topo::reachable(parents, &z_vec).into_iter().collect();

    // Phase 2: BFS over (node, direction) legs.
    // direction: 0 = arrived from a child (moving up), 1 = arrived from a
    // parent (moving down).
    let mut visited = vec![[false; 2]; n];
    let mut reachable: HashSet<usize> = HashSet::new();
    let mut queue: Vec<(usize, u8)> = xs.iter().map(|&x| (x, 0u8)).collect();

    while let Some((node, dir)) = queue.pop() {
        if visited[node][dir as usize] {
            continue;
        }
        visited[node][dir as usize] = true;

        let in_z = z.contains(&node);
        if !in_z {
            reachable.insert(node);
        }

        if dir == 0 {
            // Arrived from a child: the trail may continue up to parents or
            // down to children, unless blocked by conditioning on this node.
            if !in_z {
                for &p in &parents[node] {
                    queue.push((p, 0));
                }
                for &c in &children[node] {
                    queue.push((c, 1));
                }
            }
        } else {
            // Arrived from a parent.
            if !in_z {
                // Chain: continue down to children.
                for &c in &children[node] {
                    queue.push((c, 1));
                }
            }
            if ancestors_of_z.contains(&node) {
                // Collider whose descendant (or itself) is conditioned on:
                // the v-structure is active; continue up to parents.
                for &p in &parents[node] {
                    queue.push((p, 0));
                }
            }
        }
    }
    reachable
}

/// True iff `x` and `y` are d-separated given `z` in the DAG.
pub fn d_separated(
    children: &[Vec<usize>],
    parents: &[Vec<usize>],
    x: usize,
    y: usize,
    z: &HashSet<usize>,
) -> bool {
    if x == y {
        return false;
    }
    if z.contains(&x) || z.contains(&y) {
        // Conventionally, conditioning on an endpoint separates it.
        return true;
    }
    !d_connected_set(children, parents, &[x], z).contains(&y)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build (children, parents) from an edge list over `n` nodes.
    fn graph(n: usize, edges: &[(usize, usize)]) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let mut ch = vec![Vec::new(); n];
        let mut pa = vec![Vec::new(); n];
        for &(f, t) in edges {
            ch[f].push(t);
            pa[t].push(f);
        }
        (ch, pa)
    }

    fn z(nodes: &[usize]) -> HashSet<usize> {
        nodes.iter().copied().collect()
    }

    #[test]
    fn chain_blocked_by_middle() {
        // 0 → 1 → 2
        let (ch, pa) = graph(3, &[(0, 1), (1, 2)]);
        assert!(!d_separated(&ch, &pa, 0, 2, &z(&[])));
        assert!(d_separated(&ch, &pa, 0, 2, &z(&[1])));
    }

    #[test]
    fn fork_blocked_by_root() {
        // 1 ← 0 → 2 (confounder)
        let (ch, pa) = graph(3, &[(0, 1), (0, 2)]);
        assert!(!d_separated(&ch, &pa, 1, 2, &z(&[])));
        assert!(d_separated(&ch, &pa, 1, 2, &z(&[0])));
    }

    #[test]
    fn collider_open_when_conditioned() {
        // 0 → 2 ← 1 (v-structure)
        let (ch, pa) = graph(3, &[(0, 2), (1, 2)]);
        assert!(d_separated(&ch, &pa, 0, 1, &z(&[])));
        assert!(!d_separated(&ch, &pa, 0, 1, &z(&[2])));
    }

    #[test]
    fn collider_opened_by_descendant() {
        // 0 → 2 ← 1, 2 → 3: conditioning on the collider's descendant opens it.
        let (ch, pa) = graph(4, &[(0, 2), (1, 2), (2, 3)]);
        assert!(d_separated(&ch, &pa, 0, 1, &z(&[])));
        assert!(!d_separated(&ch, &pa, 0, 1, &z(&[3])));
    }

    #[test]
    fn m_bias_structure() {
        // Classic M-graph: U1 → B, U1 → K, U2 → K, U2 → Y; B, Y otherwise
        // unrelated. Nodes: B=0, Y=1, K=2, U1=3, U2=4.
        let (ch, pa) = graph(5, &[(3, 0), (3, 2), (4, 2), (4, 1)]);
        // Marginally separated.
        assert!(d_separated(&ch, &pa, 0, 1, &z(&[])));
        // Conditioning on K (collider) opens the path.
        assert!(!d_separated(&ch, &pa, 0, 1, &z(&[2])));
        // Adding U1 blocks it again.
        assert!(d_separated(&ch, &pa, 0, 1, &z(&[2, 3])));
    }

    #[test]
    fn endpoint_in_z_is_separated() {
        let (ch, pa) = graph(2, &[(0, 1)]);
        assert!(d_separated(&ch, &pa, 0, 1, &z(&[0])));
    }

    #[test]
    fn connected_set_excludes_z() {
        let (ch, pa) = graph(3, &[(0, 1), (1, 2)]);
        let r = d_connected_set(&ch, &pa, &[0], &z(&[1]));
        assert!(r.contains(&0));
        assert!(!r.contains(&1));
        assert!(!r.contains(&2));
    }
}
