//! Error type for the causal-model subsystem.

use std::fmt;

/// Errors raised while building or querying causal models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalError {
    /// A referenced attribute node does not exist in the graph.
    UnknownNode(String),
    /// Adding an edge would create a directed cycle.
    CycleDetected(String),
    /// The same node was declared twice.
    DuplicateNode(String),
    /// An edge declaration is inconsistent (e.g. intra-tuple edge across
    /// relations).
    InvalidEdge(String),
    /// A structural-equation specification is invalid.
    InvalidMechanism(String),
    /// Exact enumeration was requested for a model with non-discrete or
    /// unbounded mechanisms.
    NotEnumerable(String),
    /// Propagated storage error.
    Storage(String),
}

impl fmt::Display for CausalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalError::UnknownNode(n) => write!(f, "unknown causal node: {n}"),
            CausalError::CycleDetected(m) => write!(f, "cycle detected: {m}"),
            CausalError::DuplicateNode(n) => write!(f, "duplicate causal node: {n}"),
            CausalError::InvalidEdge(m) => write!(f, "invalid edge: {m}"),
            CausalError::InvalidMechanism(m) => write!(f, "invalid mechanism: {m}"),
            CausalError::NotEnumerable(m) => write!(f, "model not enumerable: {m}"),
            CausalError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for CausalError {}

impl From<hyper_storage::StorageError> for CausalError {
    fn from(e: hyper_storage::StorageError) -> Self {
        CausalError::Storage(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CausalError>;
