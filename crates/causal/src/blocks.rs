//! Block-independent decomposition (paper §3.3, Example 7, Prop. 7).
//!
//! Two tuples are *independent* when no path connects any of their ground
//! variables; blocks are the connected components of the ground graph
//! projected onto tuples. This module computes the decomposition with a
//! union-find over tuples, **without materializing ground edges**:
//!
//! * `Intra` edges never cross tuples — ignored;
//! * `ForeignKey` edges union every child tuple with its parent tuple;
//! * `SameValue` edges union all tuples of the relation sharing the grouping
//!   value (chaining group members, `O(n)`), and — for cross-relation
//!   edges — rely on the FK unions to pull the child relation in.
//!
//! The result is `O(n α(n))` in the number of tuples, matching the paper's
//! "linear in the size of the causal DAG" claim.

use std::collections::HashMap;

use hyper_storage::{Database, Value};

use crate::error::{CausalError, Result};
use crate::graph::{CausalGraph, EdgeKind};
use crate::ground::TupleRef;
use crate::unionfind::UnionFind;

/// The block-independent decomposition of a database.
#[derive(Debug, Clone)]
pub struct BlockDecomposition {
    blocks: Vec<Vec<TupleRef>>,
    block_of: HashMap<TupleRef, usize>,
}

impl BlockDecomposition {
    /// Compute the decomposition of `db` under `graph`.
    pub fn compute(db: &Database, graph: &CausalGraph) -> Result<BlockDecomposition> {
        // Global tuple numbering: offsets per table.
        let mut offsets = Vec::with_capacity(db.tables().len());
        let mut total = 0usize;
        for t in db.tables() {
            offsets.push(total);
            total += t.num_rows();
        }
        let table_idx: HashMap<&str, usize> = db
            .tables()
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name(), i))
            .collect();
        let mut uf = UnionFind::new(total);

        // FK edges in the causal graph union child tuples with parents.
        let mut need_fk_union = false;
        for e in graph.edges() {
            match &e.kind {
                EdgeKind::Intra => {}
                EdgeKind::ForeignKey => need_fk_union = true,
                EdgeKind::SameValue { group_by } => {
                    let rel = &graph.node_info(e.from).relation;
                    let &ti = table_idx.get(rel.as_str()).ok_or_else(|| {
                        CausalError::UnknownNode(format!("relation `{rel}` not in database"))
                    })?;
                    let table = &db.tables()[ti];
                    let gcol = table.schema().index_of(group_by)?;
                    // Union consecutive members of each group (chain).
                    let mut first_of_group: HashMap<Value, usize> = HashMap::new();
                    for row in 0..table.num_rows() {
                        let v = table.column(gcol).value(row);
                        match first_of_group.get(&v) {
                            Some(&anchor) => {
                                uf.union(offsets[ti] + anchor, offsets[ti] + row);
                            }
                            None => {
                                first_of_group.insert(v, row);
                            }
                        }
                    }
                    // Cross-relation SameValue also needs the FK unions so the
                    // target relation's tuples join the group's component.
                    if graph.node_info(e.to).relation != *rel {
                        need_fk_union = true;
                    }
                }
            }
        }

        if need_fk_union {
            for fk in db.foreign_keys() {
                let ci = table_idx[fk.child_table.as_str()];
                let pi = table_idx[fk.parent_table.as_str()];
                let child = db.table(&fk.child_table)?;
                let parent = db.table(&fk.parent_table)?;
                let ccols: Vec<usize> = fk
                    .child_columns
                    .iter()
                    .map(|c| child.schema().index_of(c))
                    .collect::<hyper_storage::Result<_>>()?;
                let pcols: Vec<usize> = fk
                    .parent_columns
                    .iter()
                    .map(|c| parent.schema().index_of(c))
                    .collect::<hyper_storage::Result<_>>()?;
                let mut parent_index: HashMap<Vec<Value>, usize> =
                    HashMap::with_capacity(parent.num_rows());
                for r in 0..parent.num_rows() {
                    let key: Vec<Value> =
                        pcols.iter().map(|&c| parent.column(c).value(r)).collect();
                    parent_index.insert(key, r);
                }
                for r in 0..child.num_rows() {
                    let key: Vec<Value> = ccols.iter().map(|&c| child.column(c).value(r)).collect();
                    if let Some(&p) = parent_index.get(&key) {
                        uf.union(offsets[ci] + r, offsets[pi] + p);
                    }
                }
            }
        }

        // Materialize blocks in first-occurrence order (deterministic).
        let groups = uf.groups();
        let mut blocks = Vec::with_capacity(groups.len());
        let mut block_of = HashMap::with_capacity(total);
        for group in groups {
            let bi = blocks.len();
            let mut tuples = Vec::with_capacity(group.len());
            for gid in group {
                // Invert the offset mapping.
                let ti = match offsets.binary_search(&gid) {
                    Ok(i) => i,
                    Err(i) => i - 1,
                };
                let t = TupleRef {
                    table: ti,
                    row: gid - offsets[ti],
                };
                block_of.insert(t, bi);
                tuples.push(t);
            }
            blocks.push(tuples);
        }
        Ok(BlockDecomposition { blocks, block_of })
    }

    /// Reassemble a decomposition from its blocks (the inverse of
    /// [`BlockDecomposition::blocks`], for snapshot deserialization). A
    /// tuple appearing in two blocks would make `block_of` ambiguous and
    /// is rejected.
    pub fn from_blocks(blocks: Vec<Vec<TupleRef>>) -> Result<BlockDecomposition> {
        let mut block_of = HashMap::with_capacity(blocks.iter().map(Vec::len).sum());
        for (bi, tuples) in blocks.iter().enumerate() {
            for &t in tuples {
                if block_of.insert(t, bi).is_some() {
                    return Err(CausalError::InvalidEdge(format!(
                        "tuple (table {}, row {}) appears in more than one block",
                        t.table, t.row
                    )));
                }
            }
        }
        Ok(BlockDecomposition { blocks, block_of })
    }

    /// Do every block's tuple references fall inside tables of the given
    /// sizes (`table_rows[i]` = row count of table `i`)? Decompositions
    /// computed in-process fit by construction; this guards ones
    /// deserialized from a persist directory, whose indices are
    /// untrusted bytes — a mismatch must read as a cache miss, never an
    /// out-of-bounds panic during block-wise evaluation.
    pub fn fits_tables(&self, table_rows: &[usize]) -> bool {
        self.blocks
            .iter()
            .flatten()
            .all(|t| table_rows.get(t.table).is_some_and(|&rows| t.row < rows))
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Tuples of block `i`.
    pub fn block(&self, i: usize) -> &[TupleRef] {
        &self.blocks[i]
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Vec<TupleRef>] {
        &self.blocks
    }

    /// The block containing a tuple.
    pub fn block_of(&self, t: TupleRef) -> Option<usize> {
        self.block_of.get(&t).copied()
    }

    /// True iff the two tuples are independent (different blocks).
    pub fn independent(&self, a: TupleRef, b: TupleRef) -> bool {
        match (self.block_of(a), self.block_of(b)) {
            (Some(x), Some(y)) => x != y,
            _ => true,
        }
    }

    /// Row indices of `table` grouped by block id (block id → rows).
    pub fn rows_by_block(&self, table: usize) -> HashMap<usize, Vec<usize>> {
        let mut out: HashMap<usize, Vec<usize>> = HashMap::new();
        for (bi, tuples) in self.blocks.iter().enumerate() {
            for t in tuples {
                if t.table == table {
                    out.entry(bi).or_default().push(t.row);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::amazon_example_graph;
    use crate::ground::tests::amazon_db;

    #[test]
    fn example7_block_structure() {
        // Example 7: laptops {p1,p2,p3,r1..r5}, camera {p4,r6}, book {p5}.
        let db = amazon_db();
        let blocks = BlockDecomposition::compute(&db, &amazon_example_graph()).unwrap();
        assert_eq!(blocks.num_blocks(), 3);

        let p1 = TupleRef { table: 0, row: 0 };
        let p2 = TupleRef { table: 0, row: 1 };
        let p4 = TupleRef { table: 0, row: 3 };
        let p5 = TupleRef { table: 0, row: 4 };
        let r1 = TupleRef { table: 1, row: 0 };
        let r5 = TupleRef { table: 1, row: 4 };
        let r6 = TupleRef { table: 1, row: 5 };

        assert_eq!(blocks.block_of(p1), blocks.block_of(p2));
        assert_eq!(blocks.block_of(p1), blocks.block_of(r1));
        assert_eq!(blocks.block_of(p1), blocks.block_of(r5));
        assert_eq!(blocks.block_of(p4), blocks.block_of(r6));
        assert!(blocks.independent(p1, p4));
        assert!(blocks.independent(p4, p5));
        assert!(blocks.independent(p1, p5));

        let laptop_block = blocks.block(blocks.block_of(p1).unwrap());
        assert_eq!(laptop_block.len(), 8);
    }

    #[test]
    fn no_cross_edges_yields_fk_components() {
        // Remove the SameValue edge: blocks become product+its reviews.
        let mut g = crate::graph::CausalGraph::new();
        let price = g.node("product", "price");
        let rating = g.node("review", "rating");
        g.add_edge(price, rating, crate::graph::EdgeKind::ForeignKey)
            .unwrap();
        let db = amazon_db();
        let blocks = BlockDecomposition::compute(&db, &g).unwrap();
        // p1+r1, p2+r2+r3, p3+r4+r5, p4+r6, p5 → 5 blocks.
        assert_eq!(blocks.num_blocks(), 5);
    }

    #[test]
    fn intra_only_graph_gives_singletons() {
        let mut g = crate::graph::CausalGraph::new();
        g.add_intra_edge("product", "quality", "price").unwrap();
        let db = amazon_db();
        let blocks = BlockDecomposition::compute(&db, &g).unwrap();
        assert_eq!(blocks.num_blocks(), db.total_rows());
    }

    #[test]
    fn rows_by_block_partitions_table() {
        let db = amazon_db();
        let blocks = BlockDecomposition::compute(&db, &amazon_example_graph()).unwrap();
        let by_block = blocks.rows_by_block(0);
        let total: usize = by_block.values().map(Vec::len).sum();
        assert_eq!(total, db.table("product").unwrap().num_rows());
    }

    #[test]
    fn blocks_match_ground_graph_components() {
        // Cross-validate the union-find shortcut against the materialized
        // ground graph's undirected components.
        use crate::ground::GroundGraph;
        let db = amazon_db();
        let graph = amazon_example_graph();
        let blocks = BlockDecomposition::compute(&db, &graph).unwrap();
        let ground = GroundGraph::build(&db, &graph).unwrap();

        // Union tuples through materialized ground edges.
        let mut ids: HashMap<TupleRef, usize> = HashMap::new();
        for v in 0..ground.num_vars() {
            let t = ground.var(v).tuple;
            let next = ids.len();
            ids.entry(t).or_insert(next);
        }
        let mut uf = crate::unionfind::UnionFind::new(ids.len());
        for v in 0..ground.num_vars() {
            for &c in &ground.children()[v] {
                uf.union(ids[&ground.var(v).tuple], ids[&ground.var(c).tuple]);
            }
        }
        for (&ta, &ia) in &ids {
            for (&tb, &ib) in &ids {
                let same_ground = uf.find(ia) == uf.find(ib);
                let same_block = blocks.block_of(ta) == blocks.block_of(tb);
                assert_eq!(
                    same_ground, same_block,
                    "tuples {ta:?} and {tb:?} disagree between ground graph and union-find"
                );
            }
        }
    }
}
