//! # hyper-causal
//!
//! The causal substrate of the HypeR reproduction (paper §2.2, §3.3, §A):
//!
//! * [`graph`] — schema-level causal DAGs with intra-tuple, foreign-key and
//!   same-value (cross-tuple) edge kinds, plus the §A.3.2 aggregate
//!   augmentation;
//! * [`ground`] — materialized ground causal graphs (`A[t]` variables);
//! * [`blocks`] — block-independent decomposition via union-find, never
//!   materializing cross-tuple edges;
//! * [`dsep`] / [`backdoor`] — d-separation and (minimal) backdoor sets;
//! * [`scm`] — structural causal models for synthetic data generation,
//!   paired pre/post interventional sampling, and exact enumeration for the
//!   possible-world oracle.

#![warn(missing_docs)]

pub mod backdoor;
pub mod blocks;
pub mod chain;
pub mod dsep;
pub mod error;
pub mod graph;
pub mod ground;
pub mod scm;
pub mod topo;
pub mod unionfind;

pub use backdoor::{canonical_backdoor_set, is_valid_backdoor_set, minimal_backdoor_set};
pub use blocks::BlockDecomposition;
pub use chain::{unfold_cyclic, CyclicSpec, UnfoldedGraph};
pub use error::{CausalError, Result};
pub use graph::{amazon_example_graph, AttrNode, CausalEdge, CausalGraph, EdgeKind, NodeId};
pub use ground::{GroundGraph, GroundVar, TupleRef};
pub use scm::{Intervention, InterventionOp, Mechanism, Noise, Scm};
pub use unionfind::UnionFind;
