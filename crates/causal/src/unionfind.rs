//! Union-find (disjoint-set) with path halving and union by size, used for
//! the block-independent decomposition over up to millions of tuples.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Group elements by representative, ordered by first occurrence.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut rep_slot: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut out: Vec<Vec<usize>> = Vec::new();
        for x in 0..n {
            let r = self.find(x);
            let slot = *rep_slot.entry(r).or_insert_with(|| {
                out.push(Vec::new());
                out.len() - 1
            });
            out[slot].push(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_and_finds() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_components(), 3);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
    }

    #[test]
    fn groups_preserve_first_occurrence_order() {
        let mut uf = UnionFind::new(4);
        uf.union(2, 3);
        let groups = uf.groups();
        assert_eq!(groups, vec![vec![0], vec![1], vec![2, 3]]);
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(2, 3);
        assert_eq!(uf.find(0), uf.find(3));
        assert_eq!(uf.num_components(), 3);
    }
}
