//! Graph utilities shared across the crate: topological sort and reachability
//! over plain adjacency lists.

/// Kahn's algorithm. Returns `None` when the graph has a cycle.
pub fn topological_order(children: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = children.len();
    let mut indeg = vec![0usize; n];
    for adj in children {
        for &c in adj {
            indeg[c] += 1;
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    // Reverse so pop() yields ascending node ids first — deterministic output.
    stack.reverse();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = stack.pop() {
        order.push(u);
        for &c in &children[u] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                stack.push(c);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Nodes reachable from any of `starts` (including the starts themselves),
/// by iterative DFS.
pub fn reachable(adj: &[Vec<usize>], starts: &[usize]) -> Vec<usize> {
    let mut seen = vec![false; adj.len()];
    let mut stack: Vec<usize> = Vec::new();
    for &s in starts {
        if !seen[s] {
            seen[s] = true;
            stack.push(s);
        }
    }
    let mut out = Vec::new();
    while let Some(u) = stack.pop() {
        out.push(u);
        for &c in &adj[u] {
            if !seen[c] {
                seen[c] = true;
                stack.push(c);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_dag() {
        // 0 → 1 → 3, 0 → 2 → 3
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let order = topological_order(&adj).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &n) in order.iter().enumerate() {
                p[n] = i;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn detects_cycle() {
        let adj = vec![vec![1], vec![2], vec![0]];
        assert!(topological_order(&adj).is_none());
    }

    #[test]
    fn empty_graph() {
        assert_eq!(topological_order(&[]).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn reachability() {
        let adj = vec![vec![1], vec![2], vec![], vec![2]];
        assert_eq!(reachable(&adj, &[0]), vec![0, 1, 2]);
        assert_eq!(reachable(&adj, &[3]), vec![2, 3]);
        assert_eq!(reachable(&adj, &[0, 3]), vec![0, 1, 2, 3]);
    }
}
