//! Ground causal graphs (the paper's Figure 3): one variable per
//! `(tuple, attribute)` pair, with edges instantiated from the schema-level
//! graph according to each edge's [`EdgeKind`].
//!
//! Materializing the ground graph is only needed for the exact
//! possible-world oracle and for tests; the block decomposition in
//! [`crate::blocks`] never materializes it.

use std::collections::HashMap;

use hyper_storage::{Database, Value};

use crate::error::{CausalError, Result};
use crate::graph::{CausalGraph, EdgeKind};
use crate::topo;

/// A tuple reference: `(table index, row index)` in database registration
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRef {
    /// Index of the table in [`Database::tables`].
    pub table: usize,
    /// Row index within the table.
    pub row: usize,
}

/// A ground variable `A[t]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroundVar {
    /// The tuple.
    pub tuple: TupleRef,
    /// Column index of the attribute within the tuple's table.
    pub attr: usize,
}

/// The grounded causal graph of a database under a schema-level model.
#[derive(Debug, Clone)]
pub struct GroundGraph {
    vars: Vec<GroundVar>,
    ids: HashMap<GroundVar, usize>,
    children: Vec<Vec<usize>>,
    parents: Vec<Vec<usize>>,
}

impl GroundGraph {
    /// Ground `graph` against `db`.
    ///
    /// Only attributes mentioned in the causal graph become ground
    /// variables — immutable attributes outside the model (keys etc.) do not
    /// participate.
    pub fn build(db: &Database, graph: &CausalGraph) -> Result<GroundGraph> {
        let mut g = GroundGraph {
            vars: Vec::new(),
            ids: HashMap::new(),
            children: Vec::new(),
            parents: Vec::new(),
        };

        // Map relation name → table index once.
        let table_idx: HashMap<&str, usize> = db
            .tables()
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name(), i))
            .collect();

        // Create variables for every (tuple, modeled attribute).
        for node in graph.nodes() {
            let &ti = table_idx.get(node.relation.as_str()).ok_or_else(|| {
                CausalError::UnknownNode(format!("relation `{}` not in database", node.relation))
            })?;
            let table = &db.tables()[ti];
            let attr = table.schema().index_of(&node.attribute)?;
            for row in 0..table.num_rows() {
                g.intern(GroundVar {
                    tuple: TupleRef { table: ti, row },
                    attr,
                });
            }
        }

        // Pre-compute FK links between table pairs: child row → parent row.
        let fk_links = fk_row_links(db)?;

        for edge in graph.edges() {
            let from_node = graph.node_info(edge.from);
            let to_node = graph.node_info(edge.to);
            let fti = table_idx[from_node.relation.as_str()];
            let tti = table_idx[to_node.relation.as_str()];
            let fattr = db.tables()[fti].schema().index_of(&from_node.attribute)?;
            let tattr = db.tables()[tti].schema().index_of(&to_node.attribute)?;

            match &edge.kind {
                EdgeKind::Intra => {
                    for row in 0..db.tables()[fti].num_rows() {
                        g.add_ground_edge(
                            GroundVar {
                                tuple: TupleRef { table: fti, row },
                                attr: fattr,
                            },
                            GroundVar {
                                tuple: TupleRef { table: tti, row },
                                attr: tattr,
                            },
                        );
                    }
                }
                EdgeKind::ForeignKey => {
                    let links = fk_links.get(&ordered_pair(fti, tti)).ok_or_else(|| {
                        CausalError::InvalidEdge(format!(
                            "foreign-key edge {from_node} → {to_node} has no declared FK"
                        ))
                    })?;
                    // links are (child_row_in_child_table, parent_row): we
                    // need pairs as (from_table row, to_table row).
                    for &(crow, prow) in links {
                        let (frow, trow) = if fti == child_table_of(db, fti, tti)? {
                            (crow, prow)
                        } else {
                            (prow, crow)
                        };
                        g.add_ground_edge(
                            GroundVar {
                                tuple: TupleRef {
                                    table: fti,
                                    row: frow,
                                },
                                attr: fattr,
                            },
                            GroundVar {
                                tuple: TupleRef {
                                    table: tti,
                                    row: trow,
                                },
                                attr: tattr,
                            },
                        );
                    }
                }
                EdgeKind::SameValue { group_by } => {
                    ground_same_value(&mut g, db, fti, fattr, tti, tattr, group_by, &fk_links)?;
                }
            }
        }
        Ok(g)
    }

    fn intern(&mut self, v: GroundVar) -> usize {
        if let Some(&id) = self.ids.get(&v) {
            return id;
        }
        let id = self.vars.len();
        self.ids.insert(v, id);
        self.vars.push(v);
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        id
    }

    fn add_ground_edge(&mut self, from: GroundVar, to: GroundVar) {
        let f = self.intern(from);
        let t = self.intern(to);
        if !self.children[f].contains(&t) {
            self.children[f].push(t);
            self.parents[t].push(f);
        }
    }

    /// Number of ground variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of ground edges.
    pub fn num_edges(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Variable payload by id.
    pub fn var(&self, id: usize) -> GroundVar {
        self.vars[id]
    }

    /// Id of a ground variable, if it exists.
    pub fn id_of(&self, v: GroundVar) -> Option<usize> {
        self.ids.get(&v).copied()
    }

    /// Children adjacency.
    pub fn children(&self) -> &[Vec<usize>] {
        &self.children
    }

    /// Parents adjacency.
    pub fn parents(&self) -> &[Vec<usize>] {
        &self.parents
    }

    /// Topological order; `None` if grounding produced a cycle (possible when
    /// cross-tuple edges connect tuples symmetrically).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        topo::topological_order(&self.children)
    }

    /// All ground variables reachable from `start` (excluding itself).
    pub fn descendants(&self, start: usize) -> Vec<usize> {
        topo::reachable(&self.children, &[start])
            .into_iter()
            .filter(|&v| v != start)
            .collect()
    }

    /// Tuples whose variables are reachable from any variable of `tuple` —
    /// i.e. tuples whose post-update state can differ after intervening on
    /// `tuple`.
    pub fn affected_tuples(&self, sources: &[usize]) -> Vec<TupleRef> {
        let reach = topo::reachable(&self.children, sources);
        let mut tuples: Vec<TupleRef> = reach.into_iter().map(|v| self.vars[v].tuple).collect();
        tuples.sort();
        tuples.dedup();
        tuples
    }
}

/// Row pairs `(child_row, parent_row)` linked by a foreign key, keyed by
/// the canonically-ordered table pair.
type FkRowLinks = HashMap<(usize, usize), Vec<(usize, usize)>>;

/// For every FK-related table pair (canonically ordered), the row pairs
/// `(child_row, parent_row)` they link.
fn fk_row_links(db: &Database) -> Result<FkRowLinks> {
    let table_idx: HashMap<&str, usize> = db
        .tables()
        .iter()
        .enumerate()
        .map(|(i, t)| (t.name(), i))
        .collect();
    let mut out: HashMap<(usize, usize), Vec<(usize, usize)>> = HashMap::new();
    for fk in db.foreign_keys() {
        let ci = table_idx[fk.child_table.as_str()];
        let pi = table_idx[fk.parent_table.as_str()];
        let child = db.table(&fk.child_table)?;
        let parent = db.table(&fk.parent_table)?;
        let ccols: Vec<usize> = fk
            .child_columns
            .iter()
            .map(|c| child.schema().index_of(c))
            .collect::<hyper_storage::Result<_>>()?;
        let pcols: Vec<usize> = fk
            .parent_columns
            .iter()
            .map(|c| parent.schema().index_of(c))
            .collect::<hyper_storage::Result<_>>()?;
        let mut parent_index: HashMap<Vec<Value>, usize> = HashMap::new();
        for r in 0..parent.num_rows() {
            let key: Vec<Value> = pcols.iter().map(|&c| parent.column(c).value(r)).collect();
            parent_index.insert(key, r);
        }
        let links = out.entry(ordered_pair(ci, pi)).or_default();
        for r in 0..child.num_rows() {
            let key: Vec<Value> = ccols.iter().map(|&c| child.column(c).value(r)).collect();
            if let Some(&p) = parent_index.get(&key) {
                links.push((r, p));
            }
        }
    }
    Ok(out)
}

fn ordered_pair(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Which of the two tables is the FK child.
fn child_table_of(db: &Database, a: usize, b: usize) -> Result<usize> {
    let names: Vec<&str> = db.tables().iter().map(|t| t.name()).collect();
    for fk in db.foreign_keys() {
        let ci = names.iter().position(|&n| n == fk.child_table).unwrap();
        let pi = names.iter().position(|&n| n == fk.parent_table).unwrap();
        if ordered_pair(ci, pi) == ordered_pair(a, b) {
            return Ok(ci);
        }
    }
    Err(CausalError::InvalidEdge(format!(
        "no foreign key between tables {a} and {b}"
    )))
}

/// Ground a `SameValue` edge: connect tuples grouped by `group_by` (an
/// attribute of the `from` relation). Same-relation edges link distinct
/// tuples in a group; cross-relation edges link a group member to the FK
/// children of *other* members of the group.
#[allow(clippy::too_many_arguments)]
fn ground_same_value(
    g: &mut GroundGraph,
    db: &Database,
    fti: usize,
    fattr: usize,
    tti: usize,
    tattr: usize,
    group_by: &str,
    fk_links: &FkRowLinks,
) -> Result<()> {
    let from_table = &db.tables()[fti];
    let gcol = from_table.schema().index_of(group_by)?;
    let mut groups: HashMap<Value, Vec<usize>> = HashMap::new();
    for row in 0..from_table.num_rows() {
        groups
            .entry(from_table.column(gcol).value(row))
            .or_default()
            .push(row);
    }
    if fti == tti {
        for rows in groups.values() {
            for &a in rows {
                for &b in rows {
                    if a != b {
                        g.add_ground_edge(
                            GroundVar {
                                tuple: TupleRef { table: fti, row: a },
                                attr: fattr,
                            },
                            GroundVar {
                                tuple: TupleRef { table: tti, row: b },
                                attr: tattr,
                            },
                        );
                    }
                }
            }
        }
    } else {
        let links = fk_links.get(&ordered_pair(fti, tti)).ok_or_else(|| {
            CausalError::InvalidEdge(format!(
                "cross-relation SameValue edge requires a foreign key between tables {fti} and {tti}"
            ))
        })?;
        // Parent row → its child rows in the `to` relation.
        let mut children_of_parent: HashMap<usize, Vec<usize>> = HashMap::new();
        for &(crow, prow) in links {
            children_of_parent.entry(prow).or_default().push(crow);
        }
        for rows in groups.values() {
            for &a in rows {
                for &peer in rows {
                    if peer == a {
                        continue; // own children are covered by the FK edge
                    }
                    if let Some(kids) = children_of_parent.get(&peer) {
                        for &k in kids {
                            g.add_ground_edge(
                                GroundVar {
                                    tuple: TupleRef { table: fti, row: a },
                                    attr: fattr,
                                },
                                GroundVar {
                                    tuple: TupleRef { table: tti, row: k },
                                    attr: tattr,
                                },
                            );
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::graph::amazon_example_graph;
    use hyper_storage::DataType;
    use hyper_storage::{Field, ForeignKey, Schema, TableBuilder};

    /// Figure-1 database: 5 products, 6 reviews.
    pub(crate) fn amazon_db() -> Database {
        let mut db = Database::new();
        let mut prod = TableBuilder::with_key(
            "product",
            Schema::new(vec![
                Field::new("pid", DataType::Int),
                Field::new("category", DataType::Str),
                Field::new("price", DataType::Float),
                Field::new("brand", DataType::Str),
                Field::new("color", DataType::Str),
                Field::new("quality", DataType::Float),
            ])
            .unwrap(),
            &["pid"],
        )
        .unwrap();
        for (pid, cat, price, brand, color, q) in [
            (1, "Laptop", 999.0, "Vaio", "Silver", 0.7),
            (2, "Laptop", 529.0, "Asus", "Black", 0.65),
            (3, "Laptop", 599.0, "HP", "Silver", 0.5),
            (4, "DSLR Camera", 549.0, "Canon", "Black", 0.75),
            (5, "Sci Fi eBooks", 15.99, "Fantasy Press", "Blue", 0.4),
        ] {
            prod.push(vec![
                pid.into(),
                cat.into(),
                price.into(),
                brand.into(),
                color.into(),
                q.into(),
            ])
            .unwrap();
        }
        let mut rev = TableBuilder::with_key(
            "review",
            Schema::new(vec![
                Field::new("pid", DataType::Int),
                Field::new("review_id", DataType::Int),
                Field::new("sentiment", DataType::Float),
                Field::new("rating", DataType::Int),
            ])
            .unwrap(),
            &["pid", "review_id"],
        )
        .unwrap();
        for (pid, rid, s, r) in [
            (1, 1, -0.95, 2),
            (2, 2, 0.7, 4),
            (2, 3, -0.2, 1),
            (3, 3, 0.23, 3),
            (3, 5, 0.95, 5),
            (4, 5, 0.7, 4),
        ] {
            rev.push(vec![pid.into(), rid.into(), s.into(), r.into()])
                .unwrap();
        }
        db.add_table(prod.build()).unwrap();
        db.add_table(rev.build()).unwrap();
        db.add_foreign_key(ForeignKey {
            child_table: "review".into(),
            child_columns: vec!["pid".into()],
            parent_table: "product".into(),
            parent_columns: vec!["pid".into()],
        })
        .unwrap();
        db
    }

    #[test]
    fn grounds_figure1_database() {
        let db = amazon_db();
        let g = GroundGraph::build(&db, &amazon_example_graph()).unwrap();
        // 5 products × 5 modeled attrs + 6 reviews × 2 modeled attrs = 37.
        assert_eq!(g.num_vars(), 37);
        assert!(g.num_edges() > 0);
        assert!(g.topological_order().is_some());
    }

    #[test]
    fn fk_edges_link_product_to_its_reviews() {
        let db = amazon_db();
        let g = GroundGraph::build(&db, &amazon_example_graph()).unwrap();
        let price_attr = db
            .table("product")
            .unwrap()
            .schema()
            .index_of("price")
            .unwrap();
        let rating_attr = db
            .table("review")
            .unwrap()
            .schema()
            .index_of("rating")
            .unwrap();
        // price[p2] (row 1) → rating[r2] (row 1, pid 2).
        let from = g
            .id_of(GroundVar {
                tuple: TupleRef { table: 0, row: 1 },
                attr: price_attr,
            })
            .unwrap();
        let to = g
            .id_of(GroundVar {
                tuple: TupleRef { table: 1, row: 1 },
                attr: rating_attr,
            })
            .unwrap();
        assert!(g.children()[from].contains(&to));
    }

    #[test]
    fn same_value_edges_cross_tuples_within_category() {
        let db = amazon_db();
        let g = GroundGraph::build(&db, &amazon_example_graph()).unwrap();
        let price_attr = db
            .table("product")
            .unwrap()
            .schema()
            .index_of("price")
            .unwrap();
        let rating_attr = db
            .table("review")
            .unwrap()
            .schema()
            .index_of("rating")
            .unwrap();
        // price[p2] (Asus laptop) → rating[r1] (review of Vaio laptop p1).
        let from = g
            .id_of(GroundVar {
                tuple: TupleRef { table: 0, row: 1 },
                attr: price_attr,
            })
            .unwrap();
        let to = g
            .id_of(GroundVar {
                tuple: TupleRef { table: 1, row: 0 },
                attr: rating_attr,
            })
            .unwrap();
        assert!(g.children()[from].contains(&to));
        // …but NOT to the camera's review (different category): r6 is row 5.
        let camera_rev = g
            .id_of(GroundVar {
                tuple: TupleRef { table: 1, row: 5 },
                attr: rating_attr,
            })
            .unwrap();
        assert!(!g.children()[from].contains(&camera_rev));
    }

    #[test]
    fn affected_tuples_follow_paths() {
        let db = amazon_db();
        let g = GroundGraph::build(&db, &amazon_example_graph()).unwrap();
        let price_attr = db
            .table("product")
            .unwrap()
            .schema()
            .index_of("price")
            .unwrap();
        let src = g
            .id_of(GroundVar {
                tuple: TupleRef { table: 0, row: 1 },
                attr: price_attr,
            })
            .unwrap();
        let affected = g.affected_tuples(&[src]);
        // Updating p2's price reaches all laptop reviews (r1..r5) plus p2
        // itself, but not the camera review r6 or the book p5.
        assert!(affected.contains(&TupleRef { table: 0, row: 1 }));
        assert!(affected.contains(&TupleRef { table: 1, row: 0 }));
        assert!(affected.contains(&TupleRef { table: 1, row: 4 }));
        assert!(!affected.contains(&TupleRef { table: 1, row: 5 }));
        assert!(!affected.contains(&TupleRef { table: 0, row: 4 }));
    }

    #[test]
    fn missing_relation_errors() {
        let mut g = crate::graph::CausalGraph::new();
        g.add_intra_edge("ghost", "a", "b").unwrap();
        let db = amazon_db();
        assert!(GroundGraph::build(&db, &g).is_err());
    }
}
