//! Backdoor-criterion machinery (paper §3.3 and Appendix A.2.1-B).
//!
//! A set `C` satisfies the backdoor criterion w.r.t. treatment `B` and
//! outcome `Y` when (i) no member of `C` is a descendant of `B` or `Y`, and
//! (ii) `C` blocks every path from `B` to `Y` that starts with an edge into
//! `B` — equivalently, `B ⫫ Y | C` in the graph with `B`'s outgoing edges
//! removed.
//!
//! `minimal_backdoor_set` reproduces the paper's greedy procedure: "we start
//! with all non-descendants of B, Y excluding B, Y as C, and remove one node
//! at a time until we reach a minimal set".

use std::collections::HashSet;

use crate::dsep::d_separated;
use crate::graph::{CausalGraph, NodeId};

/// Check whether `set` satisfies the backdoor criterion for `(treatment,
/// outcome)` in `graph`.
pub fn is_valid_backdoor_set(
    graph: &CausalGraph,
    treatment: NodeId,
    outcome: NodeId,
    set: &HashSet<NodeId>,
) -> bool {
    if set.contains(&treatment) || set.contains(&outcome) {
        return false;
    }
    // (i) no descendants of treatment or outcome.
    let mut forbidden: HashSet<NodeId> = graph.descendants(treatment).into_iter().collect();
    forbidden.extend(graph.descendants(outcome));
    if set.iter().any(|n| forbidden.contains(n)) {
        return false;
    }
    // (ii) d-separation in the treatment-outgoing-edge-deleted graph.
    let n = graph.num_nodes();
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut parents: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for e in graph.edges() {
        if e.from == treatment {
            continue; // delete outgoing edges of the treatment
        }
        children[e.from].push(e.to);
        parents[e.to].push(e.from);
    }
    d_separated(&children, &parents, treatment, outcome, set)
}

/// The paper's *canonical* backdoor set used when no causal graph is
/// available (HypeR-NB, §2.2): every attribute except the treatment and the
/// outcome. Not validated against any graph.
pub fn canonical_backdoor_set(
    all_nodes: impl IntoIterator<Item = NodeId>,
    treatment: NodeId,
    outcome: NodeId,
) -> HashSet<NodeId> {
    all_nodes
        .into_iter()
        .filter(|&n| n != treatment && n != outcome)
        .collect()
}

/// Find a minimal valid backdoor set by the paper's greedy shrink, starting
/// from all permitted non-descendants. Returns `None` if no valid starting
/// set exists (e.g. the outcome causes the treatment through an unblockable
/// path).
pub fn minimal_backdoor_set(
    graph: &CausalGraph,
    treatment: NodeId,
    outcome: NodeId,
) -> Option<HashSet<NodeId>> {
    let mut forbidden: HashSet<NodeId> = graph.descendants(treatment).into_iter().collect();
    forbidden.extend(graph.descendants(outcome));
    forbidden.insert(treatment);
    forbidden.insert(outcome);

    let full: HashSet<NodeId> = (0..graph.num_nodes())
        .filter(|n| !forbidden.contains(n))
        .collect();

    let mut candidate = if is_valid_backdoor_set(graph, treatment, outcome, &full) {
        full
    } else {
        // Fall back to the treatment's permitted parents, which block every
        // backdoor path at its first hop when they are all conditionable.
        let parents: HashSet<NodeId> = graph
            .parents_of(treatment)
            .iter()
            .copied()
            .filter(|p| !forbidden.contains(p))
            .collect();
        if is_valid_backdoor_set(graph, treatment, outcome, &parents) {
            parents
        } else {
            return None;
        }
    };

    // Greedy shrink: drop nodes (in deterministic id order) while validity
    // is preserved.
    let mut members: Vec<NodeId> = candidate.iter().copied().collect();
    members.sort_unstable();
    for m in members {
        candidate.remove(&m);
        if !is_valid_backdoor_set(graph, treatment, outcome, &candidate) {
            candidate.insert(m);
        }
    }
    Some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{amazon_example_graph, CausalGraph, EdgeKind};

    /// Confounded triangle: Z → B, Z → Y, B → Y.
    fn confounder_graph() -> (CausalGraph, NodeId, NodeId, NodeId) {
        let mut g = CausalGraph::new();
        let z = g.node("t", "z");
        let b = g.node("t", "b");
        let y = g.node("t", "y");
        g.add_edge(z, b, EdgeKind::Intra).unwrap();
        g.add_edge(z, y, EdgeKind::Intra).unwrap();
        g.add_edge(b, y, EdgeKind::Intra).unwrap();
        (g, z, b, y)
    }

    #[test]
    fn confounder_must_be_adjusted() {
        let (g, z, b, y) = confounder_graph();
        assert!(!is_valid_backdoor_set(&g, b, y, &HashSet::new()));
        let set: HashSet<_> = [z].into_iter().collect();
        assert!(is_valid_backdoor_set(&g, b, y, &set));
        assert_eq!(minimal_backdoor_set(&g, b, y).unwrap(), set);
    }

    #[test]
    fn mediator_is_not_allowed() {
        // B → M → Y: M is a descendant of B; {M} is invalid, {} is valid.
        let mut g = CausalGraph::new();
        let b = g.node("t", "b");
        let m = g.node("t", "m");
        let y = g.node("t", "y");
        g.add_edge(b, m, EdgeKind::Intra).unwrap();
        g.add_edge(m, y, EdgeKind::Intra).unwrap();
        let bad: HashSet<_> = [m].into_iter().collect();
        assert!(!is_valid_backdoor_set(&g, b, y, &bad));
        assert!(is_valid_backdoor_set(&g, b, y, &HashSet::new()));
        assert!(minimal_backdoor_set(&g, b, y).unwrap().is_empty());
    }

    #[test]
    fn amazon_price_to_rating() {
        let g = amazon_example_graph();
        let price = g.node_id("product", "price").unwrap();
        let rating = g.node_id("review", "rating").unwrap();
        let set = minimal_backdoor_set(&g, price, rating).unwrap();
        // Quality confounds price → rating; the minimal set must block it.
        let quality = g.node_id("product", "quality").unwrap();
        assert!(is_valid_backdoor_set(&g, price, rating, &set));
        assert!(
            set.contains(&quality) || {
                // Or block further upstream via category+brand.
                let cat = g.node_id("product", "category").unwrap();
                let brand = g.node_id("product", "brand").unwrap();
                set.contains(&cat) && set.contains(&brand)
            },
            "minimal set {set:?} must block the quality backdoor"
        );
    }

    #[test]
    fn minimal_set_is_minimal() {
        let g = amazon_example_graph();
        let price = g.node_id("product", "price").unwrap();
        let rating = g.node_id("review", "rating").unwrap();
        let set = minimal_backdoor_set(&g, price, rating).unwrap();
        for &m in &set {
            let mut smaller = set.clone();
            smaller.remove(&m);
            assert!(
                !is_valid_backdoor_set(&g, price, rating, &smaller),
                "removing {m} keeps the set valid — not minimal"
            );
        }
    }

    #[test]
    fn canonical_set_excludes_endpoints() {
        let g = amazon_example_graph();
        let price = g.node_id("product", "price").unwrap();
        let rating = g.node_id("review", "rating").unwrap();
        let set = canonical_backdoor_set(0..g.num_nodes(), price, rating);
        assert_eq!(set.len(), g.num_nodes() - 2);
        assert!(!set.contains(&price));
        assert!(!set.contains(&rating));
    }

    #[test]
    fn m_bias_empty_set_valid() {
        // M-graph: the empty set is valid, the collider alone is not.
        let mut g = CausalGraph::new();
        let b = g.node("t", "b");
        let y = g.node("t", "y");
        let k = g.node("t", "k");
        let u1 = g.node("t", "u1");
        let u2 = g.node("t", "u2");
        g.add_edge(u1, b, EdgeKind::Intra).unwrap();
        g.add_edge(u1, k, EdgeKind::Intra).unwrap();
        g.add_edge(u2, k, EdgeKind::Intra).unwrap();
        g.add_edge(u2, y, EdgeKind::Intra).unwrap();
        assert!(is_valid_backdoor_set(&g, b, y, &HashSet::new()));
        let just_k: HashSet<_> = [k].into_iter().collect();
        assert!(!is_valid_backdoor_set(&g, b, y, &just_k));
        // Greedy from the full non-descendant set still lands on a valid set.
        let set = minimal_backdoor_set(&g, b, y).unwrap();
        assert!(is_valid_backdoor_set(&g, b, y, &set));
    }
}
