//! Structural causal models (SCMs): the generative side of the PRCM.
//!
//! The paper's synthetic experiments (§5.1, §5.4) generate data from known
//! structural equations and compute *ground truth* effects of hypothetical
//! updates by replaying the update through those equations. This module
//! provides exactly that:
//!
//! * [`Scm::sample`] — draw a relation of i.i.d. units,
//! * [`Scm::sample_paired`] — draw `(pre, post)` tables sharing exogenous
//!   noise, where `post` applies an [`Intervention`] to units satisfying a
//!   condition (the `When` clause) and re-propagates descendants: this is
//!   Definition 3's post-update distribution executed literally,
//! * [`Scm::enumerate_joint`] / [`Scm::enumerate_do`] — exact joint and
//!   interventional distributions for all-discrete models, used by the
//!   exact possible-world oracle in `hyper-core`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use hyper_storage::{Column, DataType, Field, Schema, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{CausalError, Result};
use crate::graph::{CausalGraph, EdgeKind};

/// Per-(unit, node) exogenous noise: one uniform and one standard normal
/// draw, consumed as each mechanism requires. Keeping noise explicit lets
/// pre/post worlds share it (counterfactual consistency).
#[derive(Debug, Clone, Copy)]
pub struct Noise {
    /// `U(0, 1)` draw (inverse-CDF sampling for discrete mechanisms).
    pub uniform: f64,
    /// `N(0, 1)` draw (additive noise for continuous mechanisms).
    pub gauss: f64,
}

/// A deterministic structural function of parent values.
pub type DeterministicFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A predicate over a (pre-update) row, e.g. the `When` clause.
pub type RowPredicate<'a> = &'a dyn Fn(&[Value]) -> bool;

/// A structural equation.
#[derive(Clone)]
pub enum Mechanism {
    /// Root categorical variable with the given distribution.
    CategoricalPrior(Vec<(Value, f64)>),
    /// Discrete conditional distribution: parent values → distribution.
    /// Combinations missing from the table fall back to `default`.
    DiscreteCpd {
        /// CPD rows keyed by parent value combination.
        table: HashMap<Vec<Value>, Vec<(Value, f64)>>,
        /// Fallback distribution.
        default: Vec<(Value, f64)>,
    },
    /// `intercept + Σ coef·parent + noise_std·ε`, optionally clamped and/or
    /// rounded to an integer.
    LinearGaussian {
        /// Intercept term.
        intercept: f64,
        /// One coefficient per declared parent (numeric parents only).
        coefs: Vec<f64>,
        /// Standard deviation of the Gaussian noise.
        noise_std: f64,
        /// Optional `[lo, hi]` clamp.
        clamp: Option<(f64, f64)>,
        /// Round to nearest integer and emit `Value::Int`.
        round: bool,
    },
    /// Bernoulli with `p = σ(intercept + Σ coef·parent)`, emitting
    /// `if_true` / `if_false`.
    Logistic {
        /// Intercept of the linear score.
        intercept: f64,
        /// One coefficient per declared parent.
        coefs: Vec<f64>,
        /// Value emitted on success.
        if_true: Value,
        /// Value emitted on failure.
        if_false: Value,
    },
    /// Deterministic function of the parents.
    Deterministic(DeterministicFn),
}

impl fmt::Debug for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mechanism::CategoricalPrior(d) => write!(f, "CategoricalPrior({} classes)", d.len()),
            Mechanism::DiscreteCpd { table, .. } => {
                write!(f, "DiscreteCpd({} rows)", table.len())
            }
            Mechanism::LinearGaussian {
                intercept, coefs, ..
            } => write!(f, "LinearGaussian(b0={intercept}, k={})", coefs.len()),
            Mechanism::Logistic { intercept, .. } => write!(f, "Logistic(b0={intercept})"),
            Mechanism::Deterministic(_) => write!(f, "Deterministic(fn)"),
        }
    }
}

/// How an intervention transforms the pre-update value (Definition 2's `f`).
#[derive(Debug, Clone)]
pub enum InterventionOp {
    /// `f(b) = const`.
    Set(Value),
    /// `f(b) = const × b`.
    Scale(f64),
    /// `f(b) = const + b`.
    Shift(f64),
}

impl InterventionOp {
    /// Apply to a pre-update value.
    pub fn apply(&self, pre: &Value) -> Result<Value> {
        match self {
            InterventionOp::Set(v) => Ok(v.clone()),
            InterventionOp::Scale(c) => {
                let x = pre.as_f64().ok_or_else(|| {
                    CausalError::InvalidMechanism(format!("cannot scale non-numeric {pre}"))
                })?;
                Ok(Value::Float(x * c))
            }
            InterventionOp::Shift(c) => {
                let x = pre.as_f64().ok_or_else(|| {
                    CausalError::InvalidMechanism(format!("cannot shift non-numeric {pre}"))
                })?;
                Ok(Value::Float(x + c))
            }
        }
    }
}

/// An intervention on one attribute.
#[derive(Debug, Clone)]
pub struct Intervention {
    /// Target attribute.
    pub attr: String,
    /// Update function.
    pub op: InterventionOp,
}

impl Intervention {
    /// `do(attr := f(attr))` helper.
    pub fn new(attr: impl Into<String>, op: InterventionOp) -> Self {
        Intervention {
            attr: attr.into(),
            op,
        }
    }
}

#[derive(Debug, Clone)]
struct ScmNode {
    name: String,
    dtype: DataType,
    parents: Vec<usize>,
    mechanism: Mechanism,
}

/// A single-unit structural causal model over named attributes.
///
/// Nodes must be declared parents-first (enforced because parents are
/// resolved by name at declaration time), so declaration order is a
/// topological order.
#[derive(Debug, Clone, Default)]
pub struct Scm {
    nodes: Vec<ScmNode>,
    by_name: HashMap<String, usize>,
}

impl Scm {
    /// Empty model.
    pub fn new() -> Self {
        Scm::default()
    }

    /// Declare a node. Parents must already exist.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        dtype: DataType,
        parents: &[&str],
        mechanism: Mechanism,
    ) -> Result<()> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(CausalError::DuplicateNode(name));
        }
        let parent_ids: Vec<usize> = parents
            .iter()
            .map(|p| {
                self.by_name
                    .get(*p)
                    .copied()
                    .ok_or_else(|| CausalError::UnknownNode((*p).to_string()))
            })
            .collect::<Result<_>>()?;
        // Validate coefficient arity for linear mechanisms.
        match &mechanism {
            Mechanism::LinearGaussian { coefs, .. } | Mechanism::Logistic { coefs, .. } => {
                if coefs.len() != parent_ids.len() {
                    return Err(CausalError::InvalidMechanism(format!(
                        "node `{name}`: {} coefficients for {} parents",
                        coefs.len(),
                        parent_ids.len()
                    )));
                }
            }
            Mechanism::CategoricalPrior(dist) => {
                if !parent_ids.is_empty() {
                    return Err(CausalError::InvalidMechanism(format!(
                        "node `{name}`: categorical prior cannot have parents"
                    )));
                }
                validate_dist(&name, dist)?;
            }
            Mechanism::DiscreteCpd { table, default } => {
                validate_dist(&name, default)?;
                for dist in table.values() {
                    validate_dist(&name, dist)?;
                }
            }
            Mechanism::Deterministic(_) => {}
        }
        self.by_name.insert(name.clone(), self.nodes.len());
        self.nodes.push(ScmNode {
            name,
            dtype,
            parents: parent_ids,
            mechanism,
        });
        Ok(())
    }

    /// Number of attributes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Attribute names in declaration (topological) order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.name.as_str()).collect()
    }

    /// Index of an attribute.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CausalError::UnknownNode(name.to_string()))
    }

    /// The schema of generated tables.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.nodes
                .iter()
                .map(|n| Field::new(n.name.clone(), n.dtype))
                .collect(),
        )
        .expect("node names are unique")
    }

    /// Export the attribute-level causal graph (all edges intra-tuple) for
    /// relation `relation`.
    pub fn to_causal_graph(&self, relation: &str) -> CausalGraph {
        let mut g = CausalGraph::new();
        let ids: Vec<_> = self
            .nodes
            .iter()
            .map(|n| g.node(relation, &n.name))
            .collect();
        for (i, n) in self.nodes.iter().enumerate() {
            for &p in &n.parents {
                g.add_edge(ids[p], ids[i], EdgeKind::Intra)
                    .expect("declaration order is topological");
            }
        }
        g
    }

    fn compute(&self, node: &ScmNode, parent_vals: &[Value], noise: Noise) -> Result<Value> {
        Ok(match &node.mechanism {
            Mechanism::CategoricalPrior(dist) => sample_discrete(dist, noise.uniform),
            Mechanism::DiscreteCpd { table, default } => {
                let dist = table.get(parent_vals).unwrap_or(default);
                sample_discrete(dist, noise.uniform)
            }
            Mechanism::LinearGaussian {
                intercept,
                coefs,
                noise_std,
                clamp,
                round,
            } => {
                let mut x = *intercept + noise_std * noise.gauss;
                for (c, v) in coefs.iter().zip(parent_vals) {
                    x += c * v.as_f64().ok_or_else(|| {
                        CausalError::InvalidMechanism(format!(
                            "node `{}`: non-numeric parent value {v}",
                            node.name
                        ))
                    })?;
                }
                if let Some((lo, hi)) = clamp {
                    x = x.clamp(*lo, *hi);
                }
                if *round {
                    Value::Int(x.round() as i64)
                } else {
                    Value::Float(x)
                }
            }
            Mechanism::Logistic {
                intercept,
                coefs,
                if_true,
                if_false,
            } => {
                let mut score = *intercept;
                for (c, v) in coefs.iter().zip(parent_vals) {
                    score += c * v.as_f64().ok_or_else(|| {
                        CausalError::InvalidMechanism(format!(
                            "node `{}`: non-numeric parent value {v}",
                            node.name
                        ))
                    })?;
                }
                let p = 1.0 / (1.0 + (-score).exp());
                if noise.uniform < p {
                    if_true.clone()
                } else {
                    if_false.clone()
                }
            }
            Mechanism::Deterministic(f) => f(parent_vals),
        })
    }

    /// Sample `n` i.i.d. units into a table named `relation`.
    pub fn sample(&self, relation: &str, n: usize, seed: u64) -> Result<Table> {
        let (pre, _) = self.sample_paired(relation, n, seed, &[], None)?;
        Ok(pre)
    }

    /// Sample `n` units and return `(pre, post)` tables sharing noise, where
    /// `post` applies `interventions` to units whose *pre* row satisfies
    /// `condition` (all units when `None`) and re-propagates descendants.
    pub fn sample_paired(
        &self,
        relation: &str,
        n: usize,
        seed: u64,
        interventions: &[Intervention],
        condition: Option<RowPredicate<'_>>,
    ) -> Result<(Table, Table)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let iv_idx: Vec<(usize, &InterventionOp)> = interventions
            .iter()
            .map(|iv| Ok((self.index_of(&iv.attr)?, &iv.op)))
            .collect::<Result<_>>()?;

        let k = self.nodes.len();
        // Exogenous noise is drawn up front, unit-major then node-minor —
        // the exact order the former row-wise generator consumed the RNG
        // in, so seeded datasets are unchanged by the columnar rewrite.
        let mut noises: Vec<Noise> = Vec::with_capacity(n * k);
        for _ in 0..n * k {
            noises.push(Noise {
                uniform: rng.gen::<f64>(),
                gauss: sample_std_normal(&mut rng),
            });
        }

        // Pre world, one typed column per node in topological order: each
        // mechanism reads its parents' already-completed columns.
        let schema = self.schema();
        let mut pre_cols: Vec<Column> = Vec::with_capacity(k);
        let mut parent_vals: Vec<Value> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let mut col = Column::with_capacity(node.dtype, n);
            for u in 0..n {
                parent_vals.clear();
                parent_vals.extend(node.parents.iter().map(|&p| pre_cols[p].value(u)));
                let v = self.compute(node, &parent_vals, noises[u * k + i])?;
                col.push(&v).map_err(CausalError::from)?;
            }
            pre_cols.push(col);
        }

        // Which units the intervention applies to (the `When` condition
        // reads the completed pre world).
        let applies: Vec<bool> = match condition {
            None => vec![true; n],
            Some(c) => {
                let mut row: Vec<Value> = Vec::with_capacity(k);
                (0..n)
                    .map(|u| {
                        row.clear();
                        row.extend(pre_cols.iter().map(|col| col.value(u)));
                        c(&row)
                    })
                    .collect()
            }
        };

        // Post world: same noise; intervened nodes transform their pre
        // values, descendants re-propagate off the post columns.
        let mut post_cols: Vec<Column> = Vec::with_capacity(k);
        for (i, node) in self.nodes.iter().enumerate() {
            let forced = iv_idx.iter().find(|(idx, _)| *idx == i);
            let mut col = Column::with_capacity(node.dtype, n);
            for u in 0..n {
                let v = match forced {
                    Some((_, op)) if applies[u] => op.apply(&pre_cols[i].value(u))?,
                    _ => {
                        parent_vals.clear();
                        parent_vals.extend(node.parents.iter().map(|&p| post_cols[p].value(u)));
                        self.compute(node, &parent_vals, noises[u * k + i])?
                    }
                };
                col.push(&v).map_err(CausalError::from)?;
            }
            post_cols.push(col);
        }

        let assemble = |cols: Vec<Column>| -> Result<Table> {
            let mut b = TableBuilder::new(relation, schema.clone());
            for (node, col) in self.nodes.iter().zip(cols) {
                b.set_column(&node.name, col).map_err(CausalError::from)?;
            }
            Ok(b.build())
        };
        Ok((assemble(pre_cols)?, assemble(post_cols)?))
    }

    /// Exact joint distribution for all-discrete models:
    /// `[(row, probability)]` with rows in declaration order.
    pub fn enumerate_joint(&self) -> Result<Vec<(Vec<Value>, f64)>> {
        self.enumerate_with(&HashMap::new())
    }

    /// Exact joint distribution under `do(attr := value)` for each entry.
    pub fn enumerate_do(&self, set: &[(String, Value)]) -> Result<Vec<(Vec<Value>, f64)>> {
        let mut forced: HashMap<usize, Value> = HashMap::new();
        for (a, v) in set {
            forced.insert(self.index_of(a)?, v.clone());
        }
        self.enumerate_with(&forced)
    }

    fn enumerate_with(&self, forced: &HashMap<usize, Value>) -> Result<Vec<(Vec<Value>, f64)>> {
        let mut worlds: Vec<(Vec<Value>, f64)> = vec![(Vec::new(), 1.0)];
        for (i, node) in self.nodes.iter().enumerate() {
            let mut next = Vec::with_capacity(worlds.len() * 2);
            for (row, p) in &worlds {
                if let Some(v) = forced.get(&i) {
                    let mut r = row.clone();
                    r.push(v.clone());
                    next.push((r, *p));
                    continue;
                }
                let dist: Vec<(Value, f64)> = match &node.mechanism {
                    Mechanism::CategoricalPrior(d) => d.clone(),
                    Mechanism::DiscreteCpd { table, default } => {
                        let parent_vals: Vec<Value> =
                            node.parents.iter().map(|&pi| row[pi].clone()).collect();
                        table.get(&parent_vals).unwrap_or(default).clone()
                    }
                    Mechanism::Deterministic(f) => {
                        let parent_vals: Vec<Value> =
                            node.parents.iter().map(|&pi| row[pi].clone()).collect();
                        vec![(f(&parent_vals), 1.0)]
                    }
                    m => {
                        return Err(CausalError::NotEnumerable(format!(
                            "node `{}` has continuous mechanism {m:?}",
                            node.name
                        )))
                    }
                };
                for (v, q) in dist {
                    if q <= 0.0 {
                        continue;
                    }
                    let mut r = row.clone();
                    r.push(v);
                    next.push((r, p * q));
                }
            }
            worlds = next;
        }
        Ok(worlds)
    }
}

fn validate_dist(name: &str, dist: &[(Value, f64)]) -> Result<()> {
    if dist.is_empty() {
        return Err(CausalError::InvalidMechanism(format!(
            "node `{name}`: empty distribution"
        )));
    }
    let total: f64 = dist.iter().map(|(_, p)| p).sum();
    if (total - 1.0).abs() > 1e-6 || dist.iter().any(|(_, p)| *p < 0.0) {
        return Err(CausalError::InvalidMechanism(format!(
            "node `{name}`: distribution sums to {total}, expected 1"
        )));
    }
    Ok(())
}

fn sample_discrete(dist: &[(Value, f64)], u: f64) -> Value {
    let mut acc = 0.0;
    for (v, p) in dist {
        acc += p;
        if u < acc {
            return v.clone();
        }
    }
    dist.last().expect("validated non-empty").0.clone()
}

/// Box-Muller standard normal from a uniform RNG.
fn sample_std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Z → B, Z → Y, B → Y, all binary: the canonical confounded model.
    pub(crate) fn confounded_binary() -> Scm {
        let mut scm = Scm::new();
        scm.add_node(
            "z",
            DataType::Int,
            &[],
            Mechanism::CategoricalPrior(vec![(Value::Int(0), 0.6), (Value::Int(1), 0.4)]),
        )
        .unwrap();
        let mut b_table = HashMap::new();
        b_table.insert(
            vec![Value::Int(0)],
            vec![(Value::Int(0), 0.8), (Value::Int(1), 0.2)],
        );
        b_table.insert(
            vec![Value::Int(1)],
            vec![(Value::Int(0), 0.3), (Value::Int(1), 0.7)],
        );
        scm.add_node(
            "b",
            DataType::Int,
            &["z"],
            Mechanism::DiscreteCpd {
                table: b_table,
                default: vec![(Value::Int(0), 1.0)],
            },
        )
        .unwrap();
        let mut y_table = HashMap::new();
        // P(y=1 | z, b)
        for (z, b, p1) in [(0, 0, 0.1), (0, 1, 0.5), (1, 0, 0.4), (1, 1, 0.9)] {
            y_table.insert(
                vec![Value::Int(z), Value::Int(b)],
                vec![(Value::Int(0), 1.0 - p1), (Value::Int(1), p1)],
            );
        }
        scm.add_node(
            "y",
            DataType::Int,
            &["z", "b"],
            Mechanism::DiscreteCpd {
                table: y_table,
                default: vec![(Value::Int(0), 1.0)],
            },
        )
        .unwrap();
        scm
    }

    #[test]
    fn declaration_requires_parents_first() {
        let mut scm = Scm::new();
        let err = scm
            .add_node(
                "child",
                DataType::Int,
                &["ghost"],
                Mechanism::LinearGaussian {
                    intercept: 0.0,
                    coefs: vec![1.0],
                    noise_std: 1.0,
                    clamp: None,
                    round: false,
                },
            )
            .unwrap_err();
        assert!(matches!(err, CausalError::UnknownNode(_)));
    }

    #[test]
    fn coefficient_arity_checked() {
        let mut scm = Scm::new();
        scm.add_node(
            "x",
            DataType::Float,
            &[],
            Mechanism::LinearGaussian {
                intercept: 0.0,
                coefs: vec![],
                noise_std: 1.0,
                clamp: None,
                round: false,
            },
        )
        .unwrap();
        let err = scm
            .add_node(
                "y",
                DataType::Float,
                &["x"],
                Mechanism::LinearGaussian {
                    intercept: 0.0,
                    coefs: vec![1.0, 2.0],
                    noise_std: 1.0,
                    clamp: None,
                    round: false,
                },
            )
            .unwrap_err();
        assert!(matches!(err, CausalError::InvalidMechanism(_)));
    }

    #[test]
    fn bad_distribution_rejected() {
        let mut scm = Scm::new();
        let err = scm
            .add_node(
                "z",
                DataType::Int,
                &[],
                Mechanism::CategoricalPrior(vec![(Value::Int(0), 0.6), (Value::Int(1), 0.6)]),
            )
            .unwrap_err();
        assert!(matches!(err, CausalError::InvalidMechanism(_)));
    }

    #[test]
    fn sampling_is_deterministic_and_matches_marginals() {
        let scm = confounded_binary();
        let t1 = scm.sample("d", 20_000, 7).unwrap();
        let t2 = scm.sample("d", 20_000, 7).unwrap();
        assert_eq!(t1.column(0), t2.column(0), "same seed, same data");
        let z1 = t1
            .column_by_name("z")
            .unwrap()
            .iter()
            .filter(|v| *v == Value::Int(1))
            .count() as f64
            / 20_000.0;
        assert!((z1 - 0.4).abs() < 0.02, "P(z=1) ≈ 0.4, got {z1}");
    }

    #[test]
    fn enumerate_joint_sums_to_one() {
        let scm = confounded_binary();
        let worlds = scm.enumerate_joint().unwrap();
        assert_eq!(worlds.len(), 8);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumerate_do_matches_adjustment_formula() {
        // P(y=1 | do(b=1)) = Σ_z P(z) P(y=1 | z, b=1)
        //                  = 0.6·0.5 + 0.4·0.9 = 0.66
        let scm = confounded_binary();
        let worlds = scm.enumerate_do(&[("b".into(), Value::Int(1))]).unwrap();
        let p_y1: f64 = worlds
            .iter()
            .filter(|(row, _)| row[2] == Value::Int(1))
            .map(|(_, p)| p)
            .sum();
        assert!((p_y1 - 0.66).abs() < 1e-12, "got {p_y1}");
        // Versus the *conditional* P(y=1 | b=1), which is confounded:
        let joint = scm.enumerate_joint().unwrap();
        let p_b1: f64 = joint
            .iter()
            .filter(|(row, _)| row[1] == Value::Int(1))
            .map(|(_, p)| p)
            .sum();
        let p_y1_b1: f64 = joint
            .iter()
            .filter(|(row, _)| row[1] == Value::Int(1) && row[2] == Value::Int(1))
            .map(|(_, p)| p)
            .sum::<f64>()
            / p_b1;
        assert!(
            (p_y1_b1 - p_y1).abs() > 0.01,
            "confounding must separate conditional from interventional"
        );
    }

    #[test]
    fn paired_sampling_respects_condition_and_noise_sharing() {
        let scm = confounded_binary();
        let cond = |row: &[Value]| row[0] == Value::Int(0);
        let (pre, post) = scm
            .sample_paired(
                "d",
                5000,
                11,
                &[Intervention::new("b", InterventionOp::Set(Value::Int(1)))],
                Some(&cond),
            )
            .unwrap();
        for i in 0..pre.num_rows() {
            // z is a non-descendant: identical in both worlds.
            assert_eq!(pre.column(0).value(i), post.column(0).value(i));
            if pre.column(0).value(i) == Value::Int(0) {
                assert_eq!(
                    post.column(1).value(i),
                    Value::Int(1),
                    "intervened where z=0"
                );
            } else {
                assert_eq!(
                    pre.column(1).value(i),
                    post.column(1).value(i),
                    "untouched where z=1"
                );
            }
        }
    }

    #[test]
    fn paired_sampling_interventional_mean_matches_enumeration() {
        let scm = confounded_binary();
        let (_, post) = scm
            .sample_paired(
                "d",
                40_000,
                3,
                &[Intervention::new("b", InterventionOp::Set(Value::Int(1)))],
                None,
            )
            .unwrap();
        let p_y1 = post
            .column_by_name("y")
            .unwrap()
            .iter()
            .filter(|v| *v == Value::Int(1))
            .count() as f64
            / post.num_rows() as f64;
        assert!((p_y1 - 0.66).abs() < 0.01, "sampled {p_y1}, exact 0.66");
    }

    #[test]
    fn scale_and_shift_interventions() {
        let mut scm = Scm::new();
        scm.add_node(
            "x",
            DataType::Float,
            &[],
            Mechanism::LinearGaussian {
                intercept: 10.0,
                coefs: vec![],
                noise_std: 0.0,
                clamp: None,
                round: false,
            },
        )
        .unwrap();
        scm.add_node(
            "y",
            DataType::Float,
            &["x"],
            Mechanism::LinearGaussian {
                intercept: 1.0,
                coefs: vec![2.0],
                noise_std: 0.0,
                clamp: None,
                round: false,
            },
        )
        .unwrap();
        let (_, post) = scm
            .sample_paired(
                "d",
                10,
                1,
                &[Intervention::new("x", InterventionOp::Scale(1.5))],
                None,
            )
            .unwrap();
        // x: 10 → 15, y = 1 + 2x = 31.
        assert_eq!(post.column(0).value(0), Value::Float(15.0));
        assert_eq!(post.column(1).value(0), Value::Float(31.0));

        let (_, post) = scm
            .sample_paired(
                "d",
                1,
                1,
                &[Intervention::new("x", InterventionOp::Shift(-4.0))],
                None,
            )
            .unwrap();
        assert_eq!(post.column(0).value(0), Value::Float(6.0));
        assert_eq!(post.column(1).value(0), Value::Float(13.0));
    }

    #[test]
    fn to_causal_graph_preserves_structure() {
        let scm = confounded_binary();
        let g = scm.to_causal_graph("d");
        assert_eq!(g.num_nodes(), 3);
        let z = g.node_id("d", "z").unwrap();
        let b = g.node_id("d", "b").unwrap();
        let y = g.node_id("d", "y").unwrap();
        assert!(g.has_path(z, y));
        assert!(g.has_path(b, y));
        assert!(!g.has_path(y, b));
    }

    #[test]
    fn enumeration_rejects_continuous() {
        let mut scm = Scm::new();
        scm.add_node(
            "x",
            DataType::Float,
            &[],
            Mechanism::LinearGaussian {
                intercept: 0.0,
                coefs: vec![],
                noise_std: 1.0,
                clamp: None,
                round: false,
            },
        )
        .unwrap();
        assert!(matches!(
            scm.enumerate_joint().unwrap_err(),
            CausalError::NotEnumerable(_)
        ));
    }
}
