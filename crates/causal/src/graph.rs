//! Schema-level causal graphs (the paper's Figure 2).
//!
//! Nodes are `(relation, attribute)` pairs; edges carry a *kind* describing
//! how they ground to tuple-level dependencies:
//!
//! * [`EdgeKind::Intra`] — within one tuple (solid edges in Fig. 2),
//! * [`EdgeKind::ForeignKey`] — across relations along a declared FK (a
//!   product's `Price` affecting its reviews' `Rating`),
//! * [`EdgeKind::SameValue`] — across tuples of the same relation sharing a
//!   grouping attribute's value (dashed edges in Fig. 2: an Asus laptop's
//!   `Price` affecting a Vaio laptop's `Rating` because both are laptops).

use std::collections::HashMap;
use std::fmt;

use crate::error::{CausalError, Result};
use crate::topo;

/// Identifier of a node in a [`CausalGraph`].
pub type NodeId = usize;

/// A `(relation, attribute)` node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrNode {
    /// Relation name.
    pub relation: String,
    /// Attribute name.
    pub attribute: String,
}

impl AttrNode {
    /// Construct a node reference.
    pub fn new(relation: impl Into<String>, attribute: impl Into<String>) -> Self {
        AttrNode {
            relation: relation.into(),
            attribute: attribute.into(),
        }
    }
}

impl fmt::Display for AttrNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.relation, self.attribute)
    }
}

/// How a schema-level edge grounds to tuple-level dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeKind {
    /// Dependency between two attributes of the *same tuple*.
    Intra,
    /// Dependency across relations along a foreign key: the `from` attribute
    /// of the referenced (parent) tuple affects the `to` attribute of every
    /// referencing (child) tuple, or vice versa.
    ForeignKey,
    /// Dependency across tuples that share the value of `group_by` (in the
    /// `from` node's relation).
    SameValue {
        /// The grouping attribute whose shared value links tuples.
        group_by: String,
    },
}

/// A directed causal edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalEdge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Grounding semantics.
    pub kind: EdgeKind,
}

/// A schema-level causal DAG.
#[derive(Debug, Clone, Default)]
pub struct CausalGraph {
    nodes: Vec<AttrNode>,
    by_name: HashMap<(String, String), NodeId>,
    edges: Vec<CausalEdge>,
    children: Vec<Vec<NodeId>>,
    parents: Vec<Vec<NodeId>>,
}

impl CausalGraph {
    /// An empty graph.
    pub fn new() -> Self {
        CausalGraph::default()
    }

    /// Add a node; returns its id. Duplicate nodes are rejected.
    pub fn add_node(&mut self, node: AttrNode) -> Result<NodeId> {
        let key = (node.relation.clone(), node.attribute.clone());
        if self.by_name.contains_key(&key) {
            return Err(CausalError::DuplicateNode(node.to_string()));
        }
        let id = self.nodes.len();
        self.by_name.insert(key, id);
        self.nodes.push(node);
        self.children.push(Vec::new());
        self.parents.push(Vec::new());
        Ok(id)
    }

    /// Convenience: add (or look up) a node by names.
    pub fn node(&mut self, relation: &str, attribute: &str) -> NodeId {
        let key = (relation.to_string(), attribute.to_string());
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        self.add_node(AttrNode::new(relation, attribute))
            .expect("checked for existence above")
    }

    /// Resolve a node id by names.
    pub fn node_id(&self, relation: &str, attribute: &str) -> Result<NodeId> {
        self.by_name
            .get(&(relation.to_string(), attribute.to_string()))
            .copied()
            .ok_or_else(|| CausalError::UnknownNode(format!("{relation}.{attribute}")))
    }

    /// Node payload.
    pub fn node_info(&self, id: NodeId) -> &AttrNode {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[AttrNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[CausalEdge] {
        &self.edges
    }

    /// Content fingerprint: a stable 64-bit hash of nodes (in id order)
    /// and edges (in insertion order, with grounding kinds). Together with
    /// [`hyper_storage::Database::fingerprint`] this keys the process-wide
    /// shared artifact store — sessions over equal `(data, model)` pairs
    /// share block decompositions and fitted estimators.
    pub fn fingerprint(&self) -> u64 {
        let mut h = hyper_storage::Fingerprint::new();
        h.write_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            h.write_str(&n.relation);
            h.write_str(&n.attribute);
        }
        h.write_u64(self.edges.len() as u64);
        for e in &self.edges {
            h.write_u64(e.from as u64);
            h.write_u64(e.to as u64);
            match &e.kind {
                EdgeKind::Intra => h.write_u8(b'i'),
                EdgeKind::ForeignKey => h.write_u8(b'k'),
                EdgeKind::SameValue { group_by } => {
                    h.write_u8(b'g');
                    h.write_str(group_by);
                }
            }
        }
        h.finish()
    }

    /// Add a directed edge, rejecting cycles and malformed kinds.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) -> Result<()> {
        if from >= self.nodes.len() || to >= self.nodes.len() {
            return Err(CausalError::UnknownNode(format!("edge {from}→{to}")));
        }
        if from == to {
            return Err(CausalError::InvalidEdge("self-loop".into()));
        }
        if kind == EdgeKind::Intra && self.nodes[from].relation != self.nodes[to].relation {
            return Err(CausalError::InvalidEdge(format!(
                "intra-tuple edge {} → {} spans relations",
                self.nodes[from], self.nodes[to]
            )));
        }
        // Tentatively add, then verify acyclicity at the attribute level.
        self.children[from].push(to);
        self.parents[to].push(from);
        if topo::topological_order(&self.children).is_none() {
            self.children[from].pop();
            self.parents[to].pop();
            return Err(CausalError::CycleDetected(format!(
                "{} → {}",
                self.nodes[from], self.nodes[to]
            )));
        }
        self.edges.push(CausalEdge { from, to, kind });
        Ok(())
    }

    /// Convenience: add an intra-tuple edge by attribute names.
    pub fn add_intra_edge(&mut self, relation: &str, from_attr: &str, to_attr: &str) -> Result<()> {
        let f = self.node(relation, from_attr);
        let t = self.node(relation, to_attr);
        self.add_edge(f, t, EdgeKind::Intra)
    }

    /// Children (direct effects) of a node.
    pub fn children_of(&self, id: NodeId) -> &[NodeId] {
        &self.children[id]
    }

    /// Parents (direct causes) of a node.
    pub fn parents_of(&self, id: NodeId) -> &[NodeId] {
        &self.parents[id]
    }

    /// Edges out of `id` with their kinds.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = &CausalEdge> {
        self.edges.iter().filter(move |e| e.from == id)
    }

    /// A topological order of the nodes (always exists: edges are checked).
    pub fn topological_order(&self) -> Vec<NodeId> {
        topo::topological_order(&self.children).expect("graph is maintained acyclic")
    }

    /// All descendants of `id` (excluding itself).
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        topo::reachable(&self.children, &[id])
            .into_iter()
            .filter(|&n| n != id)
            .collect()
    }

    /// All ancestors of `id` (excluding itself).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        topo::reachable(&self.parents, &[id])
            .into_iter()
            .filter(|&n| n != id)
            .collect()
    }

    /// True iff a directed path `from ⇝ to` exists.
    pub fn has_path(&self, from: NodeId, to: NodeId) -> bool {
        from == to || topo::reachable(&self.children, &[from]).contains(&to)
    }

    /// True iff the two nodes are connected ignoring edge direction — the
    /// paper's pre-condition for multi-attribute updates is the *absence* of
    /// such paths between updated attributes.
    pub fn has_undirected_path(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let mut undirected: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            undirected[e.from].push(e.to);
            undirected[e.to].push(e.from);
        }
        topo::reachable(&undirected, &[a]).contains(&b)
    }

    /// Child adjacency lists (for algorithms that work on raw adjacency).
    pub fn adjacency(&self) -> &[Vec<NodeId>] {
        &self.children
    }

    /// Parent adjacency lists.
    pub fn parent_adjacency(&self) -> &[Vec<NodeId>] {
        &self.parents
    }

    /// Build the *augmented* graph of §A.3.2: add a node `agg_alias`
    /// representing `Agg(source)` aggregated into `into_relation`. The new
    /// node becomes a child of `source` and the parent of all of `source`'s
    /// children, whose direct edges from `source` are removed.
    pub fn augment_with_aggregate(
        &self,
        source: NodeId,
        into_relation: &str,
        agg_alias: &str,
    ) -> Result<(CausalGraph, NodeId)> {
        let mut g = CausalGraph::new();
        for n in &self.nodes {
            g.add_node(n.clone())?;
        }
        let agg_id = g.add_node(AttrNode::new(into_relation, agg_alias))?;
        for e in &self.edges {
            if e.from == source {
                // Redirect source → child edges to agg → child. The kind is
                // recomputed because the aggregate may live in a different
                // relation than the original source.
                let kind = if g.node_info(agg_id).relation == g.node_info(e.to).relation {
                    EdgeKind::Intra
                } else {
                    EdgeKind::ForeignKey
                };
                g.add_edge(agg_id, e.to, kind)?;
            } else {
                g.add_edge(e.from, e.to, e.kind.clone())?;
            }
        }
        let source_kind = if g.node_info(source).relation == g.node_info(agg_id).relation {
            EdgeKind::Intra
        } else {
            EdgeKind::ForeignKey
        };
        g.add_edge(source, agg_id, source_kind)?;
        Ok((g, agg_id))
    }
}

impl fmt::Display for CausalGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CausalGraph[{} nodes]", self.nodes.len())?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} → {} ({:?})",
                self.nodes[e.from], self.nodes[e.to], e.kind
            )?;
        }
        Ok(())
    }
}

/// Build the paper's Figure-2 Amazon graph (used by examples and tests).
pub fn amazon_example_graph() -> CausalGraph {
    let mut g = CausalGraph::new();
    let category = g.node("product", "category");
    let brand = g.node("product", "brand");
    let quality = g.node("product", "quality");
    let color = g.node("product", "color");
    let price = g.node("product", "price");
    let rating = g.node("review", "rating");
    let sentiment = g.node("review", "sentiment");

    g.add_edge(category, quality, EdgeKind::Intra).unwrap();
    g.add_edge(brand, quality, EdgeKind::Intra).unwrap();
    g.add_edge(category, price, EdgeKind::Intra).unwrap();
    g.add_edge(brand, price, EdgeKind::Intra).unwrap();
    g.add_edge(quality, price, EdgeKind::Intra).unwrap();
    g.add_edge(color, price, EdgeKind::Intra).unwrap();
    // Product attributes affect this product's reviews via the FK.
    g.add_edge(price, rating, EdgeKind::ForeignKey).unwrap();
    g.add_edge(quality, rating, EdgeKind::ForeignKey).unwrap();
    g.add_edge(quality, sentiment, EdgeKind::ForeignKey)
        .unwrap();
    g.add_edge(sentiment, rating, EdgeKind::Intra).unwrap();
    // Competitor price affects ratings of same-category products (dashed).
    g.add_edge(
        price,
        rating,
        EdgeKind::SameValue {
            group_by: "category".into(),
        },
    )
    .unwrap();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_and_edges() {
        let g = amazon_example_graph();
        assert_eq!(g.num_nodes(), 7);
        let price = g.node_id("product", "price").unwrap();
        let rating = g.node_id("review", "rating").unwrap();
        assert!(g.has_path(price, rating));
        assert!(!g.has_path(rating, price));
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut g = CausalGraph::new();
        g.add_node(AttrNode::new("t", "a")).unwrap();
        assert!(g.add_node(AttrNode::new("t", "a")).is_err());
    }

    #[test]
    fn cycle_rejected_and_rolled_back() {
        let mut g = CausalGraph::new();
        let a = g.node("t", "a");
        let b = g.node("t", "b");
        g.add_edge(a, b, EdgeKind::Intra).unwrap();
        let err = g.add_edge(b, a, EdgeKind::Intra).unwrap_err();
        assert!(matches!(err, CausalError::CycleDetected(_)));
        // Rollback leaves the graph usable.
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.children_of(b), &[] as &[NodeId]);
    }

    #[test]
    fn intra_edge_across_relations_rejected() {
        let mut g = CausalGraph::new();
        let a = g.node("t1", "a");
        let b = g.node("t2", "b");
        assert!(g.add_edge(a, b, EdgeKind::Intra).is_err());
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = CausalGraph::new();
        let a = g.node("t", "a");
        assert!(g.add_edge(a, a, EdgeKind::Intra).is_err());
    }

    #[test]
    fn descendants_and_ancestors() {
        let g = amazon_example_graph();
        let quality = g.node_id("product", "quality").unwrap();
        let rating = g.node_id("review", "rating").unwrap();
        let desc = g.descendants(quality);
        assert!(desc.contains(&g.node_id("product", "price").unwrap()));
        assert!(desc.contains(&rating));
        let anc = g.ancestors(rating);
        assert!(anc.contains(&g.node_id("product", "category").unwrap()));
        assert!(!anc.contains(&rating));
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = amazon_example_graph();
        let order = g.topological_order();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for e in g.edges() {
            assert!(pos[&e.from] < pos[&e.to], "edge {e:?} violates order");
        }
    }

    #[test]
    fn undirected_path_detection() {
        let g = amazon_example_graph();
        let color = g.node_id("product", "color").unwrap();
        let sentiment = g.node_id("review", "sentiment").unwrap();
        // color → price → rating ← sentiment: connected undirected.
        assert!(g.has_undirected_path(color, sentiment));
        assert!(!g.has_path(color, sentiment));
    }

    #[test]
    fn augmentation_reroutes_children() {
        let g = amazon_example_graph();
        let rating = g.node_id("review", "rating").unwrap();
        let sentiment = g.node_id("review", "sentiment").unwrap();
        let (aug, agg) = g
            .augment_with_aggregate(sentiment, "product", "avg_senti")
            .unwrap();
        // sentiment's old child (rating) now hangs off the aggregate.
        assert!(aug.children_of(agg).contains(&rating));
        assert!(aug.children_of(sentiment).contains(&agg));
        assert!(!aug.children_of(sentiment).contains(&rating));
    }
}
