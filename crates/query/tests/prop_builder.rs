//! Property tests for builder ↔ parser equivalence: a query assembled with
//! the typed builders renders to text that re-parses to the *same* AST
//! (`parse ∘ display ∘ build = build`), and builder-made and parser-made
//! queries produce identical structural [`QueryKey`]s — the invariant that
//! lets them share session cache entries.

use hyper_query::{
    parse_query, Bindings, HExpr, HOp, HowTo, HypotheticalQuery, QueryKey, UpdateFunc, WhatIf,
    WhatIfQuery,
};
use hyper_storage::{AggFunc, Value};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Identifiers that cannot collide with keywords.
    "[a-z][a-z0-9_]{0,6}x".prop_map(|s| s)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        // Strictly non-integral floats: integral ones would re-parse as
        // Int (SQL-ish literal typing), which is correct but not identical.
        (-100i32..100).prop_map(|i| Value::Float(i as f64 + 0.5)),
        "[a-zA-Z '0-9]{0,8}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_cmp() -> impl Strategy<Value = HOp> {
    prop_oneof![
        Just(HOp::Eq),
        Just(HOp::Ne),
        Just(HOp::Lt),
        Just(HOp::Le),
        Just(HOp::Gt),
        Just(HOp::Ge),
    ]
}

/// Predicates assembled through the expression helpers the builders use,
/// including `Param(…)` leaves.
fn arb_pred() -> impl Strategy<Value = HExpr> {
    let leaf = prop_oneof![
        (arb_ident(), arb_cmp(), arb_value()).prop_map(|(a, op, v)| HExpr::binary(
            op,
            HExpr::attr(a),
            HExpr::Lit(v)
        )),
        (arb_ident(), arb_cmp(), arb_value()).prop_map(|(a, op, v)| HExpr::binary(
            op,
            HExpr::post(a),
            HExpr::Lit(v)
        )),
        (arb_ident(), arb_cmp(), arb_ident()).prop_map(|(a, op, p)| HExpr::binary(
            op,
            HExpr::pre(a),
            HExpr::param(p)
        )),
        (arb_ident(), prop::collection::vec(arb_value(), 1..4),)
            .prop_map(|(a, list)| HExpr::pre(a).in_list(list)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

fn arb_update_func() -> impl Strategy<Value = UpdateFunc> {
    prop_oneof![
        arb_value().prop_map(UpdateFunc::Set),
        (1i32..40).prop_map(|c| UpdateFunc::Scale(c as f64 / 8.0)),
        (-50i32..50).prop_map(|c| UpdateFunc::Shift(c as f64)),
        arb_ident().prop_map(|name| UpdateFunc::Param {
            name,
            mode: hyper_query::ParamMode::Set,
        }),
        arb_ident().prop_map(|name| UpdateFunc::Param {
            name,
            mode: hyper_query::ParamMode::Scale,
        }),
        arb_ident().prop_map(|name| UpdateFunc::Param {
            name,
            mode: hyper_query::ParamMode::Shift,
        }),
    ]
}

fn arb_agg() -> impl Strategy<Value = AggFunc> {
    prop_oneof![Just(AggFunc::Count), Just(AggFunc::Sum), Just(AggFunc::Avg)]
}

/// A what-if query composed entirely through the [`WhatIf`] builder.
fn arb_built_whatif() -> impl Strategy<Value = WhatIfQuery> {
    (
        arb_ident(),
        prop::option::of(arb_pred()),
        prop::collection::vec((arb_ident(), arb_update_func()), 1..3),
        arb_agg(),
        prop::option::of(arb_pred()),
        prop::option::of(arb_ident()),
    )
        .prop_map(|(table, when, mut updates, agg, for_clause, out_attr)| {
            // Distinct update attributes (the validator rejects duplicates).
            updates.sort_by(|a, b| a.0.cmp(&b.0));
            updates.dedup_by(|a, b| a.0 == b.0);
            let mut b = WhatIf::over(table);
            // `When` may only reference Pre values: strip Post-mentioning
            // predicates the way a caller would.
            if let Some(w) = when.filter(|w| !w.mentions_post()) {
                b = b.when(w);
            }
            for (attr, func) in updates {
                b = b.update(attr, func);
            }
            b = match (agg, out_attr) {
                (AggFunc::Count, None) => b.output_count_star(),
                (AggFunc::Count, Some(attr)) => b.output_count(HExpr::post(attr).gt(0)),
                (AggFunc::Avg, attr) => b.output_avg_post(attr.unwrap_or_else(|| "yx".into())),
                (AggFunc::Sum, attr) => {
                    b.output_sum(HExpr::post(attr.unwrap_or_else(|| "yx".into())))
                }
                _ => b.output_count_star(),
            };
            if let Some(fc) = for_clause {
                b = b.filter(fc);
            }
            b.build().expect("builder assembled a valid query")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(display(built)) == built`.
    #[test]
    fn built_whatif_survives_render_parse(q in arb_built_whatif()) {
        let text = HypotheticalQuery::WhatIf(q.clone()).to_string();
        let parsed = parse_query(&text)
            .map_err(|e| TestCaseError::fail(format!("re-parse of `{text}`: {e}")))?;
        prop_assert_eq!(HypotheticalQuery::WhatIf(q), parsed, "{}", text);
    }

    /// A built query and its parsed rendering key identically (so they
    /// share cache entries in a session).
    #[test]
    fn built_and_parsed_share_query_keys(q in arb_built_whatif()) {
        let built = HypotheticalQuery::WhatIf(q);
        let parsed = parse_query(&built.to_string()).unwrap();
        prop_assert_eq!(QueryKey::of_query(&built), QueryKey::of_query(&parsed));
        prop_assert_eq!(
            QueryKey::of_use(built.use_clause()),
            QueryKey::of_use(parsed.use_clause()),
            "view cache keys must agree"
        );
    }

    /// Binding a template is pure substitution: rendering the bound query
    /// and binding the re-parsed template commute.
    #[test]
    fn bind_commutes_with_render_parse(q in arb_built_whatif()) {
        let mut bindings = Bindings::new();
        for (i, name) in q.param_names().into_iter().enumerate() {
            bindings.insert(name, Value::Int(i as i64 + 1));
        }
        let bound = match q.bind(&bindings) {
            Ok(b) => b,
            Err(e) => return Err(TestCaseError::fail(format!("bind failed: {e}"))),
        };
        prop_assert!(bound.param_names().is_empty());
        let reparsed = parse_query(&HypotheticalQuery::WhatIf(q).to_string()).unwrap();
        let rebound = reparsed.bind(&bindings).unwrap();
        prop_assert_eq!(HypotheticalQuery::WhatIf(bound), rebound);
    }

    /// The same holds for how-to queries built with [`HowTo`].
    #[test]
    fn built_howto_survives_render_parse(
        (table, obj_attr, attrs) in (arb_ident(), arb_ident(), prop::collection::vec(arb_ident(), 1..3)),
        maximize in any::<bool>(),
        range in prop::option::of((0i32..100, 100i32..500)),
    ) {
        let mut attrs = attrs;
        attrs.sort();
        attrs.dedup();
        attrs.retain(|a| *a != obj_attr);
        if attrs.is_empty() {
            return Ok(()); // nothing updatable left after dedup
        }
        let mut b = if maximize {
            HowTo::maximize(AggFunc::Avg, obj_attr)
        } else {
            HowTo::minimize(AggFunc::Avg, obj_attr)
        }
        .over(table);
        for a in &attrs {
            b = b.update(a.clone());
        }
        if let Some((lo, hi)) = range {
            b = b.limit_range(attrs[0].clone(), Some(lo as f64), Some(hi as f64));
        }
        let q = b.build().expect("valid how-to");
        let text = HypotheticalQuery::HowTo(q.clone()).to_string();
        let parsed = parse_query(&text)
            .map_err(|e| TestCaseError::fail(format!("re-parse of `{text}`: {e}")))?;
        prop_assert_eq!(
            QueryKey::of_howto(&q),
            QueryKey::of_query(&parsed),
            "{}", text
        );
        prop_assert_eq!(HypotheticalQuery::HowTo(q), parsed, "{}", text);
    }
}
