//! Property test: rendering any generated query AST and re-parsing it
//! yields the same AST (`parse ∘ render = id`).

use hyper_query::{
    parse_query, HExpr, HOp, HowToQuery, HypotheticalQuery, LimitConstraint, ObjectiveDirection,
    ObjectiveSpec, OutputArg, OutputSpec, UpdateFunc, UpdateSpec, UseClause, WhatIfQuery,
};
use hyper_storage::{AggFunc, Value};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Identifiers that cannot collide with keywords.
    "[a-z][a-z0-9_]{0,6}x".prop_map(|s| s)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        // Strictly non-integral floats: integral ones would re-parse as
        // Int (SQL-ish literal typing), which is correct but not identical.
        (-100i32..100).prop_map(|i| Value::Float(i as f64 + 0.5)),
        "[a-zA-Z '0-9]{0,8}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_cmp() -> impl Strategy<Value = HOp> {
    prop_oneof![
        Just(HOp::Eq),
        Just(HOp::Ne),
        Just(HOp::Lt),
        Just(HOp::Le),
        Just(HOp::Gt),
        Just(HOp::Ge),
    ]
}

/// Simple predicates: comparisons, In-lists and conjunctions/disjunctions
/// over them.
fn arb_pred() -> impl Strategy<Value = HExpr> {
    let leaf = prop_oneof![
        (arb_ident(), arb_cmp(), arb_value()).prop_map(|(a, op, v)| HExpr::binary(
            op,
            HExpr::attr(a),
            HExpr::Lit(v)
        )),
        (arb_ident(), arb_cmp(), arb_value()).prop_map(|(a, op, v)| HExpr::binary(
            op,
            HExpr::post(a),
            HExpr::Lit(v)
        )),
        (
            arb_ident(),
            prop::collection::vec(arb_value(), 1..4),
            any::<bool>()
        )
            .prop_map(|(a, list, negated)| HExpr::InList {
                expr: Box::new(HExpr::pre(a)),
                list,
                negated,
            }),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| HExpr::binary(HOp::And, a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| HExpr::binary(HOp::Or, a, b)),
        ]
    })
}

fn arb_update() -> impl Strategy<Value = UpdateSpec> {
    (
        arb_ident(),
        prop_oneof![
            arb_value().prop_map(UpdateFunc::Set),
            (1i32..40).prop_map(|c| UpdateFunc::Scale(c as f64 / 8.0)),
            (-50i32..50).prop_map(|c| UpdateFunc::Shift(c as f64)),
        ],
    )
        .prop_map(|(attr, func)| UpdateSpec { attr, func })
}

fn arb_agg() -> impl Strategy<Value = AggFunc> {
    prop_oneof![Just(AggFunc::Count), Just(AggFunc::Sum), Just(AggFunc::Avg)]
}

fn arb_whatif() -> impl Strategy<Value = WhatIfQuery> {
    (
        arb_ident(),
        prop::option::of(arb_pred()),
        prop::collection::vec(arb_update(), 1..3),
        arb_agg(),
        prop::option::of(arb_pred()),
        prop::option::of(arb_ident()),
    )
        .prop_map(|(table, when, mut updates, agg, for_clause, out_attr)| {
            // Distinct update attributes.
            updates.dedup_by(|a, b| a.attr == b.attr);
            let arg = match (agg, out_attr) {
                (AggFunc::Count, None) => OutputArg::Star,
                (_, attr) => OutputArg::Expr(HExpr::post(attr.unwrap_or_else(|| "yx".into()))),
            };
            WhatIfQuery {
                use_clause: UseClause::Table(table),
                when,
                updates,
                output: OutputSpec { agg, arg },
                for_clause,
            }
        })
}

fn arb_howto() -> impl Strategy<Value = HowToQuery> {
    (
        arb_ident(),
        prop::option::of(arb_pred()),
        prop::collection::vec(arb_ident(), 1..4),
        arb_agg(),
        arb_ident(),
        any::<bool>(),
        prop::option::of((0i32..100, 100i32..500)),
    )
        .prop_map(|(table, when, mut attrs, agg, obj_attr, maximize, range)| {
            attrs.sort();
            attrs.dedup();
            let limits = match range {
                Some((lo, hi)) => vec![LimitConstraint::Range {
                    attr: attrs[0].clone(),
                    lo: Some((lo as f64).into()),
                    hi: Some((hi as f64).into()),
                }],
                None => Vec::new(),
            };
            HowToQuery {
                use_clause: UseClause::Table(table),
                when,
                update_attrs: attrs,
                limits,
                objective: ObjectiveSpec {
                    direction: if maximize {
                        ObjectiveDirection::Maximize
                    } else {
                        ObjectiveDirection::Minimize
                    },
                    agg,
                    attr: obj_attr,
                    predicate: None,
                },
                for_clause: None,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn whatif_render_parse_roundtrip(q in arb_whatif()) {
        let text = HypotheticalQuery::WhatIf(q.clone()).to_string();
        let parsed = parse_query(&text)
            .map_err(|e| TestCaseError::fail(format!("re-parse of `{text}`: {e}")))?;
        prop_assert_eq!(HypotheticalQuery::WhatIf(q), parsed, "{}", text);
    }

    #[test]
    fn howto_render_parse_roundtrip(q in arb_howto()) {
        let text = HypotheticalQuery::HowTo(q.clone()).to_string();
        let parsed = parse_query(&text)
            .map_err(|e| TestCaseError::fail(format!("re-parse of `{text}`: {e}")))?;
        prop_assert_eq!(HypotheticalQuery::HowTo(q), parsed, "{}", text);
    }
}
