//! Rendering hypothetical queries back to query text, such that
//! `parse(render(q)) == q` (round-trip property, tested below and in the
//! crate's property tests).

use std::fmt;

use hyper_storage::Value;

use crate::ast::*;

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Null => "NULL".to_string(),
        other => other.to_string(),
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column { name, alias } => match alias {
                Some(a) => write!(f, "{name} As {a}"),
                None => write!(f, "{name}"),
            },
            SelectItem::Aggregate { func, arg, alias } => {
                write!(f, "{func}({arg}) As {alias}")
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} As {a}", self.table),
            None => write!(f, "{}", self.table),
        }
    }
}

impl fmt::Display for UseCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UseCondition::Join(l, r) => write!(f, "{l} = {r}"),
            UseCondition::Filter { column, op, value } => {
                write!(f, "{column} {} {}", op_symbol(*op), fmt_value(value))
            }
        }
    }
}

fn op_symbol(op: HOp) -> &'static str {
    match op {
        HOp::Eq => "=",
        HOp::Ne => "<>",
        HOp::Lt => "<",
        HOp::Le => "<=",
        HOp::Gt => ">",
        HOp::Ge => ">=",
        HOp::And => "And",
        HOp::Or => "Or",
        HOp::Add => "+",
        HOp::Sub => "-",
        HOp::Mul => "*",
        HOp::Div => "/",
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let items: Vec<String> = self.items.iter().map(|i| i.to_string()).collect();
        let from: Vec<String> = self.from.iter().map(|t| t.to_string()).collect();
        write!(f, "Select {} From {}", items.join(", "), from.join(", "))?;
        if !self.conditions.is_empty() {
            let conds: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
            write!(f, " Where {}", conds.join(" And "))?;
        }
        if !self.group_by.is_empty() {
            let cols: Vec<String> = self.group_by.iter().map(|g| g.to_string()).collect();
            write!(f, " Group By {}", cols.join(", "))?;
        }
        Ok(())
    }
}

impl fmt::Display for UseClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UseClause::Table(t) => write!(f, "Use {t}"),
            UseClause::Select(s) => write!(f, "Use ({s})"),
        }
    }
}

impl fmt::Display for UpdateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            UpdateFunc::Set(v) => write!(f, "Update({}) = {}", self.attr, fmt_value(v)),
            UpdateFunc::Scale(c) => write!(f, "Update({a}) = {c} * Pre({a})", a = self.attr),
            UpdateFunc::Shift(c) => write!(f, "Update({a}) = {c} + Pre({a})", a = self.attr),
            UpdateFunc::Param {
                name,
                mode: ParamMode::Set,
            } => write!(f, "Update({}) = Param({name})", self.attr),
            UpdateFunc::Param {
                name,
                mode: ParamMode::Scale,
            } => write!(f, "Update({a}) = Param({name}) * Pre({a})", a = self.attr),
            UpdateFunc::Param {
                name,
                mode: ParamMode::Shift,
            } => write!(f, "Update({a}) = Param({name}) + Pre({a})", a = self.attr),
        }
    }
}

impl fmt::Display for OutputSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            OutputArg::Star => write!(f, "Output {}(*)", self.agg),
            OutputArg::Expr(e) => write!(f, "Output {}({e})", self.agg),
        }
    }
}

impl fmt::Display for WhatIfQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.use_clause)?;
        if let Some(w) = &self.when {
            write!(f, " When {w}")?;
        }
        let updates: Vec<String> = self.updates.iter().map(|u| u.to_string()).collect();
        write!(f, " {}", updates.join(" And "))?;
        write!(f, " {}", self.output)?;
        if let Some(fc) = &self.for_clause {
            write!(f, " For {fc}")?;
        }
        Ok(())
    }
}

impl fmt::Display for LimitConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitConstraint::Range { attr, lo, hi } => match (lo, hi) {
                (Some(l), Some(h)) => write!(f, "{l} <= Post({attr}) <= {h}"),
                (Some(l), None) => write!(f, "Post({attr}) >= {l}"),
                (None, Some(h)) => write!(f, "Post({attr}) <= {h}"),
                (None, None) => write!(f, "Post({attr}) >= 0"),
            },
            LimitConstraint::InSet { attr, values } => {
                let vals: Vec<String> = values.iter().map(fmt_value).collect();
                write!(f, "Post({attr}) In ({})", vals.join(", "))
            }
            LimitConstraint::L1 { attr, bound } => {
                write!(f, "L1(Pre({attr}), Post({attr})) <= {bound}")
            }
        }
    }
}

impl fmt::Display for ObjectiveConst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectiveConst::Lit(v) => write!(f, "{}", fmt_value(v)),
            ObjectiveConst::Param(name) => write!(f, "Param({name})"),
        }
    }
}

impl fmt::Display for ObjectiveSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kw = match self.direction {
            ObjectiveDirection::Maximize => "ToMaximize",
            ObjectiveDirection::Minimize => "ToMinimize",
        };
        match &self.predicate {
            Some((op, c)) => write!(
                f,
                "{kw} {}(Post({}) {} {c})",
                self.agg,
                self.attr,
                op_symbol(*op),
            ),
            None => write!(f, "{kw} {}(Post({}))", self.agg, self.attr),
        }
    }
}

impl fmt::Display for HowToQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.use_clause)?;
        if let Some(w) = &self.when {
            write!(f, " When {w}")?;
        }
        write!(f, " HowToUpdate {}", self.update_attrs.join(", "))?;
        if !self.limits.is_empty() {
            let limits: Vec<String> = self.limits.iter().map(|l| l.to_string()).collect();
            write!(f, " Limit {}", limits.join(" And "))?;
        }
        write!(f, " {}", self.objective)?;
        if let Some(fc) = &self.for_clause {
            write!(f, " For {fc}")?;
        }
        Ok(())
    }
}

impl fmt::Display for HypotheticalQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypotheticalQuery::WhatIf(q) => write!(f, "{q}"),
            HypotheticalQuery::HowTo(q) => write!(f, "{q}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    fn round_trip(text: &str) {
        let q1 = parse_query(text).unwrap();
        let rendered = q1.to_string();
        let q2 = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of `{rendered}` failed: {e}"));
        assert_eq!(q1, q2, "round trip changed the AST:\n{rendered}");
    }

    #[test]
    fn whatif_round_trips() {
        round_trip("Use Product When Brand = 'Asus' Update(Price) = 1.1 * Pre(Price) Output Avg(Post(Rtng)) For Pre(Category) = 'Laptop'");
        round_trip("Use D Update(B) = 500 Output Count(*)");
        round_trip("Use D Update(B) = 'Red' And Update(C) = 2 + Pre(C) Output Sum(Post(Y)) For A In (1, 2, 3)");
        round_trip("Use D Update(B) = -3.5 Output Count(Post(Y) > 0.5) For Not (A = 1) Or B <> 2");
    }

    #[test]
    fn howto_round_trips() {
        round_trip(
            "Use P When Brand = 'Asus' HowToUpdate Price, Color \
             Limit 500 <= Post(Price) <= 800 And L1(Pre(Price), Post(Price)) <= 400 \
             ToMaximize Avg(Post(Rtng)) For Pre(Category) = 'Laptop'",
        );
        round_trip("Use D HowToUpdate X ToMinimize Sum(Post(Cost))");
        round_trip(
            "Use D HowToUpdate X Limit Post(X) In ('a', 'b') \
             ToMaximize Count(Post(credit) = 'Good')",
        );
    }

    #[test]
    fn select_round_trips() {
        round_trip(
            "Use (Select T1.PID, T1.Brand, Avg(T2.Rating) As Rtng \
              From Product As T1, Review As T2 \
              Where T1.PID = T2.PID And T1.Price < 700 \
              Group By T1.PID, T1.Brand) \
             Update(Price) = 1 Output Avg(Post(Rtng))",
        );
    }

    #[test]
    fn string_escaping_round_trips() {
        round_trip("Use D Update(B) = 'it''s' Output Count(Post(Y) = 'a''b')");
    }

    #[test]
    fn param_round_trips() {
        round_trip("Use D Update(B) = Param(v) Output Count(*)");
        round_trip("Use D Update(B) = Param(mult) * Pre(B) Output Avg(Post(Y))");
        round_trip("Use D Update(B) = Param(d) + Pre(B) Output Avg(Post(Y))");
        round_trip(
            "Use D When A = Param(sel) Update(B) = 1 \
             Output Count(Post(Y) > Param(floor)) For Pre(C) = Param(scope)",
        );
    }
}
