//! Tokens of the extended SQL syntax (paper §3.1, §4.1).

use std::fmt;

/// Keywords, case-insensitive in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `USE`.
    Use,
    /// `SELECT`.
    Select,
    /// `FROM`.
    From,
    /// `WHERE`.
    Where,
    /// `GROUP`.
    Group,
    /// `BY`.
    By,
    /// `AS`.
    As,
    /// `WHEN`.
    When,
    /// `UPDATE`.
    Update,
    /// `OUTPUT`.
    Output,
    /// `FOR`.
    For,
    /// `AND`.
    And,
    /// `OR`.
    Or,
    /// `NOT`.
    Not,
    /// `IN`.
    In,
    /// `PRE`.
    Pre,
    /// `POST`.
    Post,
    /// `HOWTOUPDATE`.
    HowToUpdate,
    /// `LIMIT`.
    Limit,
    /// `TOMAXIMIZE`.
    ToMaximize,
    /// `TOMINIMIZE`.
    ToMinimize,
    /// `L1`.
    L1,
    /// `TRUE`.
    True,
    /// `FALSE`.
    False,
    /// `NULL`.
    Null,
    /// `IS`.
    Is,
}

impl Keyword {
    /// Parse a keyword from a (case-insensitive) word.
    pub fn parse(word: &str) -> Option<Keyword> {
        Some(match word.to_ascii_uppercase().as_str() {
            "USE" => Keyword::Use,
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "AS" => Keyword::As,
            "WHEN" => Keyword::When,
            "UPDATE" => Keyword::Update,
            "OUTPUT" => Keyword::Output,
            "FOR" => Keyword::For,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "IN" => Keyword::In,
            "PRE" => Keyword::Pre,
            "POST" => Keyword::Post,
            "HOWTOUPDATE" => Keyword::HowToUpdate,
            "LIMIT" => Keyword::Limit,
            "TOMAXIMIZE" => Keyword::ToMaximize,
            "TOMINIMIZE" => Keyword::ToMinimize,
            "L1" => Keyword::L1,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "NULL" => Keyword::Null,
            "IS" => Keyword::Is,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword.
    Keyword(Keyword),
    /// Identifier (table, column, function name).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (single- or double-quoted).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
        }
    }
}
