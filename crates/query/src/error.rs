//! Error type for the query-language subsystem.

use std::fmt;

/// Errors raised while lexing, parsing or validating hypothetical queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error with byte offset.
    Lex {
        /// Byte position in the input.
        pos: usize,
        /// Description.
        message: String,
    },
    /// Parse error with token position.
    Parse {
        /// Index of the offending token.
        pos: usize,
        /// Description.
        message: String,
    },
    /// Semantic validation error.
    Validation(String),
    /// Parameter-binding error (unbound placeholder, non-numeric constant
    /// for a scale/shift parameter, …).
    Binding(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            QueryError::Parse { pos, message } => {
                write!(f, "parse error at token {pos}: {message}")
            }
            QueryError::Validation(m) => write!(f, "validation error: {m}"),
            QueryError::Binding(m) => write!(f, "binding error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, QueryError>;
