//! Typed, fluent construction of hypothetical queries.
//!
//! The builders produce exactly the ASTs the parser yields — validated by
//! the same [`crate::validate`] rules at [`WhatIf::build`] /
//! [`HowTo::build`] — so programmatic callers compose queries without
//! rendering and re-parsing text, and a built query and its parsed
//! rendering are interchangeable everywhere (including cache keys:
//! `parse(display(built)) == built`, property-tested in this crate).
//!
//! ```
//! use hyper_query::{HExpr, WhatIf, HowTo};
//! use hyper_storage::AggFunc;
//!
//! // Figure 4, programmatically.
//! let whatif = WhatIf::over("product")
//!     .when(HExpr::attr("brand").eq("Asus"))
//!     .scale("price", 1.1)
//!     .output_avg_post("rating")
//!     .filter(HExpr::pre("category").eq("Laptop"))
//!     .build()
//!     .unwrap();
//! assert_eq!(whatif.updates.len(), 1);
//!
//! // Figure 5, programmatically.
//! let howto = HowTo::maximize(AggFunc::Avg, "rating")
//!     .over("product")
//!     .update("price")
//!     .limit_range("price", Some(500.0), Some(800.0))
//!     .limit_l1("price", 400.0)
//!     .build()
//!     .unwrap();
//! assert_eq!(howto.update_attrs, vec!["price"]);
//! ```

use hyper_storage::{AggFunc, Value};

use crate::ast::{
    Bound, HExpr, HOp, HowToQuery, LimitConstraint, ObjectiveConst, ObjectiveDirection,
    ObjectiveSpec, OutputArg, OutputSpec, ParamMode, SelectStmt, UpdateFunc, UpdateSpec, UseClause,
    WhatIfQuery,
};
use crate::error::{QueryError, Result};
use crate::validate::{validate_howto, validate_whatif};

impl HExpr {
    /// `self = value` comparison helper.
    pub fn eq(self, value: impl Into<Value>) -> HExpr {
        HExpr::binary(HOp::Eq, self, HExpr::Lit(value.into()))
    }

    /// `self <> value` comparison helper.
    pub fn ne(self, value: impl Into<Value>) -> HExpr {
        HExpr::binary(HOp::Ne, self, HExpr::Lit(value.into()))
    }

    /// `self < value` comparison helper.
    pub fn lt(self, value: impl Into<Value>) -> HExpr {
        HExpr::binary(HOp::Lt, self, HExpr::Lit(value.into()))
    }

    /// `self <= value` comparison helper.
    pub fn le(self, value: impl Into<Value>) -> HExpr {
        HExpr::binary(HOp::Le, self, HExpr::Lit(value.into()))
    }

    /// `self > value` comparison helper.
    pub fn gt(self, value: impl Into<Value>) -> HExpr {
        HExpr::binary(HOp::Gt, self, HExpr::Lit(value.into()))
    }

    /// `self >= value` comparison helper.
    pub fn ge(self, value: impl Into<Value>) -> HExpr {
        HExpr::binary(HOp::Ge, self, HExpr::Lit(value.into()))
    }

    /// `self In (values…)` membership helper.
    pub fn in_list<V: Into<Value>>(self, values: impl IntoIterator<Item = V>) -> HExpr {
        HExpr::InList {
            expr: Box::new(self),
            list: values.into_iter().map(Into::into).collect(),
            negated: false,
        }
    }

    /// Disjunction helper (`and` already exists on [`HExpr`]).
    pub fn or(self, other: HExpr) -> HExpr {
        HExpr::binary(HOp::Or, self, other)
    }
}

/// Fluent builder for probabilistic what-if queries (paper §3.1).
///
/// Start from [`WhatIf::over`] (a base table) or [`WhatIf::over_select`]
/// (an embedded `Use (Select …)`), chain clause methods in any order, and
/// finish with [`WhatIf::build`], which validates the same structural rules
/// the parser's queries go through.
#[derive(Debug, Clone)]
pub struct WhatIf {
    use_clause: UseClause,
    when: Option<HExpr>,
    updates: Vec<UpdateSpec>,
    output: Option<OutputSpec>,
    for_clause: Option<HExpr>,
}

impl WhatIf {
    /// `Use <table>`.
    pub fn over(table: impl Into<String>) -> WhatIf {
        WhatIf::over_clause(UseClause::Table(table.into()))
    }

    /// `Use (Select …)`.
    pub fn over_select(stmt: SelectStmt) -> WhatIf {
        WhatIf::over_clause(UseClause::Select(stmt))
    }

    /// Start from an existing `Use` clause (e.g. one taken from a parsed
    /// query, as the how-to optimizer does).
    pub fn over_clause(use_clause: UseClause) -> WhatIf {
        WhatIf {
            use_clause,
            when: None,
            updates: Vec::new(),
            output: None,
            for_clause: None,
        }
    }

    /// `When <predicate>` — selects the update set on pre-update values.
    pub fn when(mut self, pred: HExpr) -> WhatIf {
        self.when = Some(pred);
        self
    }

    /// Optional `When` (convenience for templating).
    pub fn maybe_when(mut self, pred: Option<HExpr>) -> WhatIf {
        self.when = pred;
        self
    }

    /// Add one `Update(attr) = f` specification; call repeatedly for
    /// multi-attribute updates.
    pub fn update(mut self, attr: impl Into<String>, func: UpdateFunc) -> WhatIf {
        self.updates.push(UpdateSpec {
            attr: attr.into(),
            func,
        });
        self
    }

    /// Replace the update list wholesale.
    pub fn updates(mut self, updates: Vec<UpdateSpec>) -> WhatIf {
        self.updates = updates;
        self
    }

    /// `Update(attr) = value`.
    pub fn set(self, attr: impl Into<String>, value: impl Into<Value>) -> WhatIf {
        self.update(attr, UpdateFunc::Set(value.into()))
    }

    /// `Update(attr) = factor * Pre(attr)`.
    pub fn scale(self, attr: impl Into<String>, factor: f64) -> WhatIf {
        self.update(attr, UpdateFunc::Scale(factor))
    }

    /// `Update(attr) = delta + Pre(attr)`.
    pub fn shift(self, attr: impl Into<String>, delta: f64) -> WhatIf {
        self.update(attr, UpdateFunc::Shift(delta))
    }

    /// `Update(attr) = Param(name)` — the set value is supplied per
    /// execution through a [`crate::Bindings`] map.
    pub fn set_param(self, attr: impl Into<String>, name: impl Into<String>) -> WhatIf {
        self.update(
            attr,
            UpdateFunc::Param {
                name: name.into(),
                mode: ParamMode::Set,
            },
        )
    }

    /// `Update(attr) = Param(name) * Pre(attr)`.
    pub fn scale_param(self, attr: impl Into<String>, name: impl Into<String>) -> WhatIf {
        self.update(
            attr,
            UpdateFunc::Param {
                name: name.into(),
                mode: ParamMode::Scale,
            },
        )
    }

    /// `Update(attr) = Param(name) + Pre(attr)`.
    pub fn shift_param(self, attr: impl Into<String>, name: impl Into<String>) -> WhatIf {
        self.update(
            attr,
            UpdateFunc::Param {
                name: name.into(),
                mode: ParamMode::Shift,
            },
        )
    }

    /// `Output <agg>(<arg>)`.
    pub fn output(mut self, agg: AggFunc, arg: OutputArg) -> WhatIf {
        self.output = Some(OutputSpec { agg, arg });
        self
    }

    /// `Output Count(*)`.
    pub fn output_count_star(self) -> WhatIf {
        self.output(AggFunc::Count, OutputArg::Star)
    }

    /// `Output Count(<predicate>)`.
    pub fn output_count(self, pred: HExpr) -> WhatIf {
        self.output(AggFunc::Count, OutputArg::Expr(pred))
    }

    /// `Output Avg(<expr>)`.
    pub fn output_avg(self, expr: HExpr) -> WhatIf {
        self.output(AggFunc::Avg, OutputArg::Expr(expr))
    }

    /// `Output Avg(Post(attr))` — the most common output shape.
    pub fn output_avg_post(self, attr: impl Into<String>) -> WhatIf {
        self.output_avg(HExpr::post(attr))
    }

    /// `Output Sum(<expr>)`.
    pub fn output_sum(self, expr: HExpr) -> WhatIf {
        self.output(AggFunc::Sum, OutputArg::Expr(expr))
    }

    /// `For <predicate>` — restricts the scope the output aggregates over.
    /// (Named `filter` because `for` is a Rust keyword.)
    pub fn filter(mut self, pred: HExpr) -> WhatIf {
        self.for_clause = Some(pred);
        self
    }

    /// Optional `For` (convenience for templating).
    pub fn maybe_filter(mut self, pred: Option<HExpr>) -> WhatIf {
        self.for_clause = pred;
        self
    }

    /// Finish: validate and return the query AST. Fails when no `Update`
    /// was given, no `Output` was given, or any structural rule of
    /// [`validate_whatif`] is violated — the same rules parsed queries
    /// satisfy.
    pub fn build(self) -> Result<WhatIfQuery> {
        let output = self.output.ok_or_else(|| {
            QueryError::Validation("what-if query has no Output; call .output(…)".into())
        })?;
        let q = WhatIfQuery {
            use_clause: self.use_clause,
            when: self.when,
            updates: self.updates,
            output,
            for_clause: self.for_clause,
        };
        validate_whatif(&q, None)?;
        Ok(q)
    }
}

/// Fluent builder for probabilistic how-to queries (paper §4.1).
///
/// Start from the objective — [`HowTo::maximize`] / [`HowTo::minimize`]
/// (or the predicate forms [`HowTo::maximize_count`] /
/// [`HowTo::minimize_count`]) — then name the relation with
/// [`HowTo::over`], the mutable attributes with [`HowTo::update`], and any
/// `Limit` constraints.
#[derive(Debug, Clone)]
pub struct HowTo {
    use_clause: Option<UseClause>,
    when: Option<HExpr>,
    update_attrs: Vec<String>,
    limits: Vec<LimitConstraint>,
    objective: ObjectiveSpec,
    for_clause: Option<HExpr>,
}

impl HowTo {
    fn with_objective(objective: ObjectiveSpec) -> HowTo {
        HowTo {
            use_clause: None,
            when: None,
            update_attrs: Vec::new(),
            limits: Vec::new(),
            objective,
            for_clause: None,
        }
    }

    /// `ToMaximize <agg>(Post(attr))`.
    pub fn maximize(agg: AggFunc, attr: impl Into<String>) -> HowTo {
        HowTo::with_objective(ObjectiveSpec {
            direction: ObjectiveDirection::Maximize,
            agg,
            attr: attr.into(),
            predicate: None,
        })
    }

    /// `ToMinimize <agg>(Post(attr))`.
    pub fn minimize(agg: AggFunc, attr: impl Into<String>) -> HowTo {
        HowTo::with_objective(ObjectiveSpec {
            direction: ObjectiveDirection::Minimize,
            agg,
            attr: attr.into(),
            predicate: None,
        })
    }

    /// `ToMaximize Count(Post(attr) <op> value)` — e.g. maximize the number
    /// of good-credit individuals.
    pub fn maximize_count(attr: impl Into<String>, op: HOp, value: impl Into<Value>) -> HowTo {
        HowTo::with_objective(ObjectiveSpec {
            direction: ObjectiveDirection::Maximize,
            agg: AggFunc::Count,
            attr: attr.into(),
            predicate: Some((op, ObjectiveConst::Lit(value.into()))),
        })
    }

    /// `ToMinimize Count(Post(attr) <op> value)`.
    pub fn minimize_count(attr: impl Into<String>, op: HOp, value: impl Into<Value>) -> HowTo {
        HowTo::with_objective(ObjectiveSpec {
            direction: ObjectiveDirection::Minimize,
            agg: AggFunc::Count,
            attr: attr.into(),
            predicate: Some((op, ObjectiveConst::Lit(value.into()))),
        })
    }

    /// `ToMaximize Count(Post(attr) <op> Param(name))`: the objective
    /// constant is a placeholder resolved per execution through
    /// [`crate::Bindings`], so one prepared template sweeps objective
    /// targets without re-preparing.
    pub fn maximize_count_param(
        attr: impl Into<String>,
        op: HOp,
        name: impl Into<String>,
    ) -> HowTo {
        HowTo::with_objective(ObjectiveSpec {
            direction: ObjectiveDirection::Maximize,
            agg: AggFunc::Count,
            attr: attr.into(),
            predicate: Some((op, ObjectiveConst::param(name))),
        })
    }

    /// `ToMinimize Count(Post(attr) <op> Param(name))`.
    pub fn minimize_count_param(
        attr: impl Into<String>,
        op: HOp,
        name: impl Into<String>,
    ) -> HowTo {
        HowTo::with_objective(ObjectiveSpec {
            direction: ObjectiveDirection::Minimize,
            agg: AggFunc::Count,
            attr: attr.into(),
            predicate: Some((op, ObjectiveConst::param(name))),
        })
    }

    /// `Use <table>`.
    pub fn over(mut self, table: impl Into<String>) -> HowTo {
        self.use_clause = Some(UseClause::Table(table.into()));
        self
    }

    /// `Use (Select …)`.
    pub fn over_select(mut self, stmt: SelectStmt) -> HowTo {
        self.use_clause = Some(UseClause::Select(stmt));
        self
    }

    /// Start from an existing `Use` clause.
    pub fn over_clause(mut self, use_clause: UseClause) -> HowTo {
        self.use_clause = Some(use_clause);
        self
    }

    /// `When <predicate>`.
    pub fn when(mut self, pred: HExpr) -> HowTo {
        self.when = Some(pred);
        self
    }

    /// Add one `HowToUpdate` attribute; call repeatedly for several.
    pub fn update(mut self, attr: impl Into<String>) -> HowTo {
        self.update_attrs.push(attr.into());
        self
    }

    /// Add an arbitrary `Limit` constraint.
    pub fn limit(mut self, constraint: LimitConstraint) -> HowTo {
        self.limits.push(constraint);
        self
    }

    /// `Limit lo <= Post(attr) <= hi` (either bound optional).
    pub fn limit_range(self, attr: impl Into<String>, lo: Option<f64>, hi: Option<f64>) -> HowTo {
        self.limit(LimitConstraint::Range {
            attr: attr.into(),
            lo: lo.map(Bound::Lit),
            hi: hi.map(Bound::Lit),
        })
    }

    /// `Limit lo <= Post(attr) <= hi` with [`Bound`]s, so either end can be
    /// a `Param(name)` placeholder swept through [`crate::Bindings`]:
    /// `limit_range_bounds("price", Some(Bound::param("lo")), Some(800.0.into()))`.
    pub fn limit_range_bounds(
        self,
        attr: impl Into<String>,
        lo: Option<Bound>,
        hi: Option<Bound>,
    ) -> HowTo {
        self.limit(LimitConstraint::Range {
            attr: attr.into(),
            lo,
            hi,
        })
    }

    /// `Limit Post(attr) In (values…)`.
    pub fn limit_in<V: Into<Value>>(
        self,
        attr: impl Into<String>,
        values: impl IntoIterator<Item = V>,
    ) -> HowTo {
        self.limit(LimitConstraint::InSet {
            attr: attr.into(),
            values: values.into_iter().map(Into::into).collect(),
        })
    }

    /// `Limit L1(Pre(attr), Post(attr)) <= bound`.
    pub fn limit_l1(self, attr: impl Into<String>, bound: f64) -> HowTo {
        self.limit(LimitConstraint::L1 {
            attr: attr.into(),
            bound: Bound::Lit(bound),
        })
    }

    /// `Limit L1(Pre(attr), Post(attr)) <= Param(name)`.
    pub fn limit_l1_param(self, attr: impl Into<String>, name: impl Into<String>) -> HowTo {
        self.limit(LimitConstraint::L1 {
            attr: attr.into(),
            bound: Bound::param(name),
        })
    }

    /// `For <predicate>`.
    pub fn filter(mut self, pred: HExpr) -> HowTo {
        self.for_clause = Some(pred);
        self
    }

    /// Finish: validate and return the query AST (same rules as
    /// [`validate_howto`] applies to parsed queries).
    pub fn build(self) -> Result<HowToQuery> {
        let use_clause = self.use_clause.ok_or_else(|| {
            QueryError::Validation("how-to query has no Use clause; call .over(…)".into())
        })?;
        let q = HowToQuery {
            use_clause,
            when: self.when,
            update_attrs: self.update_attrs,
            limits: self.limits,
            objective: self.objective,
            for_clause: self.for_clause,
        };
        validate_howto(&q, None)?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::HypotheticalQuery;
    use crate::parser::parse_query;

    #[test]
    fn built_whatif_equals_parsed_whatif() {
        let built = WhatIf::over("product")
            .when(HExpr::attr("brand").eq("Asus"))
            .scale("price", 1.1)
            .output_avg_post("rtng")
            .filter(HExpr::pre("category").eq("Laptop"))
            .build()
            .unwrap();
        let parsed = parse_query(
            "Use product When brand = 'Asus' Update(price) = 1.1 * Pre(price) \
             Output Avg(Post(rtng)) For Pre(category) = 'Laptop'",
        )
        .unwrap();
        assert_eq!(HypotheticalQuery::WhatIf(built), parsed);
    }

    #[test]
    fn built_howto_equals_parsed_howto() {
        let built = HowTo::maximize(AggFunc::Avg, "rtng")
            .over("product")
            .when(HExpr::attr("brand").eq("Asus"))
            .update("price")
            .update("color")
            .limit_range("price", Some(500.0), Some(800.0))
            .limit_l1("price", 400.0)
            .build()
            .unwrap();
        let parsed = parse_query(
            "Use product When brand = 'Asus' HowToUpdate price, color \
             Limit 500 <= Post(price) <= 800 And L1(Pre(price), Post(price)) <= 400 \
             ToMaximize Avg(Post(rtng))",
        )
        .unwrap();
        assert_eq!(HypotheticalQuery::HowTo(built), parsed);
    }

    #[test]
    fn build_applies_parser_validation_rules() {
        // No update.
        assert!(WhatIf::over("t").output_count_star().build().is_err());
        // No output.
        assert!(WhatIf::over("t").set("b", 1).build().is_err());
        // Duplicate update attribute — same rule as validate_whatif.
        assert!(WhatIf::over("t")
            .set("b", 1)
            .set("B", 2)
            .output_count_star()
            .build()
            .is_err());
        // Post in When.
        assert!(WhatIf::over("t")
            .when(HExpr::post("a").eq(1))
            .set("b", 1)
            .output_count_star()
            .build()
            .is_err());
        // How-to: missing Use, missing update attrs, limit on non-updated
        // attribute, objective attribute updated.
        assert!(HowTo::maximize(AggFunc::Avg, "r")
            .update("p")
            .build()
            .is_err());
        assert!(HowTo::maximize(AggFunc::Avg, "r")
            .over("t")
            .build()
            .is_err());
        assert!(HowTo::maximize(AggFunc::Avg, "r")
            .over("t")
            .update("p")
            .limit_l1("other", 1.0)
            .build()
            .is_err());
        assert!(HowTo::maximize(AggFunc::Avg, "r")
            .over("t")
            .update("r")
            .build()
            .is_err());
    }

    #[test]
    fn predicate_objective_builder() {
        let built = HowTo::maximize_count("credit", HOp::Eq, "Good")
            .over("d")
            .update("status")
            .build()
            .unwrap();
        let parsed =
            parse_query("Use d HowToUpdate status ToMaximize Count(Post(credit) = 'Good')")
                .unwrap();
        assert_eq!(HypotheticalQuery::HowTo(built), parsed);
    }

    #[test]
    fn param_updates_render_and_reparse() {
        let built = WhatIf::over("d")
            .scale_param("b", "mult")
            .output_count(HExpr::post("y").eq(1))
            .build()
            .unwrap();
        assert_eq!(built.param_names(), vec!["mult"]);
        let text = HypotheticalQuery::WhatIf(built.clone()).to_string();
        let parsed = parse_query(&text).unwrap();
        assert_eq!(HypotheticalQuery::WhatIf(built), parsed, "{text}");
    }
}
