//! Recursive-descent parser for the extended SQL syntax.
//!
//! Grammar (paper Figures 4, 5, 7):
//!
//! ```text
//! query    := USE use_body rest
//! use_body := IDENT | '(' select ')'
//! rest     := [WHEN pred] whatif_rest | [WHEN pred] howto_rest
//! whatif_rest := UPDATE '(' IDENT ')' '=' updfn (AND UPDATE '(' IDENT ')' '=' updfn)*
//!                OUTPUT aggfn '(' ('*' | pred_or_attr) ')' [FOR pred]
//! howto_rest  := HOWTOUPDATE IDENT (',' IDENT)* [LIMIT limit (AND limit)*]
//!                (TOMAXIMIZE | TOMINIMIZE) aggfn '(' POST '(' IDENT ')' ')' [FOR pred]
//! ```

use hyper_storage::{AggFunc, Value};

use crate::ast::*;
use crate::error::{QueryError, Result};
use crate::lexer::tokenize;
use crate::token::{Keyword, Token};

/// Parse a complete hypothetical query.
pub fn parse_query(input: &str) -> Result<HypotheticalQuery> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse just a `Use (...)` select statement (useful for tests/tools).
pub fn parse_select(input: &str) -> Result<SelectStmt> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    p.expect_keyword(Keyword::Select)?;
    let s = p.parse_select_body()?;
    p.expect_eof()?;
    Ok(s)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Keywords that terminate a clause-level predicate.
const CLAUSE_STARTERS: &[Keyword] = &[
    Keyword::Update,
    Keyword::Output,
    Keyword::For,
    Keyword::HowToUpdate,
    Keyword::Limit,
    Keyword::ToMaximize,
    Keyword::ToMinimize,
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, k: usize) -> Option<&Token> {
        self.tokens.get(self.pos + k)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(QueryError::Parse {
            pos: self.pos,
            message: message.into(),
        })
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        match self.peek() {
            Some(tok) if tok == t => {
                self.pos += 1;
                Ok(())
            }
            Some(tok) => {
                let tok = tok.clone();
                self.err(format!("expected `{t}`, found `{tok}`"))
            }
            None => self.err(format!("expected `{t}`, found end of input")),
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<()> {
        self.expect(&Token::Keyword(k))
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == Some(&Token::Keyword(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected identifier, found `{t}`"))
            }
            None => self.err("expected identifier, found end of input"),
        }
    }

    fn expect_number(&mut self) -> Result<f64> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(n),
            Some(Token::Minus) => match self.advance() {
                Some(Token::Number(n)) => Ok(-n),
                _ => self.err("expected number after `-`"),
            },
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected number, found `{t}`"))
            }
            None => self.err("expected number, found end of input"),
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err(format!(
                "unexpected trailing input starting at `{}`",
                self.tokens[self.pos]
            ))
        }
    }

    // ---- top level ----------------------------------------------------

    fn parse_query(&mut self) -> Result<HypotheticalQuery> {
        self.expect_keyword(Keyword::Use)?;
        let use_clause = self.parse_use_body()?;
        let when = if self.eat_keyword(Keyword::When) {
            Some(self.parse_pred()?)
        } else {
            None
        };
        match self.peek() {
            Some(Token::Keyword(Keyword::Update)) => {
                let q = self.parse_whatif_rest(use_clause, when)?;
                Ok(HypotheticalQuery::WhatIf(q))
            }
            Some(Token::Keyword(Keyword::HowToUpdate)) => {
                let q = self.parse_howto_rest(use_clause, when)?;
                Ok(HypotheticalQuery::HowTo(q))
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected Update or HowToUpdate, found `{t}`"))
            }
            None => self.err("expected Update or HowToUpdate, found end of input"),
        }
    }

    fn parse_use_body(&mut self) -> Result<UseClause> {
        match self.peek() {
            Some(Token::Ident(_)) => Ok(UseClause::Table(self.expect_ident()?)),
            Some(Token::LParen) => {
                self.advance();
                self.expect_keyword(Keyword::Select)?;
                let stmt = self.parse_select_body()?;
                self.expect(&Token::RParen)?;
                Ok(UseClause::Select(stmt))
            }
            _ => self.err("expected table name or (Select …) after Use"),
        }
    }

    // ---- Use select ----------------------------------------------------

    fn parse_select_body(&mut self) -> Result<SelectStmt> {
        let mut items = vec![self.parse_select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.advance();
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword(Keyword::From)?;
        let mut from = vec![self.parse_table_ref()?];
        while self.peek() == Some(&Token::Comma) {
            self.advance();
            from.push(self.parse_table_ref()?);
        }
        let mut conditions = Vec::new();
        if self.eat_keyword(Keyword::Where) {
            conditions.push(self.parse_use_condition()?);
            while self.eat_keyword(Keyword::And) {
                conditions.push(self.parse_use_condition()?);
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.push(self.parse_qualified()?);
            while self.peek() == Some(&Token::Comma) {
                self.advance();
                group_by.push(self.parse_qualified()?);
            }
        }
        Ok(SelectStmt {
            items,
            from,
            conditions,
            group_by,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        // Aggregate form: IDENT '(' qualified ')' AS IDENT where IDENT is an
        // aggregate function name.
        if let (Some(Token::Ident(name)), Some(Token::LParen)) = (self.peek(), self.peek_at(1)) {
            if let Some(func) = AggFunc::parse(name) {
                self.advance(); // fn name
                self.advance(); // (
                let arg = self.parse_qualified()?;
                self.expect(&Token::RParen)?;
                self.expect_keyword(Keyword::As)?;
                let alias = self.expect_ident()?;
                return Ok(SelectItem::Aggregate { func, arg, alias });
            }
        }
        let name = self.parse_qualified()?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem::Column { name, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let table = self.expect_ident()?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn parse_qualified(&mut self) -> Result<QualifiedName> {
        let first = self.expect_ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.advance();
            let second = self.expect_ident()?;
            Ok(QualifiedName::qualified(first, second))
        } else {
            Ok(QualifiedName::bare(first))
        }
    }

    fn parse_use_condition(&mut self) -> Result<UseCondition> {
        let left = self.parse_qualified()?;
        let op = match self.advance() {
            Some(Token::Eq) => HOp::Eq,
            Some(Token::Ne) => HOp::Ne,
            Some(Token::Lt) => HOp::Lt,
            Some(Token::Le) => HOp::Le,
            Some(Token::Gt) => HOp::Gt,
            Some(Token::Ge) => HOp::Ge,
            other => {
                return self.err(format!(
                    "expected comparison in Where, found `{}`",
                    other.map_or("eof".to_string(), |t| t.to_string())
                ))
            }
        };
        // Join: rhs is another qualified column; Filter: rhs is a literal.
        match self.peek() {
            Some(Token::Ident(_)) => {
                if op != HOp::Eq {
                    return self.err("join conditions must use `=`");
                }
                let right = self.parse_qualified()?;
                Ok(UseCondition::Join(left, right))
            }
            _ => {
                let value = self.parse_literal()?;
                Ok(UseCondition::Filter {
                    column: left,
                    op,
                    value,
                })
            }
        }
    }

    fn parse_literal(&mut self) -> Result<Value> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(number_value(n)),
            Some(Token::Minus) => match self.advance() {
                Some(Token::Number(n)) => Ok(number_value(-n)),
                _ => self.err("expected number after `-`"),
            },
            Some(Token::Str(s)) => Ok(Value::str(s)),
            Some(Token::Keyword(Keyword::True)) => Ok(Value::Bool(true)),
            Some(Token::Keyword(Keyword::False)) => Ok(Value::Bool(false)),
            Some(Token::Keyword(Keyword::Null)) => Ok(Value::Null),
            other => self.err(format!(
                "expected literal, found `{}`",
                other.map_or("eof".to_string(), |t| t.to_string())
            )),
        }
    }

    // ---- what-if -------------------------------------------------------

    fn parse_whatif_rest(
        &mut self,
        use_clause: UseClause,
        when: Option<HExpr>,
    ) -> Result<WhatIfQuery> {
        let mut updates = vec![self.parse_update_spec()?];
        while self.peek() == Some(&Token::Keyword(Keyword::And))
            && self.peek_at(1) == Some(&Token::Keyword(Keyword::Update))
        {
            self.advance(); // And
            updates.push(self.parse_update_spec()?);
        }
        self.expect_keyword(Keyword::Output)?;
        let output = self.parse_output_spec()?;
        let for_clause = if self.eat_keyword(Keyword::For) {
            Some(self.parse_pred()?)
        } else {
            None
        };
        Ok(WhatIfQuery {
            use_clause,
            when,
            updates,
            output,
            for_clause,
        })
    }

    fn parse_update_spec(&mut self) -> Result<UpdateSpec> {
        self.expect_keyword(Keyword::Update)?;
        self.expect(&Token::LParen)?;
        let attr = self.expect_ident()?;
        self.expect(&Token::RParen)?;
        self.expect(&Token::Eq)?;
        let func = self.parse_update_func(&attr)?;
        Ok(UpdateSpec { attr, func })
    }

    /// `const`, `const * Pre(B)`, `const + Pre(B)`, the reversed
    /// `Pre(B) * const` / `Pre(B) + const` forms, or any of these with
    /// `Param(name)` in place of the constant.
    fn parse_update_func(&mut self, attr: &str) -> Result<UpdateFunc> {
        if self.peek() == Some(&Token::Keyword(Keyword::Pre)) {
            let name = self.parse_pre_ref()?;
            self.check_update_pre(attr, &name)?;
            return match self.advance() {
                Some(Token::Star) => {
                    if self.peek_is_param_ref() {
                        Ok(UpdateFunc::Param {
                            name: self.parse_param_ref()?,
                            mode: ParamMode::Scale,
                        })
                    } else {
                        Ok(UpdateFunc::Scale(self.expect_number()?))
                    }
                }
                Some(Token::Plus) => {
                    if self.peek_is_param_ref() {
                        Ok(UpdateFunc::Param {
                            name: self.parse_param_ref()?,
                            mode: ParamMode::Shift,
                        })
                    } else {
                        Ok(UpdateFunc::Shift(self.expect_number()?))
                    }
                }
                Some(Token::Minus) => Ok(UpdateFunc::Shift(-self.expect_number()?)),
                _ => self.err("expected `*`, `+` or `-` after Pre(attr) in Update"),
            };
        }
        // `Param(name)` optionally followed by `* Pre(attr)` / `+ Pre(attr)`.
        if self.peek_is_param_ref() {
            let name = self.parse_param_ref()?;
            match self.peek() {
                Some(Token::Star) => {
                    self.advance();
                    let pre = self.parse_pre_ref()?;
                    self.check_update_pre(attr, &pre)?;
                    return Ok(UpdateFunc::Param {
                        name,
                        mode: ParamMode::Scale,
                    });
                }
                Some(Token::Plus) => {
                    self.advance();
                    let pre = self.parse_pre_ref()?;
                    self.check_update_pre(attr, &pre)?;
                    return Ok(UpdateFunc::Param {
                        name,
                        mode: ParamMode::Shift,
                    });
                }
                _ => {
                    return Ok(UpdateFunc::Param {
                        name,
                        mode: ParamMode::Set,
                    })
                }
            }
        }
        // Try: number followed by * or + Pre(attr).
        let save = self.pos;
        if let Ok(n) = self.expect_number() {
            match self.peek() {
                Some(Token::Star) => {
                    self.advance();
                    let name = self.parse_pre_ref()?;
                    self.check_update_pre(attr, &name)?;
                    return Ok(UpdateFunc::Scale(n));
                }
                Some(Token::Plus) => {
                    self.advance();
                    let name = self.parse_pre_ref()?;
                    self.check_update_pre(attr, &name)?;
                    return Ok(UpdateFunc::Shift(n));
                }
                _ => return Ok(UpdateFunc::Set(number_value(n))),
            }
        }
        self.pos = save;
        Ok(UpdateFunc::Set(self.parse_literal()?))
    }

    fn parse_pre_ref(&mut self) -> Result<String> {
        self.expect_keyword(Keyword::Pre)?;
        self.expect(&Token::LParen)?;
        let name = self.expect_ident()?;
        self.expect(&Token::RParen)?;
        Ok(name)
    }

    /// `Param` is deliberately NOT a reserved word — `param` remains a
    /// valid table/column identifier. A placeholder is recognized
    /// contextually: the identifier `param` (any case) immediately
    /// followed by `(` — a position no attribute reference can occupy
    /// (the grammar has no function calls over attributes).
    fn peek_is_param_ref(&self) -> bool {
        matches!(
            (self.peek(), self.peek_at(1)),
            (Some(Token::Ident(s)), Some(Token::LParen)) if s.eq_ignore_ascii_case("param")
        )
    }

    fn parse_param_ref(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("param") => {}
            other => {
                return self.err(format!(
                    "expected Param(...), found `{}`",
                    other.map_or("eof".to_string(), |t| t.to_string())
                ))
            }
        }
        self.expect(&Token::LParen)?;
        let name = self.expect_ident()?;
        self.expect(&Token::RParen)?;
        Ok(name)
    }

    /// A `Limit` bound: a (possibly negative) number or `Param(name)`.
    fn parse_bound(&mut self) -> Result<Bound> {
        if self.peek_is_param_ref() {
            Ok(Bound::Param(self.parse_param_ref()?))
        } else {
            Ok(Bound::Lit(self.expect_number()?))
        }
    }

    /// The rest of `lo <= Post(A) [<= hi]` once `lo` is parsed.
    fn parse_range_rest(&mut self, lo: Bound) -> Result<LimitConstraint> {
        self.expect(&Token::Le)?;
        self.expect_keyword(Keyword::Post)?;
        self.expect(&Token::LParen)?;
        let attr = self.expect_ident()?;
        self.expect(&Token::RParen)?;
        let hi = if self.peek() == Some(&Token::Le) {
            self.advance();
            Some(self.parse_bound()?)
        } else {
            None
        };
        Ok(LimitConstraint::Range {
            attr,
            lo: Some(lo),
            hi,
        })
    }

    fn check_update_pre(&self, attr: &str, pre_name: &str) -> Result<()> {
        if !attr.eq_ignore_ascii_case(pre_name) {
            return Err(QueryError::Parse {
                pos: self.pos,
                message: format!(
                    "Update({attr}) may only reference Pre({attr}), found Pre({pre_name})"
                ),
            });
        }
        Ok(())
    }

    fn parse_output_spec(&mut self) -> Result<OutputSpec> {
        let fname = self.expect_ident()?;
        let agg = AggFunc::parse(&fname).ok_or_else(|| QueryError::Parse {
            pos: self.pos,
            message: format!("unknown aggregate `{fname}`"),
        })?;
        self.expect(&Token::LParen)?;
        let arg = if self.peek() == Some(&Token::Star) {
            self.advance();
            OutputArg::Star
        } else {
            OutputArg::Expr(self.parse_pred()?)
        };
        self.expect(&Token::RParen)?;
        Ok(OutputSpec { agg, arg })
    }

    // ---- how-to --------------------------------------------------------

    fn parse_howto_rest(
        &mut self,
        use_clause: UseClause,
        when: Option<HExpr>,
    ) -> Result<HowToQuery> {
        self.expect_keyword(Keyword::HowToUpdate)?;
        let mut update_attrs = vec![self.expect_ident()?];
        while self.peek() == Some(&Token::Comma) {
            self.advance();
            update_attrs.push(self.expect_ident()?);
        }
        let mut limits = Vec::new();
        if self.eat_keyword(Keyword::Limit) {
            limits.push(self.parse_limit()?);
            while self.peek() == Some(&Token::Keyword(Keyword::And))
                && !self.next_is_clause_start(1)
            {
                self.advance();
                limits.push(self.parse_limit()?);
            }
        }
        let direction = match self.advance() {
            Some(Token::Keyword(Keyword::ToMaximize)) => ObjectiveDirection::Maximize,
            Some(Token::Keyword(Keyword::ToMinimize)) => ObjectiveDirection::Minimize,
            other => {
                return self.err(format!(
                    "expected ToMaximize or ToMinimize, found `{}`",
                    other.map_or("eof".to_string(), |t| t.to_string())
                ))
            }
        };
        let fname = self.expect_ident()?;
        let agg = AggFunc::parse(&fname).ok_or_else(|| QueryError::Parse {
            pos: self.pos,
            message: format!("unknown aggregate `{fname}`"),
        })?;
        self.expect(&Token::LParen)?;
        // Post(attr) — Post optional for convenience, attr alone accepted.
        let attr = if self.peek() == Some(&Token::Keyword(Keyword::Post)) {
            self.advance();
            self.expect(&Token::LParen)?;
            let a = self.expect_ident()?;
            self.expect(&Token::RParen)?;
            a
        } else {
            self.expect_ident()?
        };
        // Optional predicate: `Count(Post(Credit) = 'Good')`; the constant
        // may be a `Param(name)` placeholder bound per execution.
        let predicate = match self.peek() {
            Some(Token::Eq) | Some(Token::Ne) | Some(Token::Lt) | Some(Token::Le)
            | Some(Token::Gt) | Some(Token::Ge) => {
                let op = match self.advance() {
                    Some(Token::Eq) => HOp::Eq,
                    Some(Token::Ne) => HOp::Ne,
                    Some(Token::Lt) => HOp::Lt,
                    Some(Token::Le) => HOp::Le,
                    Some(Token::Gt) => HOp::Gt,
                    Some(Token::Ge) => HOp::Ge,
                    _ => unreachable!("peeked above"),
                };
                let constant = if self.peek_is_param_ref() {
                    ObjectiveConst::Param(self.parse_param_ref()?)
                } else {
                    ObjectiveConst::Lit(self.parse_literal()?)
                };
                Some((op, constant))
            }
            _ => None,
        };
        self.expect(&Token::RParen)?;
        let for_clause = if self.eat_keyword(Keyword::For) {
            Some(self.parse_pred()?)
        } else {
            None
        };
        Ok(HowToQuery {
            use_clause,
            when,
            update_attrs,
            limits,
            objective: ObjectiveSpec {
                direction,
                agg,
                attr,
                predicate,
            },
            for_clause,
        })
    }

    fn parse_limit(&mut self) -> Result<LimitConstraint> {
        match self.peek() {
            // `L1(Pre(A), Post(A)) <= bound`
            Some(Token::Keyword(Keyword::L1)) => {
                self.advance();
                self.expect(&Token::LParen)?;
                let pre = self.parse_pre_ref()?;
                self.expect(&Token::Comma)?;
                self.expect_keyword(Keyword::Post)?;
                self.expect(&Token::LParen)?;
                let post = self.expect_ident()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::RParen)?;
                if !pre.eq_ignore_ascii_case(&post) {
                    return self.err(format!("L1 over mismatched attributes {pre}/{post}"));
                }
                self.expect(&Token::Le)?;
                let bound = self.parse_bound()?;
                Ok(LimitConstraint::L1 { attr: pre, bound })
            }
            // `lo <= Post(A) [<= hi]` — `lo` a number or `Param(name)`
            Some(Token::Number(_)) | Some(Token::Minus) => {
                let lo = self.parse_bound()?;
                self.parse_range_rest(lo)
            }
            Some(Token::Ident(_)) if self.peek_is_param_ref() => {
                let lo = self.parse_bound()?;
                self.parse_range_rest(lo)
            }
            // `Post(A) <= hi`, `Post(A) >= lo`, `Post(A) In (…)`
            Some(Token::Keyword(Keyword::Post)) => {
                self.advance();
                self.expect(&Token::LParen)?;
                let attr = self.expect_ident()?;
                self.expect(&Token::RParen)?;
                match self.advance() {
                    Some(Token::Le) => Ok(LimitConstraint::Range {
                        attr,
                        lo: None,
                        hi: Some(self.parse_bound()?),
                    }),
                    Some(Token::Ge) => Ok(LimitConstraint::Range {
                        attr,
                        lo: Some(self.parse_bound()?),
                        hi: None,
                    }),
                    Some(Token::Keyword(Keyword::In)) => {
                        self.expect(&Token::LParen)?;
                        let mut values = vec![self.parse_literal()?];
                        while self.peek() == Some(&Token::Comma) {
                            self.advance();
                            values.push(self.parse_literal()?);
                        }
                        self.expect(&Token::RParen)?;
                        Ok(LimitConstraint::InSet { attr, values })
                    }
                    other => self.err(format!(
                        "expected `<=`, `>=` or In after Post({attr}), found `{}`",
                        other.map_or("eof".to_string(), |t| t.to_string())
                    )),
                }
            }
            _ => self.err("expected Limit constraint"),
        }
    }

    // ---- hypothetical predicates ----------------------------------------

    fn next_is_clause_start(&self, k: usize) -> bool {
        matches!(
            self.peek_at(k),
            Some(Token::Keyword(kw)) if CLAUSE_STARTERS.contains(kw)
        )
    }

    fn parse_pred(&mut self) -> Result<HExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<HExpr> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(&Token::Keyword(Keyword::Or)) && !self.next_is_clause_start(1) {
            self.advance();
            let right = self.parse_and()?;
            left = HExpr::binary(HOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<HExpr> {
        let mut left = self.parse_not()?;
        while self.peek() == Some(&Token::Keyword(Keyword::And)) && !self.next_is_clause_start(1) {
            self.advance();
            let right = self.parse_not()?;
            left = HExpr::binary(HOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<HExpr> {
        if self.eat_keyword(Keyword::Not) {
            Ok(HExpr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<HExpr> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(HOp::Eq),
            Some(Token::Ne) => Some(HOp::Ne),
            Some(Token::Lt) => Some(HOp::Lt),
            Some(Token::Le) => Some(HOp::Le),
            Some(Token::Gt) => Some(HOp::Gt),
            Some(Token::Ge) => Some(HOp::Ge),
            Some(Token::Keyword(Keyword::In)) => {
                self.advance();
                return self.parse_in_list(left, false);
            }
            Some(Token::Keyword(Keyword::Not))
                if self.peek_at(1) == Some(&Token::Keyword(Keyword::In)) =>
            {
                self.advance();
                self.advance();
                return self.parse_in_list(left, true);
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.advance();
                let right = self.parse_additive()?;
                // Support chained comparisons `a <= x <= b` as a conjunction.
                if matches!(op, HOp::Le | HOp::Lt)
                    && matches!(self.peek(), Some(Token::Le) | Some(Token::Lt))
                {
                    let op2 = if self.peek() == Some(&Token::Le) {
                        HOp::Le
                    } else {
                        HOp::Lt
                    };
                    self.advance();
                    let third = self.parse_additive()?;
                    let first = HExpr::binary(op, left, right.clone());
                    let second = HExpr::binary(op2, right, third);
                    return Ok(first.and(second));
                }
                Ok(HExpr::binary(op, left, right))
            }
            None => Ok(left),
        }
    }

    fn parse_in_list(&mut self, expr: HExpr, negated: bool) -> Result<HExpr> {
        self.expect(&Token::LParen)?;
        let mut list = vec![self.parse_literal()?];
        while self.peek() == Some(&Token::Comma) {
            self.advance();
            list.push(self.parse_literal()?);
        }
        self.expect(&Token::RParen)?;
        Ok(HExpr::InList {
            expr: Box::new(expr),
            list,
            negated,
        })
    }

    fn parse_additive(&mut self) -> Result<HExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => HOp::Add,
                Some(Token::Minus) => HOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = HExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<HExpr> {
        let mut left = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => HOp::Mul,
                Some(Token::Slash) => HOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.parse_primary()?;
            left = HExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_primary(&mut self) -> Result<HExpr> {
        match self.peek() {
            Some(Token::Keyword(Keyword::Pre)) => {
                self.advance();
                self.expect(&Token::LParen)?;
                let name = self.expect_ident()?;
                self.expect(&Token::RParen)?;
                Ok(HExpr::pre(name))
            }
            Some(Token::Keyword(Keyword::Post)) => {
                self.advance();
                self.expect(&Token::LParen)?;
                let name = self.expect_ident()?;
                self.expect(&Token::RParen)?;
                Ok(HExpr::post(name))
            }
            Some(Token::Ident(_)) if self.peek_is_param_ref() => {
                Ok(HExpr::Param(self.parse_param_ref()?))
            }
            Some(Token::Ident(_)) => {
                let name = self.expect_ident()?;
                Ok(HExpr::attr(name))
            }
            Some(Token::LParen) => {
                self.advance();
                let e = self.parse_or()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Number(_))
            | Some(Token::Minus)
            | Some(Token::Str(_))
            | Some(Token::Keyword(Keyword::True))
            | Some(Token::Keyword(Keyword::False))
            | Some(Token::Keyword(Keyword::Null)) => Ok(HExpr::Lit(self.parse_literal()?)),
            other => {
                let msg = format!(
                    "expected expression, found `{}`",
                    other.map_or("eof".to_string(), |t| t.to_string())
                );
                self.err(msg)
            }
        }
    }
}

/// Numbers lex as f64; integral values become `Value::Int` to match column
/// types (SQL-ish behaviour).
fn number_value(n: f64) -> Value {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        Value::Int(n as i64)
    } else {
        Value::Float(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure-4 what-if query, verbatim modulo identifier spelling.
    const FIGURE4: &str = "
        Use RelevantView As (
          Select T1.PID, T1.Category, T1.Price, T1.Brand,
                 Avg(Sentiment) As Senti, Avg(T2.Rating) As Rtng
          From Product As T1, Review As T2
          Where T1.PID = T2.PID
          Group By T1.PID, T1.Category, T1.Price, T1.Brand )
        When Brand = 'Asus'
        Update(Price) = 1.1 * Pre(Price)
        Output Avg(Post(Rtng))
        For Pre(Category) = 'Laptop' And Pre(Brand) = 'Asus' And Post(Senti) > 0.5";

    // Our grammar drops the view-naming sugar `RelevantView As`; accept the
    // plain parenthesized select.
    fn figure4_text() -> String {
        FIGURE4.replace("Use RelevantView As (", "Use (")
    }

    #[test]
    fn parses_figure4_whatif() {
        let q = parse_query(&figure4_text()).unwrap();
        let HypotheticalQuery::WhatIf(q) = q else {
            panic!("expected what-if")
        };
        let UseClause::Select(sel) = &q.use_clause else {
            panic!("expected select")
        };
        assert_eq!(sel.items.len(), 6);
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.conditions.len(), 1);
        assert_eq!(sel.group_by.len(), 4);
        assert_eq!(
            q.when,
            Some(HExpr::binary(
                HOp::Eq,
                HExpr::attr("Brand"),
                HExpr::lit("Asus")
            ))
        );
        assert_eq!(q.updates.len(), 1);
        assert_eq!(q.updates[0].attr, "Price");
        assert_eq!(q.updates[0].func, UpdateFunc::Scale(1.1));
        assert_eq!(q.output.agg, AggFunc::Avg);
        assert!(matches!(&q.output.arg, OutputArg::Expr(HExpr::Attr {
            temporal: Some(Temporal::Post), name }) if name == "Rtng"));
        let for_clause = q.for_clause.unwrap();
        assert!(for_clause.mentions_post());
    }

    #[test]
    fn parses_figure5_howto() {
        let text = "
            Use Product
            When Brand = 'Asus' And Category = 'Laptop'
            HowToUpdate Price, Color
            Limit 500 <= Post(Price) <= 800 And
                  L1(Pre(Price), Post(Price)) <= 400
            ToMaximize Avg(Post(Rtng))
            For (Pre(Category) = 'Laptop' Or Pre(Category) = 'DSLR Camera')
                And Brand = 'Asus'";
        let HypotheticalQuery::HowTo(q) = parse_query(text).unwrap() else {
            panic!("expected how-to")
        };
        assert_eq!(q.update_attrs, vec!["Price", "Color"]);
        assert_eq!(q.limits.len(), 2);
        assert_eq!(
            q.limits[0],
            LimitConstraint::Range {
                attr: "Price".into(),
                lo: Some(Bound::Lit(500.0)),
                hi: Some(Bound::Lit(800.0))
            }
        );
        assert_eq!(
            q.limits[1],
            LimitConstraint::L1 {
                attr: "Price".into(),
                bound: Bound::Lit(400.0)
            }
        );
        assert_eq!(q.objective.direction, ObjectiveDirection::Maximize);
        assert_eq!(q.objective.agg, AggFunc::Avg);
        assert_eq!(q.objective.attr, "Rtng");
        assert!(q.for_clause.is_some());
    }

    #[test]
    fn parses_figure7a_german_template() {
        // Fig 7a: Use D Update(B) = b Output Count(Credit = 'Good') For Pre(A) = a
        let text = "Use D Update(Status) = 4
                    Output Count(Credit = 'Good')
                    For Pre(Age) = 30";
        let HypotheticalQuery::WhatIf(q) = parse_query(text).unwrap() else {
            panic!()
        };
        assert_eq!(q.updates[0].func, UpdateFunc::Set(Value::Int(4)));
        assert_eq!(q.output.agg, AggFunc::Count);
        let OutputArg::Expr(e) = &q.output.arg else {
            panic!()
        };
        assert_eq!(
            *e,
            HExpr::binary(HOp::Eq, HExpr::attr("Credit"), HExpr::lit("Good"))
        );
    }

    #[test]
    fn parses_figure7b_adult_template() {
        // Count(*) with Post condition in For.
        let text = "Use D Update(Marital) = 'Married'
                    Output Count(*)
                    For Post(Income) > 50000 And Pre(Sex) = 'Female'";
        let HypotheticalQuery::WhatIf(q) = parse_query(text).unwrap() else {
            panic!()
        };
        assert_eq!(q.output.arg, OutputArg::Star);
        let f = q.for_clause.unwrap();
        assert!(f.mentions_post());
    }

    #[test]
    fn multiple_updates_with_and() {
        let text = "Use Product
                    Update(Price) = 500 And Update(Color) = 'Red'
                    Output Avg(Post(Quality))";
        let HypotheticalQuery::WhatIf(q) = parse_query(text).unwrap() else {
            panic!()
        };
        assert_eq!(q.updates.len(), 2);
        assert_eq!(q.updates[1].func, UpdateFunc::Set(Value::str("Red")));
    }

    #[test]
    fn shift_update_forms() {
        let q = parse_query("Use T Update(X) = 100 + Pre(X) Output Avg(Post(Y))").unwrap();
        let HypotheticalQuery::WhatIf(q) = q else {
            panic!()
        };
        assert_eq!(q.updates[0].func, UpdateFunc::Shift(100.0));
        let q = parse_query("Use T Update(X) = Pre(X) * 2 Output Avg(Post(Y))").unwrap();
        let HypotheticalQuery::WhatIf(q) = q else {
            panic!()
        };
        assert_eq!(q.updates[0].func, UpdateFunc::Scale(2.0));
        let q = parse_query("Use T Update(X) = Pre(X) - 5 Output Avg(Post(Y))").unwrap();
        let HypotheticalQuery::WhatIf(q) = q else {
            panic!()
        };
        assert_eq!(q.updates[0].func, UpdateFunc::Shift(-5.0));
    }

    #[test]
    fn update_pre_must_match_attr() {
        let err = parse_query("Use T Update(X) = 1.1 * Pre(Y) Output Avg(Post(Z))").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }), "{err}");
    }

    #[test]
    fn in_set_limit_and_post_bounds() {
        let text = "Use T HowToUpdate Color, Price
                    Limit Post(Color) In ('Red', 'Blue') And Post(Price) >= 10
                    ToMinimize Sum(Post(Cost))";
        let HypotheticalQuery::HowTo(q) = parse_query(text).unwrap() else {
            panic!()
        };
        assert_eq!(
            q.limits[0],
            LimitConstraint::InSet {
                attr: "Color".into(),
                values: vec!["Red".into(), "Blue".into()]
            }
        );
        assert_eq!(
            q.limits[1],
            LimitConstraint::Range {
                attr: "Price".into(),
                lo: Some(Bound::Lit(10.0)),
                hi: None
            }
        );
        assert_eq!(q.objective.direction, ObjectiveDirection::Minimize);
    }

    #[test]
    fn param_limit_bounds_parse_and_roundtrip() {
        let text = "Use T HowToUpdate Price
                    Limit Param(lo) <= Post(Price) <= Param(hi)
                    And L1(Pre(Price), Post(Price)) <= Param(budget)
                    ToMaximize Avg(Post(R))";
        let q = parse_query(text).unwrap();
        let HypotheticalQuery::HowTo(ht) = &q else {
            panic!()
        };
        assert_eq!(
            ht.limits[0],
            LimitConstraint::Range {
                attr: "Price".into(),
                lo: Some(Bound::param("lo")),
                hi: Some(Bound::param("hi")),
            }
        );
        assert_eq!(
            ht.limits[1],
            LimitConstraint::L1 {
                attr: "Price".into(),
                bound: Bound::param("budget"),
            }
        );
        assert_eq!(q.param_names(), vec!["lo", "hi", "budget"]);
        // Display → parse round-trip preserves the placeholders.
        let rendered = q.to_string();
        assert_eq!(parse_query(&rendered).unwrap(), q, "{rendered}");
    }

    #[test]
    fn param_post_bound_forms() {
        let q =
            parse_query("Use T HowToUpdate P Limit Post(P) <= Param(cap) ToMaximize Avg(Post(R))")
                .unwrap();
        let HypotheticalQuery::HowTo(ht) = &q else {
            panic!()
        };
        assert_eq!(
            ht.limits[0],
            LimitConstraint::Range {
                attr: "P".into(),
                lo: None,
                hi: Some(Bound::param("cap")),
            }
        );
        let q = parse_query(
            "Use T HowToUpdate P Limit Post(P) >= Param(floor) ToMaximize Avg(Post(R))",
        )
        .unwrap();
        let HypotheticalQuery::HowTo(ht) = &q else {
            panic!()
        };
        assert_eq!(
            ht.limits[0],
            LimitConstraint::Range {
                attr: "P".into(),
                lo: Some(Bound::param("floor")),
                hi: None,
            }
        );
    }

    #[test]
    fn predicate_precedence() {
        let text = "Use T Update(X) = 1 Output Count(*)
                    For A = 1 Or B = 2 And C = 3";
        let HypotheticalQuery::WhatIf(q) = parse_query(text).unwrap() else {
            panic!()
        };
        // AND binds tighter: A=1 OR (B=2 AND C=3).
        let HExpr::Binary { op: HOp::Or, .. } = q.for_clause.unwrap() else {
            panic!("OR must be at the root")
        };
    }

    #[test]
    fn arithmetic_in_predicates() {
        let text = "Use T Update(X) = 1 Output Count(*)
                    For Pre(A) - Post(A) < 2";
        let HypotheticalQuery::WhatIf(q) = parse_query(text).unwrap() else {
            panic!()
        };
        let HExpr::Binary {
            op: HOp::Lt, left, ..
        } = q.for_clause.unwrap()
        else {
            panic!()
        };
        assert!(matches!(*left, HExpr::Binary { op: HOp::Sub, .. }));
    }

    #[test]
    fn param_placeholders_parse_without_reserving_the_word() {
        // Placeholder positions.
        let HypotheticalQuery::WhatIf(q) =
            parse_query("Use T Update(X) = Param(mult) * Pre(X) Output Avg(Post(Y))").unwrap()
        else {
            panic!()
        };
        assert_eq!(
            q.updates[0].func,
            UpdateFunc::Param {
                name: "mult".into(),
                mode: ParamMode::Scale
            }
        );
        let HypotheticalQuery::WhatIf(q) =
            parse_query("Use T Update(X) = 1 Output Count(*) For A = param(scope)").unwrap()
        else {
            panic!()
        };
        assert!(q.for_clause.unwrap().param_names() == vec!["scope"]);

        // `param` is NOT reserved: tables, columns, and predicates may
        // still use it as a plain identifier.
        let HypotheticalQuery::WhatIf(q) =
            parse_query("Use param When param = 1 Update(param) = 2 Output Count(*)").unwrap()
        else {
            panic!()
        };
        assert_eq!(q.use_clause, UseClause::Table("param".into()));
        assert_eq!(q.updates[0].attr, "param");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("Use T Update(X) = 1 Output Count(*) garbage").is_err());
    }

    #[test]
    fn missing_output_rejected() {
        assert!(parse_query("Use T Update(X) = 1").is_err());
    }

    #[test]
    fn in_predicate_with_negation() {
        let text = "Use T Update(X) = 1 Output Count(*) For A Not In (1, 2)";
        let HypotheticalQuery::WhatIf(q) = parse_query(text).unwrap() else {
            panic!()
        };
        assert!(matches!(
            q.for_clause.unwrap(),
            HExpr::InList { negated: true, .. }
        ));
    }

    #[test]
    fn chained_comparison_desugars() {
        let text = "Use T Update(X) = 1 Output Count(*) For 1 <= Post(A) <= 5";
        let HypotheticalQuery::WhatIf(q) = parse_query(text).unwrap() else {
            panic!()
        };
        let HExpr::Binary { op: HOp::And, .. } = q.for_clause.unwrap() else {
            panic!("chained comparison must desugar to a conjunction")
        };
    }
}
