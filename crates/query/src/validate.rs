//! Structural validation of hypothetical queries (the rules of §3.1/§4.1
//! that don't need data): `When` is pre-update only, updates are distinct,
//! `Limit` constraints refer to `HowToUpdate` attributes, and — when the
//! relevant view's columns are known — every referenced attribute exists.

use std::collections::HashSet;

use crate::ast::*;
use crate::error::{QueryError, Result};

/// Validate a what-if query; `view_columns` (if provided) is the set of
/// columns of the relevant view produced by the `Use` clause.
pub fn validate_whatif(q: &WhatIfQuery, view_columns: Option<&[String]>) -> Result<()> {
    if q.updates.is_empty() {
        return Err(QueryError::Validation("what-if query has no Update".into()));
    }
    let mut seen = HashSet::new();
    for u in &q.updates {
        if !seen.insert(u.attr.to_ascii_lowercase()) {
            return Err(QueryError::Validation(format!(
                "attribute `{}` updated twice",
                u.attr
            )));
        }
    }
    if let Some(w) = &q.when {
        if w.mentions_post() {
            return Err(QueryError::Validation(
                "When may only reference Pre values (the update set is chosen \
                 before the update is applied)"
                    .into(),
            ));
        }
    }
    if let Some(cols) = view_columns {
        let lookup: HashSet<String> = cols.iter().map(|c| c.to_ascii_lowercase()).collect();
        let check = |name: &str, clause: &str| -> Result<()> {
            if !lookup.contains(&name.to_ascii_lowercase()) {
                return Err(QueryError::Validation(format!(
                    "attribute `{name}` in {clause} is not a column of the relevant view"
                )));
            }
            Ok(())
        };
        for u in &q.updates {
            check(&u.attr, "Update")?;
        }
        if let Some(w) = &q.when {
            for (_, a) in w.attrs_with_default(Temporal::Pre) {
                check(&a, "When")?;
            }
        }
        if let OutputArg::Expr(e) = &q.output.arg {
            for (_, a) in e.attrs_with_default(Temporal::Post) {
                check(&a, "Output")?;
            }
        }
        if let Some(fc) = &q.for_clause {
            for (_, a) in fc.attrs_with_default(Temporal::Pre) {
                check(&a, "For")?;
            }
        }
    }
    Ok(())
}

/// Validate a how-to query.
pub fn validate_howto(q: &HowToQuery, view_columns: Option<&[String]>) -> Result<()> {
    if q.update_attrs.is_empty() {
        return Err(QueryError::Validation(
            "how-to query has no HowToUpdate attributes".into(),
        ));
    }
    let mut seen = HashSet::new();
    for a in &q.update_attrs {
        if !seen.insert(a.to_ascii_lowercase()) {
            return Err(QueryError::Validation(format!(
                "attribute `{a}` listed twice in HowToUpdate"
            )));
        }
    }
    if let Some(w) = &q.when {
        if w.mentions_post() {
            return Err(QueryError::Validation(
                "When may only reference Pre values".into(),
            ));
        }
    }
    // Limits must constrain HowToUpdate attributes and be self-consistent.
    for l in &q.limits {
        let attr = match l {
            LimitConstraint::Range { attr, lo, hi } => {
                // Only literal bound pairs are checkable here; `Param(…)`
                // bounds are validated once resolved (at bind time).
                if let (Some(Bound::Lit(lo)), Some(Bound::Lit(hi))) = (lo.as_ref(), hi.as_ref()) {
                    if lo > hi {
                        return Err(QueryError::Validation(format!(
                            "Limit range for `{attr}` has lower bound {lo} > upper bound {hi}"
                        )));
                    }
                }
                attr
            }
            LimitConstraint::InSet { attr, values } => {
                if values.is_empty() {
                    return Err(QueryError::Validation(format!(
                        "Limit In-set for `{attr}` is empty"
                    )));
                }
                attr
            }
            LimitConstraint::L1 { attr, bound } => {
                if matches!(bound, Bound::Lit(b) if *b < 0.0) {
                    return Err(QueryError::Validation(format!(
                        "Limit L1 bound for `{attr}` is negative"
                    )));
                }
                attr
            }
        };
        if !seen.contains(&attr.to_ascii_lowercase()) {
            return Err(QueryError::Validation(format!(
                "Limit constrains `{attr}`, which is not in HowToUpdate"
            )));
        }
    }
    if q.update_attrs
        .iter()
        .any(|a| a.eq_ignore_ascii_case(&q.objective.attr))
    {
        return Err(QueryError::Validation(format!(
            "objective attribute `{}` cannot itself be updated",
            q.objective.attr
        )));
    }
    if let Some(cols) = view_columns {
        let lookup: HashSet<String> = cols.iter().map(|c| c.to_ascii_lowercase()).collect();
        let check = |name: &str, clause: &str| -> Result<()> {
            if !lookup.contains(&name.to_ascii_lowercase()) {
                return Err(QueryError::Validation(format!(
                    "attribute `{name}` in {clause} is not a column of the relevant view"
                )));
            }
            Ok(())
        };
        for a in &q.update_attrs {
            check(a, "HowToUpdate")?;
        }
        check(&q.objective.attr, "ToMaximize/ToMinimize")?;
        if let Some(w) = &q.when {
            for (_, a) in w.attrs_with_default(Temporal::Pre) {
                check(&a, "When")?;
            }
        }
        if let Some(fc) = &q.for_clause {
            for (_, a) in fc.attrs_with_default(Temporal::Pre) {
                check(&a, "For")?;
            }
        }
    }
    Ok(())
}

/// Validate either query kind.
pub fn validate(q: &HypotheticalQuery, view_columns: Option<&[String]>) -> Result<()> {
    match q {
        HypotheticalQuery::WhatIf(w) => validate_whatif(w, view_columns),
        HypotheticalQuery::HowTo(h) => validate_howto(h, view_columns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn whatif(text: &str) -> WhatIfQuery {
        match parse_query(text).unwrap() {
            HypotheticalQuery::WhatIf(q) => q,
            _ => panic!("expected what-if"),
        }
    }

    fn howto(text: &str) -> HowToQuery {
        match parse_query(text).unwrap() {
            HypotheticalQuery::HowTo(q) => q,
            _ => panic!("expected how-to"),
        }
    }

    #[test]
    fn when_with_post_rejected() {
        let q = whatif("Use T When Post(A) = 1 Update(B) = 2 Output Count(*)");
        assert!(validate_whatif(&q, None).is_err());
    }

    #[test]
    fn duplicate_updates_rejected() {
        let q = whatif("Use T Update(B) = 1 And Update(B) = 2 Output Count(*)");
        assert!(validate_whatif(&q, None).is_err());
    }

    #[test]
    fn view_column_binding() {
        let q = whatif(
            "Use T When Brand = 'x' Update(Price) = 1 Output Avg(Post(Rating)) For Quality > 0",
        );
        let cols: Vec<String> = ["Brand", "Price", "Rating", "Quality"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(validate_whatif(&q, Some(&cols)).is_ok());
        let missing: Vec<String> = vec!["Brand".into(), "Price".into()];
        assert!(validate_whatif(&q, Some(&missing)).is_err());
    }

    #[test]
    fn limit_must_reference_howtoupdate_attrs() {
        let q =
            howto("Use T HowToUpdate Price Limit Post(Color) In ('Red') ToMaximize Avg(Post(R))");
        assert!(validate_howto(&q, None).is_err());
        let q = howto(
            "Use T HowToUpdate Price, Color Limit Post(Color) In ('Red') ToMaximize Avg(Post(R))",
        );
        assert!(validate_howto(&q, None).is_ok());
    }

    #[test]
    fn crossed_range_rejected() {
        let q = howto("Use T HowToUpdate P Limit 800 <= Post(P) <= 500 ToMaximize Avg(Post(R))");
        assert!(validate_howto(&q, None).is_err());
    }

    #[test]
    fn objective_cannot_be_updated() {
        let q = howto("Use T HowToUpdate R, P ToMaximize Avg(Post(R))");
        assert!(validate_howto(&q, None).is_err());
    }

    #[test]
    fn case_insensitive_duplicate_detection() {
        let q = howto("Use T HowToUpdate Price, PRICE ToMaximize Avg(Post(R))");
        assert!(validate_howto(&q, None).is_err());
    }
}
