//! Hand-written lexer for the extended SQL syntax.

use crate::error::{QueryError, Result};
use crate::token::{Keyword, Token};

/// Tokenize `input` into a vector of tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' if i + 1 >= bytes.len() || !(bytes[i + 1] as char).is_ascii_digit() => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(QueryError::Lex {
                            pos: i,
                            message: "unterminated string literal".into(),
                        });
                    }
                    let cj = bytes[j] as char;
                    if cj == quote {
                        // Doubled quote = escaped quote.
                        if j + 1 < bytes.len() && bytes[j + 1] as char == quote {
                            s.push(quote);
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(cj);
                    j += 1;
                }
                tokens.push(Token::Str(s));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_digit() {
                        j += 1;
                    } else if cj == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        j += 1;
                    } else if (cj == 'e' || cj == 'E')
                        && !seen_exp
                        && j > start
                        && j + 1 < bytes.len()
                        && ((bytes[j + 1] as char).is_ascii_digit()
                            || bytes[j + 1] == b'+'
                            || bytes[j + 1] == b'-')
                    {
                        seen_exp = true;
                        j += 2; // consume e and sign/digit
                    } else {
                        break;
                    }
                }
                let text = &input[start..j];
                let n: f64 = text.parse().map_err(|_| QueryError::Lex {
                    pos: start,
                    message: format!("bad number `{text}`"),
                })?;
                tokens.push(Token::Number(n));
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_alphanumeric() || cj == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..j];
                match Keyword::parse(word) {
                    Some(kw) => tokens.push(Token::Keyword(kw)),
                    None => tokens.push(Token::Ident(word.to_string())),
                }
                i = j;
            }
            other => {
                return Err(QueryError::Lex {
                    pos: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        let t = tokenize("use USE Use uSe").unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|t| *t == Token::Keyword(Keyword::Use)));
    }

    #[test]
    fn numbers_strings_idents() {
        let t = tokenize("price 1.1 'Asus' 42 \"x\" 1e3 0.5e-2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("price".into()),
                Token::Number(1.1),
                Token::Str("Asus".into()),
                Token::Number(42.0),
                Token::Str("x".into()),
                Token::Number(1000.0),
                Token::Number(0.005),
            ]
        );
    }

    #[test]
    fn operators() {
        let t = tokenize("<= >= <> != < > = + - * / ( ) , .").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::LParen,
                Token::RParen,
                Token::Comma,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn escaped_quotes_and_comments() {
        let t = tokenize("'it''s' -- comment here\n 'next'").unwrap();
        assert_eq!(
            t,
            vec![Token::Str("it's".into()), Token::Str("next".into())]
        );
    }

    #[test]
    fn errors_carry_positions() {
        match tokenize("a ; b").unwrap_err() {
            QueryError::Lex { pos, .. } => assert_eq!(pos, 2),
            e => panic!("unexpected {e}"),
        }
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn qualified_names_tokenize_with_dot() {
        let t = tokenize("T1.Price").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("T1".into()),
                Token::Dot,
                Token::Ident("Price".into())
            ]
        );
    }
}
