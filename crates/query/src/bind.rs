//! Parameter bindings: named literal placeholders (`Param(name)`) and
//! their resolution into concrete queries.
//!
//! A query built (or parsed) with placeholders is a *template*: it can be
//! prepared once — parsed, validated, view-resolved — and then resolved
//! against many [`Bindings`] maps, one per execution. Resolution is pure
//! substitution over the AST; the result contains no [`HExpr::Param`] /
//! [`UpdateFunc::Param`] nodes and evaluates exactly like a query written
//! with the literals inline.
//!
//! ```
//! use hyper_query::{Bindings, WhatIf};
//!
//! let template = WhatIf::over("product")
//!     .scale_param("price", "mult")
//!     .output_avg_post("rating")
//!     .build()
//!     .unwrap();
//! assert_eq!(template.param_names(), vec!["mult"]);
//!
//! let concrete = template.bind(&Bindings::new().set("mult", 1.1)).unwrap();
//! assert!(concrete.param_names().is_empty());
//! ```

use std::collections::BTreeMap;
use std::fmt;

use hyper_storage::Value;

use crate::ast::{
    Bound, HExpr, HowToQuery, HypotheticalQuery, LimitConstraint, ObjectiveConst, ObjectiveSpec,
    OutputArg, ParamMode, UpdateFunc, UpdateSpec, WhatIfQuery,
};
use crate::error::{QueryError, Result};

/// A name → literal map supplying the values of `Param(name)` placeholders
/// for one execution. Ordered (BTreeMap) so that iteration — and anything
/// derived from it, like cache keys of resolved queries — is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    map: BTreeMap<String, Value>,
}

impl Bindings {
    /// An empty binding set.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Chainable insert: `Bindings::new().set("mult", 1.1).set("lo", 500)`.
    pub fn set(mut self, name: impl Into<String>, value: impl Into<Value>) -> Bindings {
        self.map.insert(name.into(), value.into());
        self
    }

    /// In-place insert.
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.map.insert(name.into(), value.into());
    }

    /// Look up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.map.get(name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no bindings are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.map.iter()
    }

    fn require(&self, name: &str) -> Result<&Value> {
        self.map
            .get(name)
            .ok_or_else(|| QueryError::Binding(format!("parameter `{name}` has no bound value")))
    }

    fn require_f64(&self, name: &str) -> Result<f64> {
        let v = self.require(name)?;
        v.as_f64().ok_or_else(|| {
            QueryError::Binding(format!(
                "parameter `{name}` must be numeric (scale/shift constant or Limit bound), got {v}"
            ))
        })
    }
}

impl<N: Into<String>, V: Into<Value>> FromIterator<(N, V)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (N, V)>>(iter: I) -> Bindings {
        Bindings {
            map: iter
                .into_iter()
                .map(|(n, v)| (n.into(), v.into()))
                .collect(),
        }
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.map.iter().map(|(n, v)| format!("{n} = {v}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

impl HExpr {
    /// Substitute every `Param(name)` with its bound literal. Errors on an
    /// unbound name; bindings not mentioned by the expression are ignored.
    pub fn bind(&self, bindings: &Bindings) -> Result<HExpr> {
        Ok(match self {
            HExpr::Param(name) => HExpr::Lit(bindings.require(name)?.clone()),
            HExpr::Attr { .. } | HExpr::Lit(_) => self.clone(),
            HExpr::Not(e) => HExpr::Not(Box::new(e.bind(bindings)?)),
            HExpr::Binary { op, left, right } => HExpr::Binary {
                op: *op,
                left: Box::new(left.bind(bindings)?),
                right: Box::new(right.bind(bindings)?),
            },
            HExpr::InList {
                expr,
                list,
                negated,
            } => HExpr::InList {
                expr: Box::new(expr.bind(bindings)?),
                list: list.clone(),
                negated: *negated,
            },
        })
    }
}

impl UpdateFunc {
    /// Resolve a placeholder update into its concrete form. Scale/shift
    /// parameters must bind to numeric values.
    pub fn bind(&self, bindings: &Bindings) -> Result<UpdateFunc> {
        Ok(match self {
            UpdateFunc::Param { name, mode } => match mode {
                ParamMode::Set => UpdateFunc::Set(bindings.require(name)?.clone()),
                ParamMode::Scale => UpdateFunc::Scale(bindings.require_f64(name)?),
                ParamMode::Shift => UpdateFunc::Shift(bindings.require_f64(name)?),
            },
            concrete => concrete.clone(),
        })
    }
}

fn bind_opt(e: &Option<HExpr>, bindings: &Bindings) -> Result<Option<HExpr>> {
    e.as_ref().map(|e| e.bind(bindings)).transpose()
}

impl Bound {
    /// Resolve a placeholder bound into its literal (numeric) value.
    pub fn bind(&self, bindings: &Bindings) -> Result<Bound> {
        Ok(match self {
            Bound::Param(name) => Bound::Lit(bindings.require_f64(name)?),
            lit => lit.clone(),
        })
    }
}

impl ObjectiveConst {
    /// Resolve a placeholder constant into its bound literal.
    pub fn bind(&self, bindings: &Bindings) -> Result<ObjectiveConst> {
        Ok(match self {
            ObjectiveConst::Param(name) => ObjectiveConst::Lit(bindings.require(name)?.clone()),
            lit => lit.clone(),
        })
    }
}

impl ObjectiveSpec {
    /// Resolve the predicate constant against `bindings`.
    pub fn bind(&self, bindings: &Bindings) -> Result<ObjectiveSpec> {
        Ok(ObjectiveSpec {
            direction: self.direction,
            agg: self.agg,
            attr: self.attr.clone(),
            predicate: self
                .predicate
                .as_ref()
                .map(|(op, c)| Ok::<_, crate::error::QueryError>((*op, c.bind(bindings)?)))
                .transpose()?,
        })
    }
}

impl LimitConstraint {
    /// Resolve every placeholder bound against `bindings`.
    pub fn bind(&self, bindings: &Bindings) -> Result<LimitConstraint> {
        Ok(match self {
            LimitConstraint::Range { attr, lo, hi } => LimitConstraint::Range {
                attr: attr.clone(),
                lo: lo.as_ref().map(|b| b.bind(bindings)).transpose()?,
                hi: hi.as_ref().map(|b| b.bind(bindings)).transpose()?,
            },
            LimitConstraint::L1 { attr, bound } => LimitConstraint::L1 {
                attr: attr.clone(),
                bound: bound.bind(bindings)?,
            },
            in_set @ LimitConstraint::InSet { .. } => in_set.clone(),
        })
    }
}

impl WhatIfQuery {
    /// Resolve every placeholder against `bindings`, yielding a concrete
    /// query (no `Param` nodes remain). Errors on any unbound parameter.
    pub fn bind(&self, bindings: &Bindings) -> Result<WhatIfQuery> {
        Ok(WhatIfQuery {
            use_clause: self.use_clause.clone(),
            when: bind_opt(&self.when, bindings)?,
            updates: self
                .updates
                .iter()
                .map(|u| {
                    Ok(UpdateSpec {
                        attr: u.attr.clone(),
                        func: u.func.bind(bindings)?,
                    })
                })
                .collect::<Result<Vec<_>>>()?,
            output: crate::ast::OutputSpec {
                agg: self.output.agg,
                arg: match &self.output.arg {
                    OutputArg::Star => OutputArg::Star,
                    OutputArg::Expr(e) => OutputArg::Expr(e.bind(bindings)?),
                },
            },
            for_clause: bind_opt(&self.for_clause, bindings)?,
        })
    }
}

impl HowToQuery {
    /// Resolve every placeholder against `bindings` (see
    /// [`WhatIfQuery::bind`]).
    pub fn bind(&self, bindings: &Bindings) -> Result<HowToQuery> {
        Ok(HowToQuery {
            use_clause: self.use_clause.clone(),
            when: bind_opt(&self.when, bindings)?,
            update_attrs: self.update_attrs.clone(),
            limits: self
                .limits
                .iter()
                .map(|l| l.bind(bindings))
                .collect::<Result<_>>()?,
            objective: self.objective.bind(bindings)?,
            for_clause: bind_opt(&self.for_clause, bindings)?,
        })
    }
}

impl HypotheticalQuery {
    /// Resolve every placeholder against `bindings`.
    pub fn bind(&self, bindings: &Bindings) -> Result<HypotheticalQuery> {
        Ok(match self {
            HypotheticalQuery::WhatIf(q) => HypotheticalQuery::WhatIf(q.bind(bindings)?),
            HypotheticalQuery::HowTo(q) => HypotheticalQuery::HowTo(q.bind(bindings)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::HOp;
    use crate::parser::parse_query;

    #[test]
    fn expr_param_substitution() {
        let e = HExpr::binary(HOp::Gt, HExpr::post("rating"), HExpr::param("floor"));
        let bound = e.bind(&Bindings::new().set("floor", 3.5)).unwrap();
        assert_eq!(
            bound,
            HExpr::binary(HOp::Gt, HExpr::post("rating"), HExpr::lit(3.5))
        );
        assert!(e.bind(&Bindings::new()).is_err(), "unbound param errors");
    }

    #[test]
    fn update_param_modes() {
        let b = Bindings::new().set("c", 2).set("color", "Red");
        let scale = UpdateFunc::Param {
            name: "c".into(),
            mode: ParamMode::Scale,
        };
        assert_eq!(scale.bind(&b).unwrap(), UpdateFunc::Scale(2.0));
        let set = UpdateFunc::Param {
            name: "color".into(),
            mode: ParamMode::Set,
        };
        assert_eq!(set.bind(&b).unwrap(), UpdateFunc::Set(Value::str("Red")));
        let bad = UpdateFunc::Param {
            name: "color".into(),
            mode: ParamMode::Shift,
        };
        assert!(bad.bind(&b).is_err(), "non-numeric shift constant");
    }

    #[test]
    fn parsed_param_query_binds_to_parsed_literal_query() {
        let template = parse_query(
            "Use d Update(b) = Param(mult) * Pre(b) \
             Output Count(Post(y) = Param(target))",
        )
        .unwrap();
        assert_eq!(template.param_names(), vec!["mult", "target"]);
        let bound = template
            .bind(&Bindings::new().set("mult", 1.5).set("target", 1))
            .unwrap();
        let literal =
            parse_query("Use d Update(b) = 1.5 * Pre(b) Output Count(Post(y) = 1)").unwrap();
        assert_eq!(bound, literal);
        assert!(bound.param_names().is_empty());
    }

    #[test]
    fn limit_bounds_bind_to_literals() {
        let template = parse_query(
            "Use d HowToUpdate p Limit Param(lo) <= Post(p) <= Param(hi) \
             And L1(Pre(p), Post(p)) <= Param(c) ToMaximize Avg(Post(r))",
        )
        .unwrap();
        assert_eq!(template.param_names(), vec!["lo", "hi", "c"]);
        let bound = template
            .bind(&Bindings::new().set("lo", 10).set("hi", 20.5).set("c", 3))
            .unwrap();
        let literal = parse_query(
            "Use d HowToUpdate p Limit 10 <= Post(p) <= 20.5 \
             And L1(Pre(p), Post(p)) <= 3 ToMaximize Avg(Post(r))",
        )
        .unwrap();
        assert_eq!(bound, literal);
        assert!(bound.param_names().is_empty());
        // Non-numeric bound values are rejected.
        let err = template
            .bind(&Bindings::new().set("lo", "x").set("hi", 1).set("c", 1))
            .unwrap_err();
        assert!(err.to_string().contains("lo"), "{err}");
    }

    #[test]
    fn objective_constants_bind_to_literals() {
        let template =
            parse_query("Use d HowToUpdate status ToMaximize Count(Post(credit) = Param(target))")
                .unwrap();
        assert_eq!(template.param_names(), vec!["target"]);
        let bound = template
            .bind(&Bindings::new().set("target", "Good"))
            .unwrap();
        let literal =
            parse_query("Use d HowToUpdate status ToMaximize Count(Post(credit) = 'Good')")
                .unwrap();
        assert_eq!(bound, literal);
        assert!(bound.param_names().is_empty());
        // Unbound objective params error with the offending name.
        let err = template.bind(&Bindings::new()).unwrap_err();
        assert!(err.to_string().contains("target"), "{err}");
        // Round-trip: the template renders and re-parses identically.
        let rendered = template.to_string();
        assert_eq!(parse_query(&rendered).unwrap(), template, "{rendered}");
    }

    #[test]
    fn extra_bindings_are_ignored() {
        let e = HExpr::param("x");
        let b = Bindings::new().set("x", 1).set("unused", 2);
        assert_eq!(e.bind(&b).unwrap(), HExpr::lit(1));
    }
}
