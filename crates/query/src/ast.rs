//! Abstract syntax of probabilistic what-if and how-to queries
//! (paper Figures 4, 5, 7; §3.1, §4.1).

use std::fmt;

use hyper_storage::{AggFunc, Value};

/// Whether an attribute reference reads the pre-update or post-update value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Temporal {
    /// `Pre(A)` — value in the given database `D`.
    Pre,
    /// `Post(A)` — value after the hypothetical update.
    Post,
}

impl fmt::Display for Temporal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Temporal::Pre => write!(f, "Pre"),
            Temporal::Post => write!(f, "Post"),
        }
    }
}

/// A possibly-qualified column name (`T1.Price` or `Price`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualifiedName {
    /// Table name or alias, if qualified.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl QualifiedName {
    /// Unqualified name.
    pub fn bare(name: impl Into<String>) -> Self {
        QualifiedName {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Qualified name.
    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> Self {
        QualifiedName {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }
}

impl fmt::Display for QualifiedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Comparison / logical operators in hypothetical predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HOp {
    /// `=`.
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `AND`.
    And,
    /// `OR`.
    Or,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

impl fmt::Display for HOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HOp::Eq => "=",
            HOp::Ne => "<>",
            HOp::Lt => "<",
            HOp::Le => "<=",
            HOp::Gt => ">",
            HOp::Ge => ">=",
            HOp::And => "And",
            HOp::Or => "Or",
            HOp::Add => "+",
            HOp::Sub => "-",
            HOp::Mul => "*",
            HOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Hypothetical scalar expressions: attribute references carry an optional
/// `Pre`/`Post` marker (`None` = clause default, resolved by the validator).
#[derive(Debug, Clone, PartialEq)]
pub enum HExpr {
    /// Attribute reference, e.g. `Post(Senti)` or bare `Brand`.
    Attr {
        /// Explicit temporal marker, if written.
        temporal: Option<Temporal>,
        /// Attribute name (relevant-view column).
        name: String,
    },
    /// Literal.
    Lit(Value),
    /// Logical negation.
    Not(Box<HExpr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: HOp,
        /// Left operand.
        left: Box<HExpr>,
        /// Right operand.
        right: Box<HExpr>,
    },
    /// `expr In (v1, …)` / `Not In`.
    InList {
        /// Tested expression.
        expr: Box<HExpr>,
        /// Candidates.
        list: Vec<Value>,
        /// Negated?
        negated: bool,
    },
    /// `Param(name)` — a named literal placeholder, supplied at execution
    /// time through a [`crate::Bindings`] map. A query containing
    /// parameters can be prepared (parsed, validated, view-resolved) once
    /// and executed many times with different literals.
    Param(String),
}

impl HExpr {
    /// Attribute helper.
    pub fn attr(name: impl Into<String>) -> HExpr {
        HExpr::Attr {
            temporal: None,
            name: name.into(),
        }
    }

    /// `Pre(name)` helper.
    pub fn pre(name: impl Into<String>) -> HExpr {
        HExpr::Attr {
            temporal: Some(Temporal::Pre),
            name: name.into(),
        }
    }

    /// `Post(name)` helper.
    pub fn post(name: impl Into<String>) -> HExpr {
        HExpr::Attr {
            temporal: Some(Temporal::Post),
            name: name.into(),
        }
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> HExpr {
        HExpr::Lit(v.into())
    }

    /// `Param(name)` placeholder helper.
    pub fn param(name: impl Into<String>) -> HExpr {
        HExpr::Param(name.into())
    }

    /// Binary builder.
    pub fn binary(op: HOp, left: HExpr, right: HExpr) -> HExpr {
        HExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Conjunction.
    pub fn and(self, other: HExpr) -> HExpr {
        HExpr::binary(HOp::And, self, other)
    }

    /// All attribute references in the expression, with resolved temporals
    /// filled by `default`.
    pub fn attrs_with_default(&self, default: Temporal) -> Vec<(Temporal, String)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let HExpr::Attr { temporal, name } = e {
                out.push((temporal.unwrap_or(default), name.clone()));
            }
        });
        out
    }

    /// True when the expression mentions any `Post(·)` reference.
    pub fn mentions_post(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let HExpr::Attr {
                temporal: Some(Temporal::Post),
                ..
            } = e
            {
                found = true;
            }
        });
        found
    }

    /// Parameter names mentioned in the expression, in first-occurrence
    /// order, deduplicated.
    pub fn param_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let HExpr::Param(name) = e {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    pub(crate) fn walk(&self, f: &mut impl FnMut(&HExpr)) {
        f(self);
        match self {
            HExpr::Not(e) => e.walk(f),
            HExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            HExpr::InList { expr, .. } => expr.walk(f),
            HExpr::Attr { .. } | HExpr::Lit(_) | HExpr::Param(_) => {}
        }
    }
}

impl fmt::Display for HExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HExpr::Attr { temporal, name } => match temporal {
                Some(t) => write!(f, "{t}({name})"),
                None => write!(f, "{name}"),
            },
            HExpr::Lit(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            HExpr::Lit(v) => write!(f, "{v}"),
            HExpr::Not(e) => write!(f, "Not ({e})"),
            HExpr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            HExpr::InList {
                expr,
                list,
                negated,
            } => {
                let vals: Vec<String> = list
                    .iter()
                    .map(|v| match v {
                        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
                        other => other.to_string(),
                    })
                    .collect();
                let kw = if *negated { "Not In" } else { "In" };
                write!(f, "({expr} {kw} ({}))", vals.join(", "))
            }
            HExpr::Param(name) => write!(f, "Param({name})"),
        }
    }
}

/// One item of the `Select` list inside a `Use` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Plain column (optionally aliased).
    Column {
        /// Source column.
        name: QualifiedName,
        /// Output alias.
        alias: Option<String>,
    },
    /// Aggregated column (`Avg(T2.Rating) As Rtng`).
    Aggregate {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated column.
        arg: QualifiedName,
        /// Output alias (required by the paper's syntax).
        alias: String,
    },
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias, if given.
    pub alias: Option<String>,
}

/// A `Where` conjunct in the `Use` select: either an equi-join between two
/// qualified columns or a literal filter.
#[derive(Debug, Clone, PartialEq)]
pub enum UseCondition {
    /// `T1.PID = T2.PID`.
    Join(QualifiedName, QualifiedName),
    /// `T1.Category = 'Laptop'` (restricted filter form).
    Filter {
        /// Filtered column.
        column: QualifiedName,
        /// Comparison operator.
        op: HOp,
        /// Literal operand.
        value: Value,
    },
}

/// The SQL query inside a `Use (...)` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `From` tables.
    pub from: Vec<TableRef>,
    /// `Where` conjuncts.
    pub conditions: Vec<UseCondition>,
    /// `Group By` columns.
    pub group_by: Vec<QualifiedName>,
}

/// The `Use` operator: either a bare table or an embedded select.
#[derive(Debug, Clone, PartialEq)]
pub enum UseClause {
    /// `Use Review`.
    Table(String),
    /// `Use (Select … )`.
    Select(SelectStmt),
}

/// Which concrete update form a [`UpdateFunc::Param`] placeholder resolves
/// to once its constant is supplied by a [`crate::Bindings`] map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamMode {
    /// `Update(B) = Param(name)` → [`UpdateFunc::Set`].
    Set,
    /// `Update(B) = Param(name) * Pre(B)` → [`UpdateFunc::Scale`].
    Scale,
    /// `Update(B) = Param(name) + Pre(B)` → [`UpdateFunc::Shift`].
    Shift,
}

/// Update function (Definition 2's `f`; §3.1 restricts to these forms).
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateFunc {
    /// `Update(B) = const`.
    Set(Value),
    /// `Update(B) = const × Pre(B)`.
    Scale(f64),
    /// `Update(B) = const + Pre(B)`.
    Shift(f64),
    /// A named placeholder for the update constant, bound at execution
    /// time; `mode` decides which of the three concrete forms it becomes.
    Param {
        /// Binding name.
        name: String,
        /// Concrete form after binding.
        mode: ParamMode,
    },
}

impl UpdateFunc {
    /// The parameter name, if this is a placeholder.
    pub fn param_name(&self) -> Option<&str> {
        match self {
            UpdateFunc::Param { name, .. } => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for UpdateFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateFunc::Set(Value::Str(s)) => write!(f, "'{s}'"),
            UpdateFunc::Set(v) => write!(f, "{v}"),
            UpdateFunc::Scale(c) => write!(f, "{c} * Pre(·)"),
            UpdateFunc::Shift(c) => write!(f, "{c} + Pre(·)"),
            UpdateFunc::Param {
                name,
                mode: ParamMode::Set,
            } => write!(f, "Param({name})"),
            UpdateFunc::Param {
                name,
                mode: ParamMode::Scale,
            } => write!(f, "Param({name}) * Pre(·)"),
            UpdateFunc::Param {
                name,
                mode: ParamMode::Shift,
            } => write!(f, "Param({name}) + Pre(·)"),
        }
    }
}

/// One `Update(B) = f` specification.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateSpec {
    /// Updated attribute.
    pub attr: String,
    /// Update function.
    pub func: UpdateFunc,
}

/// Argument of the `Output` aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputArg {
    /// `Count(*)`.
    Star,
    /// Aggregate over an expression (`Avg(Post(Rtng))`,
    /// `Count(Credit = 'Good')`).
    Expr(HExpr),
}

/// The `Output` operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSpec {
    /// Aggregate function.
    pub agg: AggFunc,
    /// Aggregated argument.
    pub arg: OutputArg,
}

/// A complete probabilistic what-if query.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfQuery {
    /// `Use` operator (required).
    pub use_clause: UseClause,
    /// `When` predicate (optional; `None` = all tuples).
    pub when: Option<HExpr>,
    /// `Update` specifications (≥ 1; multiple connected by `And`).
    pub updates: Vec<UpdateSpec>,
    /// `Output` operator (required).
    pub output: OutputSpec,
    /// `For` predicate (optional).
    pub for_clause: Option<HExpr>,
}

/// Objective direction of a how-to query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveDirection {
    /// `ToMaximize`.
    Maximize,
    /// `ToMinimize`.
    Minimize,
}

/// The constant of an objective predicate: a literal, or a `Param(name)`
/// placeholder bound per execution through a [`crate::Bindings`] map — so
/// one prepared how-to template can sweep objective targets
/// (`ToMaximize Count(Post(credit) = Param(target))`) without
/// re-preparing.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectiveConst {
    /// Literal constant.
    Lit(Value),
    /// Named placeholder, bound at execution time.
    Param(String),
}

impl ObjectiveConst {
    /// Placeholder helper.
    pub fn param(name: impl Into<String>) -> ObjectiveConst {
        ObjectiveConst::Param(name.into())
    }

    /// The literal value, if resolved.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            ObjectiveConst::Lit(v) => Some(v),
            ObjectiveConst::Param(_) => None,
        }
    }

    /// The parameter name, if this is a placeholder.
    pub fn param_name(&self) -> Option<&str> {
        match self {
            ObjectiveConst::Param(name) => Some(name),
            ObjectiveConst::Lit(_) => None,
        }
    }
}

impl<V: Into<Value>> From<V> for ObjectiveConst {
    fn from(v: V) -> ObjectiveConst {
        ObjectiveConst::Lit(v.into())
    }
}

/// `ToMaximize Avg(Post(Rtng))` or `ToMaximize Count(Post(Credit) = 'Good')`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveSpec {
    /// Direction.
    pub direction: ObjectiveDirection,
    /// Aggregate function.
    pub agg: AggFunc,
    /// Output attribute (always a `Post` reference).
    pub attr: String,
    /// Optional comparison turning the aggregate argument into a predicate
    /// (used with `Count` to maximize e.g. the number of good-credit
    /// individuals). The constant may be a `Param(…)` placeholder.
    pub predicate: Option<(HOp, ObjectiveConst)>,
}

impl ObjectiveSpec {
    /// Parameter names referenced by this objective's predicate constant.
    pub fn param_names(&self) -> Vec<String> {
        self.predicate
            .iter()
            .filter_map(|(_, c)| c.param_name().map(str::to_string))
            .collect()
    }
}

/// A numeric bound of a `Limit` constraint: either a literal or a
/// `Param(name)` placeholder supplied per execution through a
/// [`crate::Bindings`] map — so one prepared how-to template can sweep
/// candidate grids (`Limit Param(lo) <= Post(price) <= Param(hi)`) without
/// re-preparing.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// Literal bound.
    Lit(f64),
    /// Named placeholder, bound at execution time.
    Param(String),
}

impl Bound {
    /// Placeholder helper.
    pub fn param(name: impl Into<String>) -> Bound {
        Bound::Param(name.into())
    }

    /// The literal value, if resolved.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Bound::Lit(x) => Some(*x),
            Bound::Param(_) => None,
        }
    }

    /// The parameter name, if this is a placeholder.
    pub fn param_name(&self) -> Option<&str> {
        match self {
            Bound::Param(name) => Some(name),
            Bound::Lit(_) => None,
        }
    }
}

impl From<f64> for Bound {
    fn from(x: f64) -> Bound {
        Bound::Lit(x)
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Lit(x) => write!(f, "{x}"),
            Bound::Param(name) => write!(f, "Param({name})"),
        }
    }
}

/// One `Limit` constraint (paper §4.1).
#[derive(Debug, Clone, PartialEq)]
pub enum LimitConstraint {
    /// `lo ≤ Post(A)` and/or `Post(A) ≤ hi`.
    Range {
        /// Constrained attribute.
        attr: String,
        /// Lower bound, if any.
        lo: Option<Bound>,
        /// Upper bound, if any.
        hi: Option<Bound>,
    },
    /// `Post(A) In (v1, v2, …)`.
    InSet {
        /// Constrained attribute.
        attr: String,
        /// Permitted values.
        values: Vec<Value>,
    },
    /// `L1(Pre(A), Post(A)) ≤ bound`.
    L1 {
        /// Constrained attribute.
        attr: String,
        /// Maximum normalized L1 distance.
        bound: Bound,
    },
}

impl LimitConstraint {
    /// Parameter names referenced by this constraint's bounds.
    pub fn param_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        match self {
            LimitConstraint::Range { lo, hi, .. } => {
                for b in [lo, hi].into_iter().flatten() {
                    if let Some(n) = b.param_name() {
                        out.push(n.to_string());
                    }
                }
            }
            LimitConstraint::L1 { bound, .. } => {
                if let Some(n) = bound.param_name() {
                    out.push(n.to_string());
                }
            }
            LimitConstraint::InSet { .. } => {}
        }
        out
    }
}

/// A complete probabilistic how-to query.
#[derive(Debug, Clone, PartialEq)]
pub struct HowToQuery {
    /// `Use` operator (required).
    pub use_clause: UseClause,
    /// `When` predicate (optional).
    pub when: Option<HExpr>,
    /// `HowToUpdate` attribute list (≥ 1).
    pub update_attrs: Vec<String>,
    /// `Limit` constraints.
    pub limits: Vec<LimitConstraint>,
    /// `ToMaximize` / `ToMinimize` objective (required).
    pub objective: ObjectiveSpec,
    /// `For` predicate (optional).
    pub for_clause: Option<HExpr>,
}

/// Any hypothetical query.
#[derive(Debug, Clone, PartialEq)]
pub enum HypotheticalQuery {
    /// What-if (§3).
    WhatIf(WhatIfQuery),
    /// How-to (§4).
    HowTo(HowToQuery),
}

impl HypotheticalQuery {
    /// The `Use` clause of either variant.
    pub fn use_clause(&self) -> &UseClause {
        match self {
            HypotheticalQuery::WhatIf(q) => &q.use_clause,
            HypotheticalQuery::HowTo(q) => &q.use_clause,
        }
    }

    /// Parameter names of either variant (first occurrence order).
    pub fn param_names(&self) -> Vec<String> {
        match self {
            HypotheticalQuery::WhatIf(q) => q.param_names(),
            HypotheticalQuery::HowTo(q) => q.param_names(),
        }
    }
}

impl From<WhatIfQuery> for HypotheticalQuery {
    fn from(q: WhatIfQuery) -> Self {
        HypotheticalQuery::WhatIf(q)
    }
}

impl From<HowToQuery> for HypotheticalQuery {
    fn from(q: HowToQuery) -> Self {
        HypotheticalQuery::HowTo(q)
    }
}

fn push_unique(out: &mut Vec<String>, names: Vec<String>) {
    for n in names {
        if !out.contains(&n) {
            out.push(n);
        }
    }
}

impl WhatIfQuery {
    /// Parameter names mentioned anywhere in the query, in first-occurrence
    /// order (`When`, then `Update`, then `Output`, then `For`).
    pub fn param_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(w) = &self.when {
            push_unique(&mut out, w.param_names());
        }
        for u in &self.updates {
            if let Some(n) = u.func.param_name() {
                push_unique(&mut out, vec![n.to_string()]);
            }
        }
        if let OutputArg::Expr(e) = &self.output.arg {
            push_unique(&mut out, e.param_names());
        }
        if let Some(fc) = &self.for_clause {
            push_unique(&mut out, fc.param_names());
        }
        out
    }
}

impl HowToQuery {
    /// Parameter names mentioned anywhere in the query, in clause order
    /// (`When`, then `Limit` bounds, then the objective constant, then
    /// `For`), first occurrence only.
    pub fn param_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(w) = &self.when {
            push_unique(&mut out, w.param_names());
        }
        for l in &self.limits {
            push_unique(&mut out, l.param_names());
        }
        push_unique(&mut out, self.objective.param_names());
        if let Some(fc) = &self.for_clause {
            push_unique(&mut out, fc.param_names());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hexpr_builders_and_attrs() {
        let e = HExpr::pre("Brand").and(HExpr::binary(
            HOp::Gt,
            HExpr::post("Senti"),
            HExpr::lit(0.5),
        ));
        let attrs = e.attrs_with_default(Temporal::Pre);
        assert_eq!(
            attrs,
            vec![
                (Temporal::Pre, "Brand".to_string()),
                (Temporal::Post, "Senti".to_string())
            ]
        );
        assert!(e.mentions_post());
        assert!(!HExpr::attr("x").mentions_post());
    }

    #[test]
    fn default_temporal_resolution() {
        let e = HExpr::binary(HOp::Eq, HExpr::attr("Brand"), HExpr::lit("Asus"));
        let pre = e.attrs_with_default(Temporal::Pre);
        assert_eq!(pre[0].0, Temporal::Pre);
        let post = e.attrs_with_default(Temporal::Post);
        assert_eq!(post[0].0, Temporal::Post);
    }

    #[test]
    fn display_round_readable() {
        let e = HExpr::binary(HOp::Gt, HExpr::post("Senti"), HExpr::lit(0.5));
        assert_eq!(e.to_string(), "(Post(Senti) > 0.5)");
        let e = HExpr::InList {
            expr: Box::new(HExpr::attr("Color")),
            list: vec!["Red".into(), "Blue".into()],
            negated: false,
        };
        assert_eq!(e.to_string(), "(Color In ('Red', 'Blue'))");
    }
}
