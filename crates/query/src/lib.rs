//! # hyper-query
//!
//! The declarative language of HypeR (paper §3.1, §4.1): standard SQL
//! extended with `Use / When / Update / Output / For` for probabilistic
//! what-if queries and `Use / When / HowToUpdate / Limit / ToMaximize /
//! ToMinimize / For` for how-to queries, including `Pre(A)` / `Post(A)`
//! temporal attribute references and the `L1` update-cost operator.
//!
//! ```
//! use hyper_query::{parse_query, HypotheticalQuery};
//!
//! let q = parse_query(
//!     "Use Product When Brand = 'Asus' \
//!      Update(Price) = 1.1 * Pre(Price) \
//!      Output Avg(Post(Rating)) \
//!      For Pre(Category) = 'Laptop'",
//! ).unwrap();
//! assert!(matches!(q, HypotheticalQuery::WhatIf(_)));
//! ```
//!
//! The same queries can be composed **without text** through the typed
//! builders [`WhatIf`] and [`HowTo`], which produce the identical AST the
//! parser yields (property-tested: `parse(display(built)) == built`), and
//! may carry named [`Bindings`] placeholders (`Param(name)`) resolved per
//! execution:
//!
//! ```
//! use hyper_query::{Bindings, HExpr, WhatIf};
//!
//! let template = WhatIf::over("Product")
//!     .when(HExpr::attr("Brand").eq("Asus"))
//!     .scale_param("Price", "mult")
//!     .output_avg_post("Rating")
//!     .build()
//!     .unwrap();
//! let concrete = template.bind(&Bindings::new().set("mult", 1.1)).unwrap();
//! assert!(concrete.param_names().is_empty());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bind;
pub mod builder;
pub mod display;
pub mod error;
pub mod key;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod validate;

pub use ast::{
    Bound, HExpr, HOp, HowToQuery, HypotheticalQuery, LimitConstraint, ObjectiveConst,
    ObjectiveDirection, ObjectiveSpec, OutputArg, OutputSpec, ParamMode, QualifiedName, SelectItem,
    SelectStmt, TableRef, Temporal, UpdateFunc, UpdateSpec, UseClause, UseCondition, WhatIfQuery,
};
pub use bind::Bindings;
pub use builder::{HowTo, WhatIf};
pub use error::{QueryError, Result};
pub use key::QueryKey;
pub use parser::{parse_query, parse_select};
pub use validate::{validate, validate_howto, validate_whatif};
