//! # hyper-query
//!
//! The declarative language of HypeR (paper §3.1, §4.1): standard SQL
//! extended with `Use / When / Update / Output / For` for probabilistic
//! what-if queries and `Use / When / HowToUpdate / Limit / ToMaximize /
//! ToMinimize / For` for how-to queries, including `Pre(A)` / `Post(A)`
//! temporal attribute references and the `L1` update-cost operator.
//!
//! ```
//! use hyper_query::{parse_query, HypotheticalQuery};
//!
//! let q = parse_query(
//!     "Use Product When Brand = 'Asus' \
//!      Update(Price) = 1.1 * Pre(Price) \
//!      Output Avg(Post(Rating)) \
//!      For Pre(Category) = 'Laptop'",
//! ).unwrap();
//! assert!(matches!(q, HypotheticalQuery::WhatIf(_)));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod validate;

pub use ast::{
    HExpr, HOp, HowToQuery, HypotheticalQuery, LimitConstraint, ObjectiveDirection, ObjectiveSpec,
    OutputArg, OutputSpec, QualifiedName, SelectItem, SelectStmt, TableRef, Temporal, UpdateFunc,
    UpdateSpec, UseClause, UseCondition, WhatIfQuery,
};
pub use error::{QueryError, Result};
pub use parser::{parse_query, parse_select};
pub use validate::{validate, validate_howto, validate_whatif};
