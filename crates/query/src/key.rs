//! Canonical cache keys derived structurally from the query IR.
//!
//! A [`QueryKey`] is a compact, injective-by-construction encoding of an
//! AST fragment: every node is written as a tag plus `\u{1f}`-separated
//! fields, strings are length-prefixed (so no input text can forge a
//! separator), and floats are encoded by their IEEE-754 bit pattern (so
//! `0.1 + 0.2` and `0.3` key differently, exactly like the ASTs differ).
//! Equal keys therefore imply equal ASTs — and because parsed and built
//! queries are the *same* IR, they share cache entries with no rendering
//! or re-parsing involved.
//!
//! Identifier and literal text is encoded exactly (no case folding): table
//! lookup and string-value comparison are case-sensitive downstream, so a
//! spelling difference can cost at most a duplicate cache entry, never a
//! wrong answer.

use std::fmt;

use hyper_storage::Value;

use crate::ast::*;

/// Unit separator between encoded fields.
const SEP: char = '\u{1f}';

/// A canonical structural fingerprint of a query (or query fragment),
/// usable as a cache key. Cheap to clone and hash; ordered for use in
/// sorted maps.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey(String);

impl QueryKey {
    /// Key of a `Use` clause (the relevant-view cache key).
    pub fn of_use(u: &UseClause) -> QueryKey {
        let mut out = String::with_capacity(64);
        write_use(&mut out, u);
        QueryKey(out)
    }

    /// Key of a complete what-if query.
    pub fn of_whatif(q: &WhatIfQuery) -> QueryKey {
        let mut out = String::with_capacity(128);
        out.push_str("wi");
        out.push(SEP);
        write_use(&mut out, &q.use_clause);
        out.push(SEP);
        write_opt_expr(&mut out, &q.when);
        out.push(SEP);
        for u in &q.updates {
            write_update_spec(&mut out, u);
        }
        out.push(SEP);
        write_output(&mut out, &q.output);
        out.push(SEP);
        write_opt_expr(&mut out, &q.for_clause);
        QueryKey(out)
    }

    /// Key of a complete how-to query.
    pub fn of_howto(q: &HowToQuery) -> QueryKey {
        let mut out = String::with_capacity(128);
        out.push_str("ht");
        out.push(SEP);
        write_use(&mut out, &q.use_clause);
        out.push(SEP);
        write_opt_expr(&mut out, &q.when);
        out.push(SEP);
        for a in &q.update_attrs {
            write_str(&mut out, a);
        }
        out.push(SEP);
        for l in &q.limits {
            write_limit(&mut out, l);
        }
        out.push(SEP);
        write_objective(&mut out, &q.objective);
        out.push(SEP);
        write_opt_expr(&mut out, &q.for_clause);
        QueryKey(out)
    }

    /// Key of either query kind.
    pub fn of_query(q: &HypotheticalQuery) -> QueryKey {
        match q {
            HypotheticalQuery::WhatIf(q) => QueryKey::of_whatif(q),
            HypotheticalQuery::HowTo(q) => QueryKey::of_howto(q),
        }
    }

    /// The underlying key string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Consume into the key string.
    pub fn into_string(self) -> String {
        self.0
    }
}

impl fmt::Display for QueryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keys contain control separators; display them printably.
        write!(f, "{}", self.0.replace(SEP, "·"))
    }
}

impl AsRef<str> for QueryKey {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Length-prefixed exact text: `7:example`.
fn write_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}:{s}", s.len());
}

/// Encode a literal with a type tag; floats use their bit pattern.
pub fn write_value(out: &mut String, v: &Value) {
    use std::fmt::Write as _;
    match v {
        Value::Int(i) => {
            let _ = write!(out, "i{i}");
        }
        Value::Float(x) => {
            let _ = write!(out, "f{:016x}", x.to_bits());
        }
        Value::Bool(b) => {
            let _ = write!(out, "b{}", *b as u8);
        }
        Value::Str(s) => {
            out.push('s');
            write_str(out, s);
        }
        Value::Null => out.push('n'),
    }
}

fn write_qualified(out: &mut String, q: &QualifiedName) {
    match &q.qualifier {
        Some(t) => {
            out.push('q');
            write_str(out, t);
            out.push('.');
            write_str(out, &q.name);
        }
        None => {
            out.push('u');
            write_str(out, &q.name);
        }
    }
}

/// Encode a hypothetical expression.
pub fn write_expr(out: &mut String, e: &HExpr) {
    match e {
        HExpr::Attr { temporal, name } => {
            out.push(match temporal {
                Some(Temporal::Pre) => 'P',
                Some(Temporal::Post) => 'O',
                None => 'D',
            });
            write_str(out, name);
        }
        HExpr::Lit(v) => {
            out.push('L');
            write_value(out, v);
        }
        HExpr::Param(name) => {
            out.push('$');
            write_str(out, name);
        }
        HExpr::Not(inner) => {
            out.push('!');
            write_expr(out, inner);
        }
        HExpr::Binary { op, left, right } => {
            out.push('B');
            out.push(op_tag(*op));
            write_expr(out, left);
            write_expr(out, right);
        }
        HExpr::InList {
            expr,
            list,
            negated,
        } => {
            out.push(if *negated { 'J' } else { 'I' });
            write_expr(out, expr);
            out.push('[');
            for v in list {
                write_value(out, v);
            }
            out.push(']');
        }
    }
}

fn write_opt_expr(out: &mut String, e: &Option<HExpr>) {
    match e {
        Some(e) => write_expr(out, e),
        None => out.push('-'),
    }
}

fn op_tag(op: HOp) -> char {
    match op {
        HOp::Eq => '=',
        HOp::Ne => '≠',
        HOp::Lt => '<',
        HOp::Le => '≤',
        HOp::Gt => '>',
        HOp::Ge => '≥',
        HOp::And => '&',
        HOp::Or => '|',
        HOp::Add => '+',
        HOp::Sub => '-',
        HOp::Mul => '*',
        HOp::Div => '/',
    }
}

/// Encode one `Update(attr) = f` specification.
pub fn write_update_spec(out: &mut String, u: &UpdateSpec) {
    use std::fmt::Write as _;
    out.push('U');
    write_str(out, &u.attr);
    match &u.func {
        UpdateFunc::Set(v) => {
            out.push('=');
            write_value(out, v);
        }
        UpdateFunc::Scale(c) => {
            let _ = write!(out, "*{:016x}", c.to_bits());
        }
        UpdateFunc::Shift(c) => {
            let _ = write!(out, "+{:016x}", c.to_bits());
        }
        UpdateFunc::Param { name, mode } => {
            out.push(match mode {
                ParamMode::Set => '$',
                ParamMode::Scale => '×',
                ParamMode::Shift => '±',
            });
            write_str(out, name);
        }
    }
}

/// Encode the `Output` operator.
pub fn write_output(out: &mut String, o: &OutputSpec) {
    use std::fmt::Write as _;
    let _ = write!(out, "A{:?}", o.agg);
    match &o.arg {
        OutputArg::Star => out.push('*'),
        OutputArg::Expr(e) => write_expr(out, e),
    }
}

fn write_bound(out: &mut String, prefix: char, b: &Bound) {
    use std::fmt::Write as _;
    out.push(prefix);
    match b {
        Bound::Lit(x) => {
            let _ = write!(out, "{:016x}", x.to_bits());
        }
        Bound::Param(name) => {
            out.push('$');
            write_str(out, name);
        }
    }
}

fn write_limit(out: &mut String, l: &LimitConstraint) {
    match l {
        LimitConstraint::Range { attr, lo, hi } => {
            out.push('R');
            write_str(out, attr);
            match lo {
                Some(b) => write_bound(out, 'l', b),
                None => out.push('-'),
            }
            match hi {
                Some(b) => write_bound(out, 'h', b),
                None => out.push('-'),
            }
        }
        LimitConstraint::InSet { attr, values } => {
            out.push('S');
            write_str(out, attr);
            out.push('[');
            for v in values {
                write_value(out, v);
            }
            out.push(']');
        }
        LimitConstraint::L1 { attr, bound } => {
            out.push('1');
            write_str(out, attr);
            write_bound(out, 'b', bound);
        }
    }
}

fn write_objective(out: &mut String, o: &ObjectiveSpec) {
    use std::fmt::Write as _;
    out.push(match o.direction {
        ObjectiveDirection::Maximize => '^',
        ObjectiveDirection::Minimize => 'v',
    });
    let _ = write!(out, "{:?}", o.agg);
    write_str(out, &o.attr);
    if let Some((op, c)) = &o.predicate {
        out.push(op_tag(*op));
        match c {
            ObjectiveConst::Lit(v) => write_value(out, v),
            ObjectiveConst::Param(name) => {
                out.push('$');
                write_str(out, name);
            }
        }
    }
}

/// Encode a `Use` clause.
pub fn write_use(out: &mut String, u: &UseClause) {
    match u {
        UseClause::Table(t) => {
            out.push('T');
            write_str(out, t);
        }
        UseClause::Select(s) => {
            out.push('S');
            for item in &s.items {
                match item {
                    SelectItem::Column { name, alias } => {
                        out.push('c');
                        write_qualified(out, name);
                        match alias {
                            Some(a) => {
                                out.push('a');
                                write_str(out, a);
                            }
                            None => out.push('-'),
                        }
                    }
                    SelectItem::Aggregate { func, arg, alias } => {
                        use std::fmt::Write as _;
                        let _ = write!(out, "g{func:?}");
                        write_qualified(out, arg);
                        out.push('a');
                        write_str(out, alias);
                    }
                }
            }
            out.push(SEP);
            for t in &s.from {
                out.push('f');
                write_str(out, &t.table);
                match &t.alias {
                    Some(a) => {
                        out.push('a');
                        write_str(out, a);
                    }
                    None => out.push('-'),
                }
            }
            out.push(SEP);
            for c in &s.conditions {
                match c {
                    UseCondition::Join(l, r) => {
                        out.push('j');
                        write_qualified(out, l);
                        write_qualified(out, r);
                    }
                    UseCondition::Filter { column, op, value } => {
                        out.push('w');
                        write_qualified(out, column);
                        out.push(op_tag(*op));
                        write_value(out, value);
                    }
                }
            }
            out.push(SEP);
            for g in &s.group_by {
                out.push('b');
                write_qualified(out, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WhatIf;
    use crate::parser::parse_query;

    #[test]
    fn built_and_parsed_queries_share_a_key() {
        let built = WhatIf::over("product")
            .when(HExpr::attr("brand").eq("Asus"))
            .scale("price", 1.1)
            .output_avg_post("rtng")
            .build()
            .unwrap();
        let parsed = parse_query(
            "Use product When brand = 'Asus' Update(price) = 1.1 * Pre(price) \
             Output Avg(Post(rtng))",
        )
        .unwrap();
        assert_eq!(
            QueryKey::of_whatif(&built),
            QueryKey::of_query(&parsed),
            "builder and parser must key identically"
        );
    }

    #[test]
    fn keys_distinguish_case_and_type() {
        let a = QueryKey::of_use(&UseClause::Table("d".into()));
        let b = QueryKey::of_use(&UseClause::Table("D".into()));
        assert_ne!(a, b, "no case folding");

        let mut x = String::new();
        write_value(&mut x, &Value::Int(1));
        let mut y = String::new();
        write_value(&mut y, &Value::Float(1.0));
        assert_ne!(x, y, "Int(1) and Float(1.0) key differently");
    }

    #[test]
    fn string_values_cannot_forge_structure() {
        // A string literal containing what looks like an encoded int must
        // not collide with the real encoding of that int.
        let mut a = String::new();
        write_value(&mut a, &Value::str("i42"));
        let mut b = String::new();
        write_value(&mut b, &Value::Int(42));
        assert_ne!(a, b);
    }

    #[test]
    fn param_and_literal_key_differently() {
        let p = WhatIf::over("d")
            .scale_param("b", "m")
            .output_count_star()
            .build()
            .unwrap();
        let l = WhatIf::over("d")
            .scale("b", 1.0)
            .output_count_star()
            .build()
            .unwrap();
        assert_ne!(QueryKey::of_whatif(&p), QueryKey::of_whatif(&l));
    }
}
