//! Criterion microbenchmarks for the typed columnar storage layer: what
//! vectorized execution buys over the `Value`-per-cell paths on German-Syn
//! 10k.
//!
//! * `filter_scan` — vectorized selection ([`hyper_storage::BoundExpr::
//!   eval_selection`] + typed gather) vs the row-at-a-time reference
//!   (`eval_predicate_at` per row, the seed's filter loop) vs the fully
//!   materializing `row(i)` + `eval_row` variant.
//! * `table_encode` — column-wise [`TableEncoder::encode_table`] (slice
//!   reads, dictionary-code one-hot) vs the per-row `row(i)` +
//!   `encode_values` + `push_row` loop the seed used.
//! * `forest_predict` — batch prediction over the encoded matrix.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use hyper_bench::storage_baseline::{
    encode_row_reference, encoder_columns, filter_row_reference, german_predicate,
};
use hyper_ml::{ForestParams, RandomForest, TableEncoder};
use hyper_storage::ops::{filter, matching_rows};
use hyper_storage::{Expr, Table};

const N: usize = 10_000;

fn table() -> Table {
    let data = hyper_datasets::german_syn(N, 1);
    data.db.table("german_syn").unwrap().clone()
}

/// Fully materializing variant: clone each row, evaluate over the `Row`.
/// (Deliberately exercises the deprecated row shim — it is the baseline
/// the vectorized speedup is measured against.)
#[allow(deprecated)]
fn filter_materialized_rows(t: &Table, pred: &Expr) -> usize {
    let bound = pred.bind(t.schema()).unwrap();
    let mut kept = 0;
    for i in 0..t.num_rows() {
        let row = t.row(i);
        if matches!(
            bound.eval_row(&row).unwrap(),
            hyper_storage::Value::Bool(true)
        ) {
            kept += 1;
        }
    }
    kept
}

fn bench_filter_scan(c: &mut Criterion) {
    let t = table();
    let pred = german_predicate();
    let mut group = c.benchmark_group("filter_scan_german_10k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("vectorized", |b| {
        b.iter(|| filter(&t, &pred).unwrap().num_rows());
    });
    group.bench_function("selection_only", |b| {
        b.iter(|| matching_rows(&t, &pred).unwrap().len());
    });
    group.bench_function("value_per_cell", |b| {
        b.iter(|| filter_row_reference(&t, &pred).num_rows());
    });
    group.bench_function("materialized_rows", |b| {
        b.iter(|| filter_materialized_rows(&t, &pred));
    });
    group.finish();
}

fn bench_table_encode(c: &mut Criterion) {
    let t = table();
    let enc = TableEncoder::fit(&t, &encoder_columns()).unwrap();
    let mut group = c.benchmark_group("table_encode_german_10k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("columnar", |b| {
        b.iter(|| enc.encode_table(&t).unwrap().rows());
    });
    group.bench_function("value_per_cell", |b| {
        b.iter(|| encode_row_reference(&enc, &t).rows());
    });
    group.finish();
}

fn bench_forest_predict(c: &mut Criterion) {
    let t = table();
    let enc = TableEncoder::fit(&t, &encoder_columns()).unwrap();
    let x = enc.encode_table(&t).unwrap();
    let y: Vec<f64> = (0..x.rows()).map(|i| x.get(i, 0)).collect();
    let forest = RandomForest::fit(
        &x,
        &y,
        &ForestParams {
            n_trees: 16,
            ..ForestParams::default()
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("forest_predict_german_10k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("batch", |b| {
        b.iter(|| forest.predict(&x).len());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(2));
    targets = bench_filter_scan, bench_table_encode, bench_forest_predict
}
criterion_main!(benches);
