//! Criterion microbenchmarks for the substrates: relational operators,
//! block decomposition, forest training, and the ILP solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyper_causal::BlockDecomposition;
use hyper_ip::{solve_ilp, Model, Sense};
use hyper_ml::{ForestParams, Matrix, RandomForest};
use hyper_storage::{col, AggExpr, AggFunc, LogicalPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_storage_ops(c: &mut Criterion) {
    let data = hyper_datasets::amazon(3_000, 9, 1);
    let plan = LogicalPlan::scan("product")
        .join(LogicalPlan::scan("review"), &["pid"], &["pid"])
        .aggregate(
            &["pid", "brand"],
            vec![AggExpr::new(AggFunc::Avg, Some(col("rating")), "rtng")],
        );
    c.bench_function("join_groupby_amazon_3k", |b| {
        b.iter(|| plan.execute(&data.db).unwrap());
    });
}

fn bench_block_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_decomposition");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for n in [1_000usize, 5_000, 20_000] {
        let data = hyper_datasets::student_syn(n, 5, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| BlockDecomposition::compute(&d.db, &d.graph).unwrap());
        });
    }
    group.finish();
}

fn bench_forest_training(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 10_000;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| r[0] * 2.0 + r[1] - r[2] + 0.1 * rng.gen::<f64>())
        .collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let mut group = c.benchmark_group("forest_fit_10k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for trees in [8usize, 16] {
        let params = ForestParams {
            n_trees: trees,
            ..ForestParams::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(trees), &params, |b, p| {
            b.iter(|| RandomForest::fit(&x, &y, p).unwrap());
        });
    }
    group.finish();
}

fn bench_ilp(c: &mut Criterion) {
    // The how-to IP shape: 10 attributes × 8 candidates with a budget.
    let mut model = Model::maximize();
    let mut rng = StdRng::seed_from_u64(4);
    let mut groups = Vec::new();
    for a in 0..10 {
        let vars: Vec<usize> = (0..8)
            .map(|j| model.add_binary(format!("d{a}_{j}"), rng.gen::<f64>()))
            .collect();
        model
            .add_constraint(
                format!("one_{a}"),
                vars.iter().map(|&v| (v, 1.0)).collect(),
                Sense::Le,
                1.0,
            )
            .unwrap();
        groups.push(vars);
    }
    model
        .add_constraint(
            "budget",
            groups.iter().flatten().map(|&v| (v, 1.0)).collect(),
            Sense::Le,
            3.0,
        )
        .unwrap();
    c.bench_function("ilp_howto_shape_80vars", |b| {
        b.iter(|| solve_ilp(&model).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets =
    bench_storage_ops,
    bench_block_decomposition,
    bench_forest_training,
    bench_ilp
}
criterion_main!(benches);
