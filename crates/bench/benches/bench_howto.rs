//! Criterion microbenchmarks for how-to optimization (Fig 9b / 11b
//! companions): IP vs exhaustive enumeration, and bucket-count scaling.

//!
//! Measures the *cold* single-shot path (free `evaluate_howto*` functions)
//! so every iteration pays candidate generation and estimator training, as
//! the paper's figures do. Session-cached how-to latency is covered by
//! `bench_session`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyper_core::howto::baseline::evaluate_howto_bruteforce;
use hyper_core::howto::optimizer::evaluate_howto;
use hyper_core::{EngineConfig, HowToOptions};

fn parse(text: &str) -> hyper_query::HowToQuery {
    match hyper_query::parse_query(text).unwrap() {
        hyper_query::HypotheticalQuery::HowTo(q) => q,
        _ => unreachable!(),
    }
}

fn bench_ip_vs_enumeration(c: &mut Criterion) {
    let data = hyper_datasets::german_syn(4_000, 1);
    let q = parse(
        "Use german_syn HowToUpdate status, housing
         ToMaximize Count(Post(credit) = 'Good')",
    );
    let config = EngineConfig::hyper();
    let opts = HowToOptions {
        buckets: 3,
        max_attrs_updated: None,
    };
    let mut group = c.benchmark_group("howto_4k_2attrs");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("ip", |b| {
        b.iter(|| evaluate_howto(&data.db, Some(&data.graph), &config, &q, &opts).unwrap())
    });
    group.bench_function("enumeration", |b| {
        b.iter(|| {
            evaluate_howto_bruteforce(&data.db, Some(&data.graph), &config, &q, &opts).unwrap()
        })
    });
    group.finish();
}

fn bench_bucket_scaling(c: &mut Criterion) {
    let data = hyper_datasets::german_syn_continuous(4_000, 2);
    let q = parse(
        "Use german_syn HowToUpdate credit_amount
         Limit 100 <= Post(credit_amount) <= 10000
         ToMaximize Count(Post(credit) = 'Good')",
    );
    let mut group = c.benchmark_group("howto_buckets");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let config = EngineConfig::hyper();
    for k in [2usize, 4, 8] {
        let opts = HowToOptions {
            buckets: k,
            max_attrs_updated: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(k), &opts, |b, o| {
            b.iter(|| evaluate_howto(&data.db, Some(&data.graph), &config, &q, o).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = bench_ip_vs_enumeration, bench_bucket_scaling
}
criterion_main!(benches);
