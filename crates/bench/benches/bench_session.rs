//! Criterion microbenchmarks for the session layer: what the artifact
//! cache buys on the German credit workload (German-Syn, 10k rows).
//!
//! * `whatif_cold_vs_prepared` — one what-if evaluated (a) cold through
//!   the single-shot path (view rebuilt + estimator retrained every time)
//!   vs (b) through a prepared query over a warm session cache.
//! * `sweep12_sequential_vs_batch` — a 12-query parameter sweep executed
//!   one-by-one vs fanned out by `execute_batch` (shared cache + worker
//!   threads), plus the steady-state re-execution over a warm cache.
//! * `sweep12_rebound_vs_text` — the same sweep as ONE parameterized
//!   prepared template rebound per value vs re-submitted query text
//!   (both warm: isolates the parse + prepare overhead the `Bindings`
//!   API removes).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use hyper_core::{evaluate_whatif, EngineConfig, HyperSession};
use hyper_query::{Bindings, HExpr, WhatIf, WhatIfQuery};

const QUERY: &str = "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')";

fn parse_whatif(text: &str) -> WhatIfQuery {
    match hyper_query::parse_query(text).unwrap() {
        hyper_query::HypotheticalQuery::WhatIf(q) => q,
        _ => unreachable!(),
    }
}

fn bench_cold_vs_prepared(c: &mut Criterion) {
    let data = hyper_datasets::german_syn(10_000, 1);
    let config = EngineConfig::hyper();
    let q = parse_whatif(QUERY);

    let mut group = c.benchmark_group("whatif_cold_vs_prepared_german_10k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("cold_single_shot", |b| {
        b.iter(|| evaluate_whatif(&data.db, Some(&data.graph), &config, &q).unwrap());
    });

    let session = HyperSession::builder(data.db.clone())
        .graph(data.graph.clone())
        .config(config.clone())
        .build();
    let prepared = session.prepare(QUERY).unwrap();
    prepared.execute().unwrap(); // warm the view + estimator caches
    group.bench_function("prepared_cached", |b| {
        b.iter(|| prepared.execute_whatif().unwrap());
    });
    group.finish();
}

/// A 12-query parameter sweep over one scenario: same `Use` clause,
/// different update attributes/values — the prepare-once/execute-many
/// workload the session API is built for.
fn sweep_queries() -> Vec<String> {
    let mut qs = Vec::new();
    for status in 1..=4 {
        qs.push(format!(
            "Use german_syn Update(status) = {status} Output Count(Post(credit) = 'Good')"
        ));
    }
    for savings in 1..=4 {
        qs.push(format!(
            "Use german_syn Update(savings) = {savings} Output Count(Post(credit) = 'Good')"
        ));
    }
    for housing in 0..=3 {
        qs.push(format!(
            "Use german_syn Update(housing) = {housing} Output Count(Post(credit) = 'Good')"
        ));
    }
    qs
}

fn bench_sequential_vs_batch(c: &mut Criterion) {
    let data = hyper_datasets::german_syn(10_000, 2);
    let queries = sweep_queries();

    let mut group = c.benchmark_group("sweep12_sequential_vs_batch_german_10k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    group.bench_function("sequential_fresh_session", |b| {
        b.iter(|| {
            let session = HyperSession::builder(data.db.clone())
                .graph(data.graph.clone())
                .build();
            for q in &queries {
                session.execute(q).unwrap();
            }
        });
    });
    group.bench_function("parallel_batch_fresh_session", |b| {
        b.iter(|| {
            let session = HyperSession::builder(data.db.clone())
                .graph(data.graph.clone())
                .build();
            for r in session.execute_batch(&queries) {
                r.unwrap();
            }
        });
    });
    // Steady state: the sweep re-executed over an already-warm cache.
    let warm = HyperSession::builder(data.db.clone())
        .graph(data.graph.clone())
        .build();
    warm.execute_batch(&queries);
    group.bench_function("parallel_batch_warm_cache", |b| {
        b.iter(|| {
            for r in warm.execute_batch(&queries) {
                r.unwrap();
            }
        });
    });
    group.finish();
}

/// The 12-value sweep of `sweep_queries`, but expressed as three typed
/// templates (one per attribute) with a `Param(level)` placeholder, over a
/// warm cache — vs the same scenario re-submitted as text per value.
fn bench_param_rebinding(c: &mut Criterion) {
    let data = hyper_datasets::german_syn(10_000, 4);
    let session = HyperSession::builder(data.db.clone())
        .graph(data.graph.clone())
        .build();

    let template = |attr: &str| {
        session
            .prepare(
                WhatIf::over("german_syn")
                    .set_param(attr, "level")
                    .output_count(HExpr::post("credit").eq("Good")),
            )
            .unwrap()
    };
    let sweep: Vec<(hyper_core::PreparedQuery, Vec<i64>)> = vec![
        (template("status"), (1..=4).collect()),
        (template("savings"), (1..=4).collect()),
        (template("housing"), (0..=3).collect()),
    ];
    let texts = sweep_queries();

    // Warm every estimator once so both variants measure steady state.
    for (prepared, levels) in &sweep {
        for &v in levels {
            prepared
                .execute_with(&Bindings::new().set("level", v))
                .unwrap();
        }
    }

    let mut group = c.benchmark_group("sweep12_rebound_vs_text_german_10k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("rebound_prepared_warm", |b| {
        b.iter(|| {
            for (prepared, levels) in &sweep {
                for &v in levels {
                    prepared
                        .execute_with(&Bindings::new().set("level", v))
                        .unwrap();
                }
            }
        });
    });
    group.bench_function("text_resubmitted_warm", |b| {
        b.iter(|| {
            for t in &texts {
                session.execute(t.as_str()).unwrap();
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets = bench_cold_vs_prepared, bench_sequential_vs_batch, bench_param_rebinding
}
criterion_main!(benches);
