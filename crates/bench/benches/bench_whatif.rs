//! Criterion microbenchmarks for what-if evaluation (Table 1 / Fig 12a
//! companions): per-variant latency on German-Syn, plus the deterministic
//! fast path.
//!
//! These measure the *cold* single-shot path (`evaluate_whatif`), where
//! every iteration rebuilds the view and retrains the estimator — the
//! quantity the paper's Table 1 reports. Cached/prepared-query latency is
//! measured separately in `bench_session`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyper_core::{evaluate_whatif, EngineConfig};
use hyper_query::WhatIfQuery;

fn parse_whatif(text: &str) -> WhatIfQuery {
    match hyper_query::parse_query(text).unwrap() {
        hyper_query::HypotheticalQuery::WhatIf(q) => q,
        _ => unreachable!(),
    }
}

fn bench_variants(c: &mut Criterion) {
    let data = hyper_datasets::german_syn(20_000, 1);
    let q = parse_whatif("Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')");
    let mut group = c.benchmark_group("whatif_variants_20k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for (name, config) in [
        ("hyper", EngineConfig::hyper()),
        ("hyper_nb", EngineConfig::hyper_nb()),
        ("hyper_sampled_5k", EngineConfig::hyper_sampled(5_000)),
        ("indep", EngineConfig::indep()),
    ] {
        let graph = match config.backdoor {
            hyper_core::BackdoorMode::FromGraph => Some(&data.graph),
            _ => None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            b.iter(|| evaluate_whatif(&data.db, graph, cfg, &q).unwrap());
        });
    }
    group.finish();
}

fn bench_dataset_sizes(c: &mut Criterion) {
    let q = parse_whatif("Use german_syn Update(savings) = 3 Output Count(Post(credit) = 'Good')");
    let config = EngineConfig::hyper();
    let mut group = c.benchmark_group("whatif_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for n in [5_000usize, 20_000, 50_000] {
        let data = hyper_datasets::german_syn(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| evaluate_whatif(&d.db, Some(&d.graph), &config, &q).unwrap());
        });
    }
    group.finish();
}

fn bench_deterministic_path(c: &mut Criterion) {
    let data = hyper_datasets::german_syn(20_000, 3);
    let q = parse_whatif("Use german_syn Update(status) = 3 Output Count(Post(status) = 3)");
    let config = EngineConfig::hyper();
    c.bench_function("whatif_deterministic_20k", |b| {
        b.iter(|| evaluate_whatif(&data.db, Some(&data.graph), &config, &q).unwrap());
    });
}

fn bench_view_construction(c: &mut Criterion) {
    let data = hyper_datasets::student_syn(5_000, 5, 4);
    let q = parse_whatif(
        "Use (Select S.sid, S.age, S.attendance, Avg(P.grade) As grade
          From student As S, participation As P
          Where S.sid = P.sid
          Group By S.sid, S.age, S.attendance)
         Update(attendance) = 90 Output Avg(Post(grade))",
    );
    c.bench_function("relevant_view_join_groupby_25k", |b| {
        b.iter(|| hyper_core::build_relevant_view(&data.db, &q.use_clause).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets =
    bench_variants,
    bench_dataset_sizes,
    bench_deterministic_path,
    bench_view_construction
}
criterion_main!(benches);
