//! Criterion microbenchmarks for what-if evaluation (Table 1 / Fig 12a
//! companions): per-variant latency on German-Syn, plus the deterministic
//! fast path.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyper_core::{EngineConfig, HyperEngine};

fn bench_variants(c: &mut Criterion) {
    let data = hyper_datasets::german_syn(20_000, 1);
    let query = "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')";
    let mut group = c.benchmark_group("whatif_variants_20k");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for (name, config) in [
        ("hyper", EngineConfig::hyper()),
        ("hyper_nb", EngineConfig::hyper_nb()),
        ("hyper_sampled_5k", EngineConfig::hyper_sampled(5_000)),
        ("indep", EngineConfig::indep()),
    ] {
        let engine = hyper_bench::engine_for(&data.db, &data.graph, &config);
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, e| {
            b.iter(|| e.whatif_text(query).unwrap());
        });
    }
    group.finish();
}

fn bench_dataset_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("whatif_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for n in [5_000usize, 20_000, 50_000] {
        let data = hyper_datasets::german_syn(n, 2);
        let engine = HyperEngine::new(&data.db, Some(&data.graph));
        group.bench_with_input(BenchmarkId::from_parameter(n), &engine, |b, e| {
            b.iter(|| {
                e.whatif_text(
                    "Use german_syn Update(savings) = 3 Output Count(Post(credit) = 'Good')",
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_deterministic_path(c: &mut Criterion) {
    let data = hyper_datasets::german_syn(20_000, 3);
    let engine = HyperEngine::new(&data.db, Some(&data.graph));
    c.bench_function("whatif_deterministic_20k", |b| {
        b.iter(|| {
            engine
                .whatif_text("Use german_syn Update(status) = 3 Output Count(Post(status) = 3)")
                .unwrap()
        });
    });
}

fn bench_view_construction(c: &mut Criterion) {
    let data = hyper_datasets::student_syn(5_000, 5, 4);
    let q = match hyper_query::parse_query(
        "Use (Select S.sid, S.age, S.attendance, Avg(P.grade) As grade
          From student As S, participation As P
          Where S.sid = P.sid
          Group By S.sid, S.age, S.attendance)
         Update(attendance) = 90 Output Avg(Post(grade))",
    )
    .unwrap()
    {
        hyper_query::HypotheticalQuery::WhatIf(q) => q,
        _ => unreachable!(),
    };
    c.bench_function("relevant_view_join_groupby_25k", |b| {
        b.iter(|| hyper_core::build_relevant_view(&data.db, &q.use_clause).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(3));
    targets =
    bench_variants,
    bench_dataset_sizes,
    bench_deterministic_path,
    bench_view_construction
}
criterion_main!(benches);
