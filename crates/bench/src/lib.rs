//! # hyper-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§5), printing the same rows/series the paper reports, plus
//! Criterion microbenchmarks. Binaries accept `--full` to run at the
//! paper's full scale (e.g. 1M-row German-Syn) and `--quick` for smoke
//! runs.
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table1`   | Table 1 — what-if runtime per dataset and variant |
//! | `fig6`     | Fig. 6 — HypeR-sampled quality and runtime vs sample size |
//! | `fig8`     | Fig. 8 — per-attribute min/max what-if output (German, Adult) |
//! | `fig9`     | Fig. 9 — how-to quality/runtime vs bucket count |
//! | `fig10`    | Fig. 10 — what-if output vs ground truth per variant |
//! | `fig11`    | Fig. 11 — runtime vs query complexity (For / HowToUpdate) |
//! | `fig12`    | Fig. 12 — runtime vs dataset size |
//! | `usecases` | §5.3 qualitative narratives |

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use hyper_causal::{CausalGraph, Scm};
use hyper_core::{EngineConfig, HyperSession};
use hyper_storage::{DataType, Database, Field, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Command-line scale flags shared by the experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Flags {
    /// Run at the paper's full scale (slow).
    pub full: bool,
    /// Smoke-test scale.
    pub quick: bool,
}

impl Flags {
    /// Parse from `std::env::args`.
    pub fn parse() -> Flags {
        let args: Vec<String> = std::env::args().collect();
        Flags {
            full: args.iter().any(|a| a == "--full"),
            quick: args.iter().any(|a| a == "--quick"),
        }
    }

    /// Pick a size by scale: `(quick, default, full)`.
    pub fn size(&self, quick: usize, default: usize, full: usize) -> usize {
        if self.full {
            full
        } else if self.quick {
            quick
        } else {
            default
        }
    }
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Time a closure `reps` times and return the mean duration.
pub fn time_avg<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..reps {
        let (_, d) = time(&mut f);
        total += d;
    }
    total / reps.max(1) as u32
}

/// Render a monospace table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a duration in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Ground truth for a `do(attr := value)` intervention on a flat SCM:
/// the post-update share of rows satisfying `pred` over `out_col`.
pub fn ground_truth_share(
    scm: &Scm,
    n: usize,
    seed: u64,
    attr: &str,
    value: Value,
    pred: impl Fn(&Value) -> bool,
    out_col: &str,
) -> f64 {
    let (_, post) = scm
        .sample_paired(
            "gt",
            n,
            seed,
            &[hyper_causal::Intervention::new(
                attr,
                hyper_causal::InterventionOp::Set(value),
            )],
            None,
        )
        .expect("valid intervention");
    let col = post.column_by_name(out_col).expect("column exists");
    col.iter().filter(|v| pred(v)).count() as f64 / col.len() as f64
}

/// Ground truth mean of `out_col` under a `do(attr := value)` intervention.
pub fn ground_truth_mean(
    scm: &Scm,
    n: usize,
    seed: u64,
    attr: &str,
    value: Value,
    out_col: &str,
) -> f64 {
    let (_, post) = scm
        .sample_paired(
            "gt",
            n,
            seed,
            &[hyper_causal::Intervention::new(
                attr,
                hyper_causal::InterventionOp::Set(value),
            )],
            None,
        )
        .expect("valid intervention");
    let col = post.column_by_name(out_col).expect("column exists");
    col.iter().map(|v| v.as_f64().unwrap_or(0.0)).sum::<f64>() / col.len() as f64
}

/// Append `k` independent noise attributes (`pad_0 … pad_{k-1}`) to a table
/// and register them as root nodes of the graph — used by the Fig-11 query
/// complexity sweeps, which vary attribute counts without changing the
/// causal story.
pub fn pad_with_noise(
    db: &mut Database,
    graph: &mut CausalGraph,
    table: &str,
    k: usize,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = db.table(table).expect("table exists").num_rows();
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(k);
    for _ in 0..k {
        columns.push((0..n).map(|_| Value::Int(rng.gen_range(0..4))).collect());
    }
    let t = db.table_mut(table).expect("table exists");
    for (i, col) in columns.into_iter().enumerate() {
        let name = format!("pad_{i}");
        t.add_column(Field::new(name.clone(), DataType::Int), col)
            .expect("fresh column");
        graph.node(table, &name);
    }
}

/// Shared `Value`-per-cell baselines for the storage microbenchmarks
/// (`benches/bench_storage.rs`) and the CI smoke run (`bin/bench_smoke.rs`)
/// — one definition so the criterion numbers and the CI speedup gate
/// always measure against the same reference loops.
pub mod storage_baseline {
    use hyper_ml::{Matrix, TableEncoder};
    use hyper_storage::{col, lit, Expr, Table};

    /// The benchmark predicate over German-Syn: string equality
    /// (dictionary fast path) plus integer comparisons.
    pub fn german_predicate() -> Expr {
        col("credit")
            .eq(lit("Good"))
            .and(col("status").ge(lit(2)))
            .or(col("savings").eq(lit(0)))
    }

    /// The feature columns both encode benchmarks fit over.
    pub fn encoder_columns() -> Vec<String> {
        ["status", "savings", "housing", "credit"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// The seed's `Value`-per-cell filter: bind once, evaluate the
    /// predicate row by row through the compatibility cell API, gather
    /// survivors.
    pub fn filter_row_reference(t: &Table, pred: &Expr) -> Table {
        let bound = pred.bind(t.schema()).unwrap();
        let mut keep = Vec::new();
        for i in 0..t.num_rows() {
            if bound.eval_predicate_at(t, i).unwrap() {
                keep.push(i);
            }
        }
        t.gather(&keep)
    }

    /// The seed's per-row encode loop: materialize each row's feature
    /// cells, encode, push into the matrix. (Deliberately exercises the
    /// deprecated cell API — it *is* the `Value`-per-cell baseline the
    /// speedup gates compare against.)
    #[allow(deprecated)]
    pub fn encode_row_reference(enc: &TableEncoder, t: &Table) -> Matrix {
        let idxs: Vec<usize> = enc
            .columns()
            .iter()
            .map(|c| t.schema().index_of(c).unwrap())
            .collect();
        let mut m = Matrix::zeros(0, 0);
        let mut buf = Vec::with_capacity(idxs.len());
        for i in 0..t.num_rows() {
            buf.clear();
            for &c in &idxs {
                buf.push(t.get(i, c));
            }
            m.push_row(&enc.encode_values(&buf).unwrap()).unwrap();
        }
        m
    }
}

/// The engine variants of §5 (HypeR-sampled is added per-experiment with
/// the experiment's sample cap).
pub fn variants() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("HypeR", EngineConfig::hyper()),
        ("HypeR-NB", EngineConfig::hyper_nb()),
        ("Indep", EngineConfig::indep()),
    ]
}

/// Build a session for a dataset + config (graph dropped for NB/Indep, as
/// in the paper's setup).
pub fn session_for(db: &Database, graph: &CausalGraph, config: &EngineConfig) -> HyperSession {
    let g = match config.backdoor {
        hyper_core::BackdoorMode::FromGraph => Some(graph.clone()),
        _ => None,
    };
    HyperSession::builder(db.clone())
        .maybe_graph(g)
        .config(config.clone())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_defaults() {
        let f = Flags {
            full: false,
            quick: false,
        };
        assert_eq!(f.size(1, 2, 3), 2);
        assert_eq!(
            Flags {
                full: true,
                quick: false
            }
            .size(1, 2, 3),
            3
        );
        assert_eq!(
            Flags {
                full: false,
                quick: true
            }
            .size(1, 2, 3),
            1
        );
    }

    #[test]
    fn pad_adds_columns_and_nodes() {
        let data = hyper_datasets::german_syn(100, 1);
        let mut db = data.db.clone();
        let mut graph = data.graph.clone();
        let before = db.table("german_syn").unwrap().num_columns();
        pad_with_noise(&mut db, &mut graph, "german_syn", 3, 7);
        assert_eq!(db.table("german_syn").unwrap().num_columns(), before + 3);
        assert!(graph.node_id("german_syn", "pad_2").is_ok());
    }

    #[test]
    fn ground_truth_helpers_run() {
        let data = hyper_datasets::german_syn_extended(100, 2);
        let scm = data.scm.unwrap();
        let share = ground_truth_share(
            &scm,
            2000,
            3,
            "status",
            Value::Int(3),
            |v| v.as_str() == Some("Good"),
            "credit",
        );
        assert!((0.0..=1.0).contains(&share));
        let mean = ground_truth_mean(&scm, 2000, 3, "status", Value::Int(3), "interest_rate");
        assert!(mean > 0.0);
    }
}
