//! **Figure 12**: running time vs dataset size on German-Syn, averaged over
//! several queries — (a) what-if: HypeR vs HypeR-sampled vs Indep,
//! (b) how-to: HypeR vs HypeR-sampled vs Opt-HowTo.
//!
//! ```sh
//! cargo run --release -p hyper-bench --bin fig12 [--quick|--full]
//! ```

use hyper_bench::{print_table, secs, time, Flags};
use hyper_core::{EngineConfig, HowToOptions};

const WHATIF_QUERIES: &[&str] = &[
    "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')",
    "Use german_syn Update(savings) = 3 Output Count(Post(credit) = 'Good')",
    "Use german_syn Update(housing) = 2 Output Count(Post(credit) = 'Good')",
    "Use german_syn When age = 2 Update(status) = 0 Output Count(Post(credit) = 'Bad')",
    "Use german_syn When sex = 1 Update(savings) = 0 Output Count(Post(credit) = 'Good')",
];

fn main() {
    let flags = Flags::parse();
    let sizes: Vec<usize> = if flags.quick {
        vec![5_000, 20_000]
    } else if flags.full {
        vec![10_000, 100_000, 250_000, 500_000, 1_000_000]
    } else {
        vec![10_000, 50_000, 100_000, 200_000]
    };
    let cap = 100_000;

    // -------- (a) what-if --------
    let mut rows = Vec::new();
    for &n in &sizes {
        let data = hyper_datasets::german_syn(n, 21);
        let mut cells = vec![n.to_string()];
        for (label, config) in [
            ("HypeR", EngineConfig::hyper()),
            ("HypeR-sampled", EngineConfig::hyper_sampled(cap)),
            ("Indep", EngineConfig::indep()),
        ] {
            // Cold single-shot path: each query pays its own view build +
            // training, as the figure's per-query times require.
            let graph = match config.backdoor {
                hyper_core::BackdoorMode::FromGraph => Some(&data.graph),
                _ => None,
            };
            let mut total = std::time::Duration::ZERO;
            for q in WHATIF_QUERIES {
                let parsed = match hyper_query::parse_query(q).unwrap() {
                    hyper_query::HypotheticalQuery::WhatIf(w) => w,
                    _ => unreachable!(),
                };
                let (_, d) = time(|| {
                    hyper_core::evaluate_whatif(&data.db, graph, &config, &parsed)
                        .expect("query evaluates")
                });
                total += d;
            }
            let _ = label;
            cells.push(secs(total / WHATIF_QUERIES.len() as u32));
        }
        rows.push(cells);
    }
    print_table(
        "Fig 12a: what-if time vs dataset size (avg of 5 queries)",
        &["rows", "HypeR", "HypeR-sampled", "Indep"],
        &rows,
    );
    println!("expected shape: HypeR and Indep grow ~linearly; HypeR-sampled");
    println!("flattens once rows exceed the 100k training cap.");

    // -------- (b) how-to --------
    let howto = "Use german_syn
                 HowToUpdate status, housing
                 ToMaximize Count(Post(credit) = 'Good')";
    let q = match hyper_query::parse_query(howto).unwrap() {
        hyper_query::HypotheticalQuery::HowTo(h) => h,
        _ => unreachable!(),
    };
    let opts = HowToOptions {
        buckets: 3,
        max_attrs_updated: None,
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        let data = hyper_datasets::german_syn(n, 22);
        let mut cells = vec![n.to_string()];
        for config in [EngineConfig::hyper(), EngineConfig::hyper_sampled(cap)] {
            let (_, d) = time(|| {
                hyper_core::howto::optimizer::evaluate_howto(
                    &data.db,
                    Some(&data.graph),
                    &config,
                    &q,
                    &opts,
                )
                .expect("how-to evaluates")
            });
            cells.push(secs(d));
        }
        // Opt-HowTo on the same (small) candidate space, also cold.
        let (_, d) = time(|| {
            hyper_core::howto::baseline::evaluate_howto_bruteforce(
                &data.db,
                Some(&data.graph),
                &EngineConfig::hyper(),
                &q,
                &opts,
            )
            .expect("enumerates")
        });
        cells.push(secs(d));
        rows.push(cells);
    }
    print_table(
        "Fig 12b: how-to time vs dataset size",
        &["rows", "HypeR", "HypeR-sampled", "Opt-HowTo"],
        &rows,
    );
    println!("expected shape: all grow with data size (what-if evaluations");
    println!("dominate); Opt-HowTo is a constant factor slower at fixed");
    println!("candidate count, and the sampled variant flattens past the cap.");
}
