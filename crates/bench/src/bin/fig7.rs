//! **Figure 7**: the two what-if query templates for the real-world use
//! cases — parsed, validated against the simulated datasets, rendered back,
//! and executed once each.
//!
//! ```sh
//! cargo run --release -p hyper-bench --bin fig7
//! ```

use hyper_core::HyperSession;
use hyper_query::parse_query;

fn main() {
    // Fig 7a (German): "What fraction of individuals will have good credit
    // if B is updated to b?"
    let german_template = "Use german
                           Update(status) = 3
                           Output Count(Post(credit) = 'Good')
                           For Pre(age) = 1";
    // Fig 7b (Adult): "How many individuals with attribute A = a will have
    // income ≥ 50K if B is updated to b?"
    let adult_template = "Use adult
                          Update(marital) = 'Married'
                          Output Count(*)
                          For Post(income) = '>50K' And Pre(sex) = 'Female'";

    println!("== Fig 7a: German what-if template ==");
    let q = parse_query(german_template).expect("template parses");
    println!("  parsed ✓  rendered: {q}");
    let german = hyper_datasets::german(1);
    let r = HyperSession::new(german.db.clone(), Some(&german.graph))
        .whatif_text(german_template)
        .expect("template evaluates");
    println!(
        "  executed ✓  {:.0} of {} scoped individuals have good credit",
        r.value, r.n_scope_rows
    );

    println!("\n== Fig 7b: Adult what-if template ==");
    let q = parse_query(adult_template).expect("template parses");
    println!("  parsed ✓  rendered: {q}");
    let adult = hyper_datasets::adult(8000, 2);
    let r = HyperSession::new(adult.db.clone(), Some(&adult.graph))
        .whatif_text(adult_template)
        .expect("template evaluates");
    println!(
        "  executed ✓  {:.0} of {} scoped individuals expected above 50K",
        r.value, r.n_scope_rows
    );
}
