//! **Figure 8**: what-if output when each attribute is set to its domain
//! minimum vs maximum — (a) German credit, (b) Adult income. A larger
//! min/max gap means higher attribute importance.
//!
//! ```sh
//! cargo run --release -p hyper-bench --bin fig8 [--quick]
//! ```

use hyper_bench::{print_table, Flags};
use hyper_core::HyperSession;
use hyper_storage::Value;

fn main() {
    let flags = Flags::parse();

    // ---------------- (a) German ----------------
    let german = hyper_datasets::german(1);
    let engine = HyperSession::new(german.db.clone(), Some(&german.graph));
    let n = german.total_rows() as f64;
    let mut rows = Vec::new();
    for (attr, min, max) in [
        ("status", 0, 3),
        ("credit_history", 0, 3),
        ("housing", 0, 2),
        ("investment", 0, 3),
    ] {
        let share = |v: i64| -> f64 {
            let q = format!(
                "Use german Update({attr}) = {v}
                 Output Count(Post(credit) = 'Good')"
            );
            engine.whatif_text(&q).expect("query evaluates").value / n
        };
        let lo = share(min);
        let hi = share(max);
        rows.push(vec![
            attr.to_string(),
            format!("{lo:.3}"),
            format!("{hi:.3}"),
            format!("{:+.3}", hi - lo),
        ]);
    }
    print_table(
        "Fig 8a: German — share with good credit when attribute set to min/max",
        &["attribute", "min", "max", "gap"],
        &rows,
    );
    println!("expected shape: status & credit_history gaps ≫ housing & investment.");

    // ---------------- (b) Adult ----------------
    let adult_n = flags.size(4_000, 32_000, 32_000);
    let adult = hyper_datasets::adult(adult_n, 2);
    let engine = HyperSession::new(adult.db.clone(), Some(&adult.graph));
    let n = adult.total_rows() as f64;
    let mut rows = Vec::new();

    // Attribute → (min value, max value) in effect order; categorical
    // attributes use their weakest/strongest levels.
    let cases: Vec<(&str, Value, Value)> = vec![
        (
            "marital",
            Value::str("Never-married"),
            Value::str("Married"),
        ),
        ("occupation", Value::Int(0), Value::Int(3)),
        ("education", Value::Int(0), Value::Int(3)),
        ("class", Value::str("Private"), Value::str("Self-emp")),
    ];
    for (attr, lo_v, hi_v) in cases {
        let share = |v: &Value| -> f64 {
            let rendered = match v {
                Value::Str(s) => format!("'{s}'"),
                other => other.to_string(),
            };
            let q = format!(
                "Use adult Update({attr}) = {rendered}
                 Output Count(Post(income) = '>50K')"
            );
            engine.whatif_text(&q).expect("query evaluates").value / n
        };
        let lo = share(&lo_v);
        let hi = share(&hi_v);
        rows.push(vec![
            attr.to_string(),
            format!("{lo:.3}"),
            format!("{hi:.3}"),
            format!("{:+.3}", hi - lo),
        ]);
    }
    print_table(
        "Fig 8b: Adult — share with income > 50K when attribute set to min/max",
        &["attribute", "min", "max", "gap"],
        &rows,
    );
    println!("expected shape: marital ≫ occupation ≈ education ≫ class;");
    println!("paper: do(Married) ≈ 38% high income, do(Never-married) < 9%.");
}
