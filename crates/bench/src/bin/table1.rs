//! **Table 1**: average runtime (seconds) of a Count what-if query per
//! dataset, for HypeR, HypeR-NB and Indep. The final German-Syn row also
//! reports HypeR(-NB)-sampled in parentheses, as in the paper.
//!
//! ```sh
//! cargo run --release -p hyper-bench --bin table1 [--quick|--full]
//! ```

use hyper_bench::{print_table, secs, time_avg, variants, Flags};
use hyper_core::EngineConfig;

fn main() {
    let flags = Flags::parse();
    let reps = if flags.quick { 1 } else { 2 };
    // (name, db, graph, count what-if query)
    struct Case {
        label: String,
        data: hyper_datasets::Dataset,
        query: String,
    }
    let big_n = flags.size(20_000, 200_000, 1_000_000);

    let adult_n = flags.size(4_000, 32_000, 32_000);
    let student_n = flags.size(1_000, 10_000, 10_000);
    let amazon_products = flags.size(500, 3_000, 3_000);

    let mut cases = [
        Case {
            label: format!("Adult [31] (15 att, {adult_n} rows)"),
            data: hyper_datasets::adult(adult_n, 1),
            query: "Use adult Update(marital) = 'Married'
                    Output Count(Post(income) = '>50K')"
                .into(),
        },
        Case {
            label: "German [20] (21 att, 1k rows)".into(),
            data: hyper_datasets::german(2),
            query: "Use german Update(status) = 3
                    Output Count(Post(credit) = 'Good')"
                .into(),
        },
        Case {
            label: format!("Amazon [27] (5,3 att, {amazon_products}k products)"),
            data: hyper_datasets::amazon(amazon_products, 9, 3),
            query: "Use (Select T1.pid, T1.category, T1.price, T1.brand, T1.quality,
                           Avg(T2.rating) As rtng
                    From product As T1, review As T2
                    Where T1.pid = T2.pid
                    Group By T1.pid, T1.category, T1.price, T1.brand, T1.quality)
                    When category = 'Laptop'
                    Update(price) = 0.8 * Pre(price)
                    Output Count(Post(rtng) > 4)"
                .into(),
        },
        Case {
            label: format!("Student-syn (3,6 att, {student_n}/{} rows)", student_n * 5),
            data: hyper_datasets::student_syn(student_n, 5, 4),
            query: "Use (Select S.sid, S.age, S.country, S.attendance,
                           Avg(P.assignment) As assignment, Avg(P.grade) As grade
                    From student As S, participation As P
                    Where S.sid = P.sid
                    Group By S.sid, S.age, S.country, S.attendance)
                    Update(attendance) = 90
                    Output Count(Post(grade) > 70)"
                .into(),
        },
        Case {
            label: "German-Syn (20k)".into(),
            data: hyper_datasets::german_syn(20_000, 5),
            query: "Use german_syn Update(status) = 3
                    Output Count(Post(credit) = 'Good')"
                .into(),
        },
        Case {
            label: format!("German-Syn ({})", human(big_n)),
            data: hyper_datasets::german_syn(big_n, 6),
            query: "Use german_syn Update(status) = 3
                    Output Count(Post(credit) = 'Good')"
                .into(),
        },
    ];

    let mut rows = Vec::new();
    let last = cases.len() - 1;
    for (ci, case) in cases.iter_mut().enumerate() {
        let mut cells = vec![case.label.clone(), case.data.total_rows().to_string()];
        let parsed = match hyper_query::parse_query(&case.query).unwrap() {
            hyper_query::HypotheticalQuery::WhatIf(w) => w,
            _ => unreachable!(),
        };
        // Cold single-shot path per repetition: Table 1 reports per-query
        // evaluation time, so repeated runs must not hit a session cache.
        let cold = |config: &EngineConfig| {
            let graph = match config.backdoor {
                hyper_core::BackdoorMode::FromGraph => Some(&case.data.graph),
                _ => None,
            };
            hyper_core::evaluate_whatif(&case.data.db, graph, config, &parsed)
                .expect("query evaluates")
        };
        for (vname, config) in variants() {
            let d = time_avg(reps, || cold(&config));
            let mut cell = secs(d);
            // The paper reports the sampled variant in (..) on the big row.
            if ci == last && vname != "Indep" {
                let sampled = EngineConfig {
                    sample_cap: Some(100_000),
                    ..config.clone()
                };
                let ds = time_avg(reps, || cold(&sampled));
                cell = format!("{cell} ({})", secs(ds));
            }
            cells.push(cell);
        }
        rows.push(cells);
    }

    print_table(
        "Table 1: avg runtime of a Count what-if per dataset",
        &["dataset", "rows", "HypeR", "HypeR-NB", "Indep"],
        &rows,
    );
    println!("\nexpected shape: Indep < HypeR < HypeR-NB on every dataset;");
    println!("sampled (…) times flat once rows exceed the 100k training cap.");
}

fn human(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n >= 1_000 {
        format!("{}k", n / 1_000)
    } else {
        n.to_string()
    }
}
