//! **Figure 11**: running time vs query complexity on Student-Syn —
//! (a) number of attributes in the `For` operator of a Count what-if,
//! (b) number of attributes in the `HowToUpdate` operator (HypeR IP vs
//! Opt-HowTo enumeration).
//!
//! ```sh
//! cargo run --release -p hyper-bench --bin fig11 [--quick]
//! ```

//! Times the *cold* single-shot evaluation path, as the paper's figures
//! do — a session cache would collapse the repeated runs into cache hits.

use hyper_bench::{pad_with_noise, print_table, secs, time_avg, Flags};
use hyper_core::howto::baseline::evaluate_howto_bruteforce;
use hyper_core::howto::optimizer::evaluate_howto;
use hyper_core::{evaluate_whatif, EngineConfig, HowToOptions};

fn main() {
    let flags = Flags::parse();
    let students = flags.size(1_000, 10_000, 10_000);
    let data = hyper_datasets::student_syn(students, 5, 11);

    // Pad the student relation with extra root attributes so the sweeps
    // have enough attributes to add.
    let mut db = data.db.clone();
    let mut graph = data.graph.clone();
    pad_with_noise(&mut db, &mut graph, "student", 10, 42);

    let view = "
        Use (Select S.sid, S.age, S.country, S.attendance,
                S.pad_0, S.pad_1, S.pad_2, S.pad_3, S.pad_4,
                S.pad_5, S.pad_6, S.pad_7, S.pad_8, S.pad_9,
                Avg(P.assignment) As assignment, Avg(P.grade) As grade
         From student As S, participation As P
         Where S.sid = P.sid
         Group By S.sid, S.age, S.country, S.attendance,
                S.pad_0, S.pad_1, S.pad_2, S.pad_3, S.pad_4,
                S.pad_5, S.pad_6, S.pad_7, S.pad_8, S.pad_9)";

    // -------- (a) what-if: attributes in For --------
    let reps = if flags.quick { 1 } else { 2 };
    let config = EngineConfig::hyper();
    let mut rows = Vec::new();
    for k in [0usize, 2, 5, 8, 10] {
        let mut conds: Vec<String> = (0..k).map(|i| format!("Pre(pad_{i}) >= 0")).collect();
        conds.insert(0, "Post(grade) > 60".into());
        let q = format!(
            "{view}
             Update(attendance) = 90
             Output Count(*)
             For {}",
            conds.join(" And ")
        );
        let parsed = match hyper_query::parse_query(&q).unwrap() {
            hyper_query::HypotheticalQuery::WhatIf(w) => w,
            _ => unreachable!(),
        };
        let d = time_avg(reps, || {
            evaluate_whatif(&db, Some(&graph), &config, &parsed).expect("query evaluates")
        });
        let r = evaluate_whatif(&db, Some(&graph), &config, &parsed).expect("query evaluates");
        rows.push(vec![
            k.to_string(),
            d.as_secs_f64().to_string()[..6.min(d.as_secs_f64().to_string().len())].to_string(),
            r.backdoor.len().to_string(),
        ]);
    }
    print_table(
        &format!("Fig 11a: what-if time vs #attributes in For ({students} students)"),
        &["For attrs", "time (s)", "regressor features"],
        &rows,
    );
    println!("expected shape: time grows with the For attribute count (each");
    println!("adds a conditioning feature to the regressor).");

    // -------- (b) how-to: attributes in HowToUpdate --------
    let attrs_pool: Vec<String> = (0..10).map(|i| format!("pad_{i}")).collect();
    let counts: &[usize] = if flags.quick {
        &[2, 4]
    } else {
        &[2, 4, 6, 8, 10]
    };
    let mut rows = Vec::new();
    for &k in counts {
        let attrs = attrs_pool[..k].join(", ");
        let q = format!(
            "{view}
             HowToUpdate {attrs}
             ToMaximize Avg(Post(grade))"
        );
        let parsed = match hyper_query::parse_query(&q).unwrap() {
            hyper_query::HypotheticalQuery::HowTo(h) => h,
            _ => unreachable!(),
        };
        let opts = HowToOptions {
            buckets: 3,
            max_attrs_updated: None,
        };
        let (ip, ip_d) = hyper_bench::time(|| {
            evaluate_howto(&db, Some(&graph), &config, &parsed, &opts).expect("IP solves")
        });
        // Opt-HowTo enumerates (buckets+1)^k combinations — cap the sweep
        // where it stays tractable, mirroring the paper's ">90 minutes for
        // 10 attributes" observation without burning the harness budget.
        let brute_cell = if (4usize).pow(k as u32) <= 300 || flags.full {
            let (b, d) = hyper_bench::time(|| {
                evaluate_howto_bruteforce(&db, Some(&graph), &config, &parsed, &opts)
                    .expect("enumerates")
            });
            format!("{} ({} evals)", secs(d), b.whatif_evals)
        } else {
            let evals = (4usize).pow(k as u32);
            format!("skipped (~{evals} evals)")
        };
        rows.push(vec![
            k.to_string(),
            format!("{} ({} evals)", secs(ip_d), ip.whatif_evals),
            brute_cell,
        ]);
    }
    print_table(
        "Fig 11b: how-to time vs #attributes in HowToUpdate",
        &["attrs", "HypeR (IP)", "Opt-HowTo (enumeration)"],
        &rows,
    );
    println!("expected shape: HypeR grows linearly in the candidate count;");
    println!("Opt-HowTo explodes exponentially (paper: 4 min at 5 attrs,");
    println!(">90 min at 10).");
}
