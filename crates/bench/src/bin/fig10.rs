//! **Figure 10**: what-if output vs structural-equation ground truth for
//! every engine variant — (a) German-Syn, (b) Student-Syn — plus the §5.4
//! how-to quality checks (HypeR vs Opt-HowTo; budget-1 Student-Syn picks
//! attendance).
//!
//! ```sh
//! cargo run --release -p hyper-bench --bin fig10 [--quick|--full]
//! ```

use hyper_bench::{ground_truth_mean, ground_truth_share, print_table, session_for, Flags};
use hyper_core::{EngineConfig, HowToOptions, HyperSession};
use hyper_storage::Value;

fn main() {
    let flags = Flags::parse();

    // ---------------- (a) German-Syn ----------------
    let n = flags.size(10_000, 100_000, 1_000_000);
    let data = hyper_datasets::german_syn(n, 3);
    let scm = data.scm.as_ref().unwrap();
    let gt_n = flags.size(20_000, 100_000, 200_000);

    let mut rows = Vec::new();
    for (attr, max) in [
        ("status", 3),
        ("savings", 3),
        ("housing", 2),
        ("credit_amount", 3),
    ] {
        let truth = ground_truth_share(
            scm,
            gt_n,
            97,
            attr,
            Value::Int(max),
            |v| v.as_str() == Some("Good"),
            "credit",
        );
        let query = format!(
            "Use german_syn Update({attr}) = {max}
             Output Count(Post(credit) = 'Good')"
        );
        let mut cells = vec![attr.to_string(), format!("{truth:.3}")];
        let mut configs = hyper_bench::variants();
        configs.insert(1, ("HypeR-sampled", EngineConfig::hyper_sampled(50_000)));
        for (_, config) in configs {
            let engine = session_for(&data.db, &data.graph, &config);
            let r = engine.whatif_text(&query).expect("query evaluates");
            cells.push(format!("{:.3}", r.value / r.n_view_rows as f64));
        }
        rows.push(cells);
    }
    print_table(
        &format!("Fig 10a: German-Syn ({n}) — share good credit after do(attr := max)"),
        &[
            "attribute",
            "GroundTruth",
            "HypeR",
            "HypeR-sampled",
            "HypeR-NB",
            "Indep",
        ],
        &rows,
    );
    println!("expected shape: HypeR/sampled/NB within ~5% of ground truth;");
    println!("Indep inflated by the age/sex confounding (most visibly on status).");

    // ---------------- (b) Student-Syn ----------------
    let students = flags.size(1_000, 10_000, 10_000);
    let sdata = hyper_datasets::student_syn(students, 5, 4);
    let sscm = sdata.scm.as_ref().unwrap();
    let view = "
        Use (Select S.sid, S.age, S.country, S.attendance,
                Avg(P.discussion) As discussion,
                Avg(P.announcements) As announcements,
                Avg(P.hand_raised) As hand_raised,
                Avg(P.assignment) As assignment,
                Avg(P.grade) As grade
         From student As S, participation As P
         Where S.sid = P.sid
         Group By S.sid, S.age, S.country, S.attendance)";
    let mut rows = Vec::new();
    for attr in [
        "assignment",
        "attendance",
        "announcements",
        "hand_raised",
        "discussion",
    ] {
        let truth = ground_truth_mean(sscm, gt_n, 98, attr, Value::Float(95.0), "grade");
        let query = format!(
            "{view}
             Update({attr}) = 95
             Output Avg(Post(grade))"
        );
        let mut cells = vec![attr.to_string(), format!("{truth:.2}")];
        for (_, config) in hyper_bench::variants() {
            let engine = session_for(&sdata.db, &sdata.graph, &config);
            let r = engine.whatif_text(&query).expect("query evaluates");
            cells.push(format!("{:.2}", r.value));
        }
        rows.push(cells);
    }
    print_table(
        &format!("Fig 10b: Student-Syn ({students} students) — avg grade after do(attr := 95)"),
        &["attribute", "GroundTruth", "HypeR", "HypeR-NB", "Indep"],
        &rows,
    );
    println!("expected shape: HypeR/NB track ground truth (forest extrapolation");
    println!("is conservative above the observed range); Indep noisier.");

    // ---------------- §5.4 how-to quality ----------------
    let hdata = hyper_datasets::german_syn(flags.size(4_000, 20_000, 20_000), 5);
    let engine =
        HyperSession::new(hdata.db.clone(), Some(&hdata.graph)).with_howto_options(HowToOptions {
            buckets: 4,
            max_attrs_updated: Some(2),
        });
    let howto = "Use german_syn
                 HowToUpdate status, savings, housing, credit_amount
                 ToMaximize Count(Post(credit) = 'Good')";
    let ip = engine.howto_text(howto).expect("how-to evaluates");
    let q = match hyper_query::parse_query(howto).unwrap() {
        hyper_query::HypotheticalQuery::HowTo(q) => q,
        _ => unreachable!(),
    };
    let brute = engine.howto_bruteforce(&q).expect("brute force evaluates");
    println!("\n== §5.4: German-Syn how-to (maximize good credit, ≤2 attrs) ==");
    println!(
        "  HypeR (IP):      {}  → objective {:.0}",
        ip.render(&[
            "status".into(),
            "savings".into(),
            "housing".into(),
            "credit_amount".into()
        ]),
        ip.objective
    );
    println!(
        "  Opt-HowTo:       objective {:.0}  (match: {})",
        brute.objective,
        if (ip.objective - brute.objective).abs() < 1e-6 {
            "exact"
        } else {
            "≈"
        }
    );

    // Student-Syn budget-1 how-to: attendance should win.
    let sengine =
        HyperSession::new(sdata.db.clone(), Some(&sdata.graph)).with_howto_options(HowToOptions {
            buckets: 4,
            max_attrs_updated: Some(1),
        });
    let showto = format!(
        "{view}
         HowToUpdate attendance, assignment, discussion, announcements
         ToMaximize Avg(Post(grade))"
    );
    let s = sengine.howto_text(&showto).expect("how-to evaluates");
    println!("\n== §5.4: Student-Syn how-to (maximize avg grade, budget 1) ==");
    println!(
        "  chosen: {}  → avg grade {:.2} (baseline {:.2})",
        s.render(&[
            "attendance".into(),
            "assignment".into(),
            "discussion".into(),
            "announcements".into()
        ]),
        s.objective,
        s.baseline
    );
    println!("  paper expectation: attendance provides the maximum benefit.");
}
