//! **§5.3 qualitative use cases**: the narrative findings on the three
//! simulated real-world datasets.
//!
//! * German: status/credit-history dominate credit; updating both together
//!   is stronger than either alone.
//! * Adult: marital status dominates income (38% vs <9%).
//! * Amazon: cheaper laptops rate higher; Apple reacts most to price cuts.
//!
//! ```sh
//! cargo run --release -p hyper-bench --bin usecases [--quick]
//! ```

use hyper_bench::{print_table, Flags};
use hyper_core::HyperSession;
use hyper_storage::ColumnStats;

fn main() {
    let flags = Flags::parse();

    // ---------------- German ----------------
    let german = hyper_datasets::german(1);
    let engine = HyperSession::new(german.db.clone(), Some(&german.graph));
    let n = german.total_rows() as f64;
    let share = |q: &str| engine.whatif_text(q).expect("query evaluates").value / n;

    let hi_status = share("Use german Update(status) = 3 Output Count(Post(credit) = 'Good')");
    let hi_history =
        share("Use german Update(credit_history) = 3 Output Count(Post(credit) = 'Good')");
    let lo_status = share("Use german Update(status) = 0 Output Count(Post(credit) = 'Good')");
    let both = share(
        "Use german Update(status) = 3 And Update(credit_history) = 3
         Output Count(Post(credit) = 'Good')",
    );
    println!("== German (§5.3) ==");
    println!("  share good credit after do(status = max):          {hi_status:.2}");
    println!("  share good credit after do(credit_history = max):  {hi_history:.2}");
    println!("  share good credit after do(status = min):          {lo_status:.2}");
    println!("  do(status = max AND credit_history = max):         {both:.2}");
    println!("  paper: max-status/history → >81% good; pairs affect >70%.");

    // ---------------- Adult ----------------
    let adult = hyper_datasets::adult(flags.size(4_000, 32_000, 32_000), 2);
    let engine = HyperSession::new(adult.db.clone(), Some(&adult.graph));
    let n = adult.total_rows() as f64;
    let share = |q: &str| engine.whatif_text(q).expect("query evaluates").value / n;
    let married =
        share("Use adult Update(marital) = 'Married' Output Count(Post(income) = '>50K')");
    let never =
        share("Use adult Update(marital) = 'Never-married' Output Count(Post(income) = '>50K')");
    println!("\n== Adult (§5.3) ==");
    println!("  share >50K if everyone married:   {married:.2}  (paper: ≈ 0.38)");
    println!("  share >50K if everyone unmarried: {never:.2}  (paper: < 0.09)");

    // ---------------- Amazon ----------------
    let amazon = hyper_datasets::amazon(flags.size(600, 2_000, 3_000), 9, 7);
    let engine = HyperSession::new(amazon.db.clone(), Some(&amazon.graph));
    let laptops = hyper_storage::ops::filter::filter(
        amazon.db.table("product").expect("table exists"),
        &hyper_storage::col("category").eq(hyper_storage::lit("Laptop")),
    )
    .expect("filter evaluates");
    let stats = ColumnStats::compute(&laptops, "price").expect("stats compute");
    let view = "
        Use (Select T1.pid, T1.category, T1.price, T1.brand, T1.quality,
                Avg(T2.rating) As rtng
         From product As T1, review As T2
         Where T1.pid = T2.pid And T1.category = 'Laptop'
         Group By T1.pid, T1.category, T1.price, T1.brand, T1.quality)";
    let mut rows = Vec::new();
    for pct in [80.0, 60.0, 40.0] {
        let price = stats.percentile(pct).expect("numeric percentiles");
        let q = format!(
            "{view}
             Update(price) = {price}
             Output Count(Post(rtng) > 4)"
        );
        let r = engine.whatif_text(&q).expect("query evaluates");
        rows.push(vec![
            format!("{pct}th"),
            format!("{price:.0}"),
            format!("{:.1}%", 100.0 * r.value / r.n_scope_rows as f64),
        ]);
    }
    print_table(
        "Amazon (§5.3): laptops with expected avg rating > 4 at price levels",
        &["percentile", "price", "share > 4"],
        &rows,
    );
    println!("  paper: ~32% at the 80th percentile, >60% at the 60th/40th.");
}
