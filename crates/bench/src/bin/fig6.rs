//! **Figure 6**: effect of the HypeR-sampled sample size on (a) query
//! output stability and (b) running time, on German-Syn.
//!
//! ```sh
//! cargo run --release -p hyper-bench --bin fig6 [--quick|--full]
//! ```

use hyper_bench::{print_table, secs, time, Flags};
use hyper_core::{EngineConfig, HyperSession};

fn main() {
    let flags = Flags::parse();
    let n = flags.size(50_000, 200_000, 1_000_000);
    let data = hyper_datasets::german_syn(n, 7);
    let query = "Use german_syn Update(status) = 3
                 Output Count(Post(credit) = 'Good')";

    // (a) Solution quality: output (as a share) per sample size, across
    // seeds → mean ± std. The paper finds std within 1% of the mean at
    // ≥100k samples.
    let sample_sizes: &[usize] = if flags.quick {
        &[1_000, 10_000, 50_000]
    } else {
        &[1_000, 10_000, 50_000, 100_000, 200_000]
    };
    let seeds: &[u64] = if flags.quick {
        &[1, 2, 3]
    } else {
        &[1, 2, 3, 4, 5]
    };

    let full_engine = HyperSession::new(data.db.clone(), Some(&data.graph));
    let (full, full_time) = time(|| full_engine.whatif_text(query).unwrap());
    let full_share = full.value / full.n_view_rows as f64;

    let mut rows = Vec::new();
    let mut time_rows = Vec::new();
    for &cap in sample_sizes {
        if cap >= n {
            continue;
        }
        let mut outputs = Vec::new();
        let mut elapsed = std::time::Duration::ZERO;
        for &seed in seeds {
            let config = EngineConfig {
                seed,
                ..EngineConfig::hyper_sampled(cap)
            };
            let engine = HyperSession::new(data.db.clone(), Some(&data.graph)).with_config(config);
            let (r, d) = time(|| engine.whatif_text(query).unwrap());
            outputs.push(r.value / r.n_view_rows as f64);
            elapsed += d;
        }
        let mean = outputs.iter().sum::<f64>() / outputs.len() as f64;
        let var =
            outputs.iter().map(|o| (o - mean) * (o - mean)).sum::<f64>() / outputs.len() as f64;
        let std = var.sqrt();
        rows.push(vec![
            cap.to_string(),
            format!("{mean:.4}"),
            format!("{std:.4}"),
            format!("{:.2}%", 100.0 * std / mean),
        ]);
        time_rows.push(vec![cap.to_string(), secs(elapsed / seeds.len() as u32)]);
    }
    print_table(
        &format!("Fig 6a: HypeR-sampled output vs sample size (n = {n})"),
        &["sample", "mean share", "std", "std/mean"],
        &rows,
    );
    println!(
        "  full HypeR reference: share {:.4} in {}",
        full_share,
        secs(full_time)
    );

    print_table(
        "Fig 6b: running time vs sample size",
        &["sample", "avg time"],
        &time_rows,
    );
    println!("  full (no sampling): {}", secs(full_time));
    println!("\nexpected shape: std shrinks with sample size (within ~1% of the");
    println!("mean by 100k); time grows ~linearly with the training sample.");
}
