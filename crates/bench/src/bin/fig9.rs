//! **Figure 9**: effect of discretization (bucket count) on how-to solution
//! quality and runtime, on the continuous German-Syn variant. Compares
//! HypeR's IP against Opt-discrete (exhaustive enumeration at the same
//! bucketization), with quality as a ratio to the best solution found on a
//! fine reference grid (Opt-HowTo stand-in).
//!
//! ```sh
//! cargo run --release -p hyper-bench --bin fig9 [--quick]
//! ```

use hyper_bench::{ground_truth_share, print_table, secs, time, Flags};
use hyper_core::HowToOptions;
use hyper_storage::Value;

fn main() {
    let flags = Flags::parse();
    let n = flags.size(4_000, 20_000, 20_000);
    let data = hyper_datasets::german_syn_continuous(n, 9);
    let scm = data.scm.as_ref().unwrap();
    let gt_n = flags.size(20_000, 50_000, 50_000);

    let howto = "Use german_syn
                 HowToUpdate credit_amount
                 Limit 100 <= Post(credit_amount) <= 10000
                 ToMaximize Count(Post(credit) = 'Good')";
    let q = match hyper_query::parse_query(howto).unwrap() {
        hyper_query::HypotheticalQuery::HowTo(q) => q,
        _ => unreachable!(),
    };

    // Ground-truth objective for a candidate amount, via the structural
    // equations; the reference optimum scans a fine grid (the paper's
    // continuous Opt-HowTo).
    let truth_of = |amount: f64| -> f64 {
        ground_truth_share(
            scm,
            gt_n,
            1234,
            "credit_amount",
            Value::Float(amount),
            |v| v.as_str() == Some("Good"),
            "credit",
        )
    };
    let fine_grid: Vec<f64> = (0..64)
        .map(|i| 100.0 + (10_000.0 - 100.0) * (i as f64 + 0.5) / 64.0)
        .collect();
    let opt_truth = fine_grid
        .iter()
        .map(|&a| truth_of(a))
        .fold(f64::MIN, f64::max);
    println!("reference Opt-HowTo (fine grid ground truth): {opt_truth:.4}");

    let buckets: &[usize] = if flags.quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 6, 8, 10]
    };
    let mut rows = Vec::new();
    for &k in buckets {
        // Time each solver cold (no shared session cache): the figure
        // compares IP vs enumeration runtime, so the second solver must
        // not inherit the first one's fitted candidate estimators.
        let config = hyper_core::EngineConfig::hyper();
        let opts = HowToOptions {
            buckets: k,
            max_attrs_updated: None,
        };
        let (ip, ip_time) = time(|| {
            hyper_core::howto::optimizer::evaluate_howto(
                &data.db,
                Some(&data.graph),
                &config,
                &q,
                &opts,
            )
            .expect("how-to evaluates")
        });
        let (brute, brute_time) = time(|| {
            hyper_core::howto::baseline::evaluate_howto_bruteforce(
                &data.db,
                Some(&data.graph),
                &config,
                &q,
                &opts,
            )
            .expect("brute force evaluates")
        });

        // Quality: evaluate the *chosen* update under the true structural
        // equations, as a ratio to the fine-grid optimum.
        let quality = |r: &hyper_core::HowToResult| -> f64 {
            let amount = r.chosen.first().and_then(|u| match &u.func {
                hyper_query::UpdateFunc::Set(v) => v.as_f64(),
                _ => None,
            });
            match amount {
                Some(a) => truth_of(a) / opt_truth,
                None => {
                    // No change chosen: baseline share.
                    let t = data.db.table("german_syn").unwrap();
                    let good = t
                        .column_by_name("credit")
                        .unwrap()
                        .iter()
                        .filter(|v| v.as_str() == Some("Good"))
                        .count() as f64;
                    (good / t.num_rows() as f64) / opt_truth
                }
            }
        };
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", quality(&ip)),
            format!("{:.3}", quality(&brute)),
            secs(ip_time),
            secs(brute_time),
        ]);
    }
    print_table(
        &format!("Fig 9: how-to vs bucket count (German-Syn-continuous, {n} rows)"),
        &[
            "buckets",
            "HypeR quality",
            "Opt-discrete quality",
            "HypeR time",
            "Opt-discrete time",
        ],
        &rows,
    );
    println!("\nexpected shape: quality climbs toward 1.0 with more buckets");
    println!("(within 10% of optimal at ≥4 buckets); Opt-discrete time grows");
    println!("much faster than HypeR's (exponential vs linear in buckets for");
    println!("multi-attribute problems; here the eval-count gap).");
}
