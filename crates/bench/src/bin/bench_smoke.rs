//! Reduced-iteration benchmark smoke run: times the storage-layer
//! microbenchmarks (filter scan, table encode, forest train/predict —
//! vectorized vs `Value`-per-cell) and the session-layer cold vs prepared
//! what-if on German-Syn 10k, then scales the same data path to
//! German-Syn **1M** (`HYPER_BENCH_ROWS` overrides the big-row count for
//! CI time budgets) and writes a machine-readable throughput summary.
//!
//! Used by the CI `bench-smoke` job to track the perf trajectory: each
//! run produces a `BENCH_10.json` artifact (override the path with
//! `--out <path>` or the `BENCH_OUT` environment variable). Iteration
//! counts are deliberately small — this guards against order-of-magnitude
//! regressions, not microsecond drift. Gates enforced: the ≥3×
//! vectorization speedups over the `Value`-per-cell baselines (PR 3), the
//! ≥2× cold-what-if speedup over the PR-3 sequential-sort-training
//! measurement (28.9 ms) delivered by parallel histogram/cell-based
//! forest training (PR 4), the ≥3× warm-start speedup of a simulated
//! process restart recovering its artifacts from a populated persist
//! directory instead of retraining (PR 5), the hyper-serve HTTP
//! throughput floor — ≥100 queries/sec sustained over 8 persistent
//! connections with zero shed requests (PR 6) — the ≥3× speedup of
//! a block-scoped delta refresh over a from-scratch rebuild after a 1%
//! append, with the untouched-block what-if required to be a pure cache
//! hit (PR 7) — and the PR-8 scaling gates: the big-row cold what-if
//! must stay within 1.5× linear scaling of the 10k cold what-if (≤150×
//! at the full 1M), the morsel-parallel filter must beat the sequential
//! scan ≥1.5× when the global runtime has ≥2 workers (auto-skipped on
//! 1-core runners, where the parity property tests still cover
//! correctness), and the big table must scan correctly through the
//! `hyper-store` paging tier under a resident-byte budget far smaller
//! than the table. Serve entries report `p50_us`/`p99_us` tail latency
//! alongside throughput, at both 10k and the big-row scale point.
//!
//! PR-9 additions: `forest_train_german_1m` trains a forest over the
//! **out-of-core** table through the streaming two-pass layout under a
//! paging budget of 1/8 the spilled bytes — asserted bit-identical to
//! the resident trainer with peak resident bytes under the dense
//! encoded matrix — and the morsel-parallel fit is gated ≥2× over the
//! single-threaded resident fit when the pool has ≥2 workers
//! (auto-skipped on 1-core runners). On those 1-core runners the
//! morsel-parallel filter is instead asserted to cost ≤1.05× the
//! sequential scan (the zero-worker fast path must not allocate morsel
//! state it cannot use).
//!
//! PR-10 additions (observability): the prepared what-if is re-timed
//! with phase tracing enabled — asserted bit-identical to the untraced
//! value and gated ≤1.05× its cost (interleaved best-of-3 on both
//! sides) — the disabled path is gated within 1.05× of the committed
//! `BENCH_9.json` prepared entry when that file is present, the serve
//! run scrapes `GET /metrics` and fails on malformed Prometheus
//! exposition or missing latency/phase series, and the summary gains a
//! `phases` object exporting per-phase self time per traced query.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use hyper_bench::storage_baseline::{
    encode_row_reference, encoder_columns, filter_row_reference, german_predicate,
};
use hyper_bench::time_avg;
use hyper_core::{evaluate_whatif, EngineConfig, HyperSession, SharedArtifactStore};
use hyper_ingest::DeltaBatch;
use hyper_ml::{ForestParams, Matrix, RandomForest, RegressionTree, TableEncoder, TreeParams};
use hyper_runtime::HyperRuntime;
use hyper_storage::ops::{filter, matching_rows_on};
use hyper_storage::{TableBuilder, Value, DEFAULT_MORSEL_ROWS};
// The one shared, properly interpolating percentile implementation
// (nearest-rank on 50 samples used to read essentially the max for p99;
// the interpolated estimator does not).
use hyper_trace::percentile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The PR-3 training path, kept alive as a hardware-independent baseline:
/// sequential trees, per-node sort-based split search over raw features,
/// one shared RNG stream. The histogram/cell trainer is gated against
/// this live measurement in addition to the absolute PR-3 cold-what-if
/// constant below.
fn forest_train_row_reference(x: &Matrix, y: &[f64], n_trees: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(0);
    let mut tree_params = TreeParams::default();
    if tree_params.max_features.is_none() && x.cols() > 3 {
        tree_params.max_features = Some((x.cols() as f64).sqrt().ceil() as usize);
    }
    let n = x.rows();
    let mut nodes = 0usize;
    for _ in 0..n_trees {
        let idx: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n) as u32).collect();
        nodes += RegressionTree::fit_indices(x, y, idx, &tree_params, &mut rng)
            .unwrap()
            .num_nodes();
    }
    nodes
}

const N: usize = 10_000;

/// Cold what-if on German-Syn 10k as measured at the PR-3 head on the
/// reference container (sequential per-node-sort forest training
/// dominating); the histogram/cell refactor must hold ≥2× against it.
const PR3_COLD_WHATIF_US: f64 = 28_900.0;

struct Entry {
    name: &'static str,
    micros: f64,
    baseline_micros: Option<f64>,
    /// Extra per-entry JSON fields (e.g. `p50_us`/`p99_us` tail latency
    /// on the serve entries).
    extra: Vec<(&'static str, f64)>,
}

impl Entry {
    fn new(name: &'static str, micros: f64, baseline_micros: Option<f64>) -> Self {
        Entry {
            name,
            micros,
            baseline_micros,
            extra: Vec::new(),
        }
    }
}

fn secs_to_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// One steady-state serving window against a fresh snapshot registry:
/// snapshot the scenario, start a server, warm the tenant (snapshot
/// load and estimator training happen here, outside the measured
/// window), then drive `connections` persistent clients for
/// `requests_per_conn` pipelined what-ifs each, recording
/// client-observed per-request latency.
struct ServeRun {
    qps: f64,
    shed: u64,
    /// Wall-clock per completed request (`elapsed / total`) — the
    /// throughput-derived figure the PR-6/PR-7 history tracked.
    mean_us: f64,
    /// Client-observed request latency percentiles: each in-flight
    /// request is timed from write to response on its own connection,
    /// so with `c` connections p50 ≈ `c × mean_us` under fair service.
    p50_us: f64,
    p99_us: f64,
}

fn serve_run(
    db: &hyper_storage::Database,
    graph: &hyper_causal::CausalGraph,
    tag: &str,
    query_text: &str,
    connections: usize,
    requests_per_conn: usize,
) -> ServeRun {
    let registry =
        std::env::temp_dir().join(format!("hyper_bench_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&registry).ok();
    std::fs::create_dir_all(&registry).unwrap();
    hyper_store::Snapshot::new(db.clone(), Some(graph.clone()))
        .save(registry.join("t0.hypr"))
        .unwrap();
    let server = hyper_serve::Server::start(
        &registry,
        hyper_serve::ServeConfig {
            workers: 2,
            queue_depth: 64,
            ..hyper_serve::ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    // One warm request loads the snapshot and trains the estimator so the
    // measured window is steady-state serving, not cold setup.
    let mut warm = hyper_serve::Client::connect(addr).unwrap();
    let warm_response = warm.query("/query", "t0", query_text, &[]).unwrap();
    assert_eq!(warm_response.status, 200, "warmup must succeed");

    let serve_start = std::time::Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = hyper_serve::Client::connect(addr).unwrap();
                    let mut lat = Vec::with_capacity(requests_per_conn);
                    for _ in 0..requests_per_conn {
                        let t0 = std::time::Instant::now();
                        let response = client.query("/query", "t0", query_text, &[]).unwrap();
                        assert_eq!(response.status, 200, "steady-state request failed");
                        lat.push(secs_to_us(t0.elapsed()));
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("serve client thread"))
            .collect()
    });
    let serve_elapsed = serve_start.elapsed();
    let total_requests = (connections * requests_per_conn) as f64;
    let shed = server.stats().total(|c| &c.shed);
    // Scrape `/metrics` while the server is still up: the exposition
    // must validate (every sample typed, every value parseable) and the
    // per-tenant latency quantiles this load generated must be present.
    // A malformed line or a missing series fails the bench — and with
    // it the CI bench-smoke job.
    let metrics = warm.request("GET", "/metrics", None).unwrap();
    assert_eq!(metrics.status, 200, "/metrics must answer inline");
    let text = metrics.text().expect("/metrics body is UTF-8");
    hyper_serve::metrics::validate(text)
        .unwrap_or_else(|e| panic!("malformed /metrics exposition: {e}"));
    for series in [
        "hyper_serve_latency_seconds{tenant=\"t0\",route=\"query\",stage=\"queue_wait\",quantile=\"0.5\"}",
        "hyper_serve_latency_seconds{tenant=\"t0\",route=\"query\",stage=\"queue_wait\",quantile=\"0.99\"}",
        "hyper_serve_latency_seconds{tenant=\"t0\",route=\"query\",stage=\"execute\",quantile=\"0.5\"}",
        "hyper_serve_latency_seconds{tenant=\"t0\",route=\"query\",stage=\"execute\",quantile=\"0.99\"}",
        "hyper_session_traced_queries_total{tenant=\"t0\"}",
        "hyper_serve_uptime_seconds",
        // At least one per-phase series must be exported. Which phases
        // fire depends on cache state — earlier bench sections already
        // trained this estimator through the process-wide artifact
        // store, so ForestTrain may legitimately be absent here (the
        // cold-process serve integration test pins that one exactly).
        "hyper_session_phase_seconds_total{tenant=\"t0\",phase=\"",
    ] {
        assert!(
            text.contains(series),
            "/metrics is missing required series {series}"
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&registry).ok();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ServeRun {
        qps: total_requests / serve_elapsed.as_secs_f64(),
        shed,
        mean_us: secs_to_us(serve_elapsed) / total_requests,
        p50_us: percentile(&latencies_us, 50.0),
        p99_us: percentile(&latencies_us, 99.0),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    let reps: usize = std::env::var("BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    // The big-row scale point. Defaults to the full 1M; CI sets
    // HYPER_BENCH_ROWS to a smaller count to stay inside its time budget
    // (the scaling gate below adjusts proportionally).
    let big_rows: usize = std::env::var("HYPER_BENCH_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
        .max(N);

    let data = hyper_datasets::german_syn(N, 1);
    let t = data.db.table("german_syn").unwrap().clone();
    let pred = german_predicate();
    let enc = TableEncoder::fit(&t, &encoder_columns()).unwrap();
    let x = enc.encode_table(&t).unwrap();
    let y: Vec<f64> = (0..x.rows()).map(|i| x.get(i, 0)).collect();
    let forest = RandomForest::fit(
        &x,
        &y,
        &ForestParams {
            n_trees: 16,
            ..ForestParams::default()
        },
    )
    .unwrap();

    let mut entries: Vec<Entry> = Vec::new();

    // Storage: filter scan.
    let vec_t = time_avg(reps, || filter(&t, &pred).unwrap().num_rows());
    let ref_t = time_avg(reps, || filter_row_reference(&t, &pred).num_rows());
    entries.push(Entry::new(
        "filter_scan_german_10k",
        secs_to_us(vec_t),
        Some(secs_to_us(ref_t)),
    ));

    // Storage: table encode.
    let vec_t = time_avg(reps, || enc.encode_table(&t).unwrap().rows());
    let ref_t = time_avg(reps, || encode_row_reference(&enc, &t).rows());
    entries.push(Entry::new(
        "table_encode_german_10k",
        secs_to_us(vec_t),
        Some(secs_to_us(ref_t)),
    ));

    // ML: batch forest prediction.
    let pred_t = time_avg(reps, || forest.predict(&x).len());
    entries.push(Entry::new(
        "forest_predict_german_10k",
        secs_to_us(pred_t),
        None,
    ));

    // ML: histogram/cell-based parallel forest training (the cold-what-if
    // dominator this run exists to watch) vs the PR-3 sequential
    // sort-based path, measured live on this machine.
    let train_t = time_avg(reps, || {
        RandomForest::fit(
            &x,
            &y,
            &ForestParams {
                n_trees: 16,
                ..ForestParams::default()
            },
        )
        .unwrap()
        .num_trees()
    });
    let train_ref_t = time_avg(reps.clamp(1, 3), || forest_train_row_reference(&x, &y, 16));
    entries.push(Entry::new(
        "forest_train_german_10k",
        secs_to_us(train_t),
        Some(secs_to_us(train_ref_t)),
    ));

    // Session: cold single-shot what-if vs prepared over a warm cache.
    let q = match hyper_query::parse_query(
        "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')",
    )
    .unwrap()
    {
        hyper_query::HypotheticalQuery::WhatIf(q) => q,
        _ => unreachable!(),
    };
    let config = EngineConfig::hyper();
    let cold_reps = reps.clamp(1, 3);
    let cold_t = time_avg(cold_reps, || {
        evaluate_whatif(&data.db, Some(&data.graph), &config, &q).unwrap()
    });
    let session = HyperSession::builder(data.db.clone())
        .graph(data.graph.clone())
        .config(config)
        .build();
    let prepared = session.prepare(&q).unwrap();
    prepared.execute().unwrap(); // warm
    let warm_t = time_avg(reps, || prepared.execute_whatif().unwrap());
    entries.push(Entry::new(
        "whatif_prepared_german_10k",
        secs_to_us(warm_t),
        Some(secs_to_us(cold_t)),
    ));
    entries.push(Entry::new(
        "whatif_cold_german_10k",
        secs_to_us(cold_t),
        Some(PR3_COLD_WHATIF_US),
    ));

    // Tracing overhead (PR 10): the same prepared what-if with
    // phase tracing enabled vs disabled, interleaved best-of-3 on both
    // sides so a scheduler hiccup cannot charge one side only. The
    // traced path allocates one `TraceTree` and records a handful of
    // spans per query; the gate below requires ≤1.05× the disabled
    // path. The traced value must also stay *bit-identical* — tracing
    // observes the computation, never participates in it.
    let overhead_reps = (reps * 20).max(100);
    let untraced_value = prepared.execute_whatif().unwrap().value;
    session.set_tracing(true);
    let traced_value = prepared.execute_whatif().unwrap().value;
    assert_eq!(
        traced_value.to_bits(),
        untraced_value.to_bits(),
        "tracing must not perturb results"
    );
    session.set_tracing(false);
    let (mut untraced_us, mut traced_us) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        untraced_us = untraced_us.min(secs_to_us(time_avg(overhead_reps, || {
            prepared.execute_whatif().unwrap()
        })));
        session.set_tracing(true);
        traced_us = traced_us.min(secs_to_us(time_avg(overhead_reps, || {
            prepared.execute_whatif().unwrap()
        })));
        session.set_tracing(false);
    }
    let mut e = Entry::new("whatif_prepared_traced_german_10k", traced_us, None);
    e.extra = vec![("untraced_mean_us", untraced_us)];
    entries.push(e);

    // Phase breakdown of the prepared path, from the traced runs above:
    // cumulative per-phase exclusive time out of the session's
    // stabilized snapshot, exported into the JSON so future perf PRs
    // can see *which phase* moved, not just the total.
    let phase_snapshot = session.snapshot();

    // Warm start: the first what-if of a "restarted" process — in-memory
    // artifact store cleared, session rebuilt over a persist directory
    // populated by a previous life — vs the full-retrain cold path. The
    // restarted process deserializes the relevant view and the fitted
    // forest from `HYPR1` artifact files instead of rebuilding them.
    let persist = std::env::temp_dir().join(format!("hyper_bench_warm_{}", std::process::id()));
    std::fs::remove_dir_all(&persist).ok();
    let db = Arc::new(data.db.clone());
    let graph = Arc::new(data.graph.clone());
    let restarted_session = || {
        HyperSession::builder(Arc::clone(&db))
            .graph(Arc::clone(&graph))
            .config(EngineConfig::hyper())
            .persist_dir(&persist)
            .build()
    };
    // One cold run with persistence on populates the artifact files.
    SharedArtifactStore::global().clear();
    restarted_session().whatif(&q).unwrap();
    let warm_t = time_avg(cold_reps, || {
        SharedArtifactStore::global().clear(); // drop all in-memory state
        let session = restarted_session();
        let r = session.whatif(&q).unwrap();
        let stats = session.stats();
        assert_eq!(stats.estimator_misses, 0, "warm start must not retrain");
        assert!(
            stats.estimator_disk_hits > 0,
            "estimator must come from disk"
        );
        r
    });
    std::fs::remove_dir_all(&persist).ok();
    entries.push(Entry::new(
        "warm_start_german_10k",
        secs_to_us(warm_t),
        Some(secs_to_us(cold_t)),
    ));

    // Ingest: block-scoped delta refresh vs a from-scratch rebuild. The
    // session serves a working set of four filtered what-if templates
    // over young applicants (`age = 0/1/< 2/< 1`); then a 1% append of
    // senior applicants (every row has age = 2) lands. No filter admits
    // any appended row, so every view, block, and estimator survives the
    // refresh and the whole working set re-serves as pure cache hits —
    // zero view rebuilds, zero retrains. Restoring service through
    // `refresh` is gated ≥3× faster than the pre-ingest alternative: a
    // cold session over the post-delta database rebuilding every view
    // and retraining every estimator from scratch.
    const UNTOUCHED_TEXTS: [&str; 4] = [
        "Use (Select status, credit From german_syn Where age = 0) \
         Update(status) = 3 Output Count(Post(credit) = 'Good')",
        "Use (Select status, credit From german_syn Where age = 1) \
         Update(status) = 3 Output Count(Post(credit) = 'Good')",
        "Use (Select status, credit From german_syn Where age < 2) \
         Update(status) = 3 Output Count(Post(credit) = 'Good')",
        "Use (Select savings, credit From german_syn Where age < 1) \
         Update(savings) = 0 Output Count(Post(credit) = 'Good')",
    ];
    for text in UNTOUCHED_TEXTS {
        session.whatif_text(text).unwrap();
    }
    let mut appends = TableBuilder::new("german_syn", t.schema().clone());
    for i in 0..(N / 100) as i64 {
        appends = appends
            .row(vec![
                Value::Int(2),
                Value::Int(i % 2),
                Value::Int(i % 4),
                Value::Int((i / 2) % 4),
                Value::Int(i % 3),
                Value::Int((i / 3) % 4),
                Value::Str(if i % 4 == 0 { "Bad" } else { "Good" }.into()),
            ])
            .unwrap();
    }
    let delta = DeltaBatch::new().append(appends.build());
    let refresh_t = time_avg(cold_reps, || {
        let out = session.refresh(&delta).unwrap();
        assert!(
            out.report.views_kept >= UNTOUCHED_TEXTS.len(),
            "every non-matching filtered view must survive the append"
        );
        let before = out.session.stats();
        let mut sum = 0.0;
        for text in UNTOUCHED_TEXTS {
            sum += out.session.whatif_text(text).unwrap().value;
        }
        let after = out.session.stats();
        assert_eq!(
            (after.view_misses, after.estimator_misses),
            (before.view_misses, before.estimator_misses),
            "untouched-block what-ifs after a delta refresh must be pure cache hits"
        );
        sum
    });
    let post = Arc::new(delta.apply(session.database()).unwrap());
    let rebuild_t = time_avg(cold_reps, || {
        let cold = HyperSession::builder(Arc::clone(&post))
            .graph(data.graph.clone())
            .config(EngineConfig::hyper())
            .share_artifacts(false)
            .build();
        let mut sum = 0.0;
        for text in UNTOUCHED_TEXTS {
            sum += cold.whatif_text(text).unwrap().value;
        }
        sum
    });
    entries.push(Entry::new(
        "delta_refresh_german_10k",
        secs_to_us(refresh_t),
        Some(secs_to_us(rebuild_t)),
    ));

    // Serving: sustained queries/sec through the full HTTP + admission
    // stack — 8 persistent connections pipelining the prepared what-if
    // against a snapshot tenant. The queue (depth 64) can never fill at
    // 8 sequential connections, so any shed request is a server bug, and
    // the gate below requires zero. Carried forward from PR 6 next to the
    // big-row entry below so the two scale points stay comparable.
    const SERVE_TEXT: &str =
        "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')";
    let serve_10k = serve_run(&data.db, &data.graph, "10k", SERVE_TEXT, 8, 50);
    let mut e = Entry::new("serve_qps_german_10k", serve_10k.mean_us, None);
    e.extra = vec![("p50_us", serve_10k.p50_us), ("p99_us", serve_10k.p99_us)];
    entries.push(e);

    // ---------------------------------------------------------------
    // The big-row scale point (German-Syn 1M by default): the same data
    // path — filter scan, forest predict, cold what-if, serving — at
    // 100× the rows, plus an out-of-core scan through the hyper-store
    // paging tier. Same generator, same query, only the row count moves.
    drop((x, y, forest));
    let big = hyper_datasets::german_syn(big_rows, 1);
    let bt = big.db.table("german_syn").unwrap().clone();
    let big_reps = reps.clamp(1, 2);

    // Storage: morsel-parallel filter vs the same scan forced into a
    // single morsel (= the sequential path through identical code). On
    // a multi-core runner the parallel side must win ≥1.5× (gated
    // below); on 1-core runners both sides degrade to the same
    // sequential scan and the gate auto-skips.
    let rt = HyperRuntime::global();
    let seq_sel = matching_rows_on(rt, &bt, &pred, bt.num_rows().max(1)).unwrap();
    let par_sel = matching_rows_on(rt, &bt, &pred, DEFAULT_MORSEL_ROWS).unwrap();
    assert_eq!(
        seq_sel, par_sel,
        "morsel-parallel selection diverged from sequential"
    );
    drop((seq_sel, par_sel));
    let par_t = time_avg(reps, || {
        matching_rows_on(rt, &bt, &pred, DEFAULT_MORSEL_ROWS)
            .unwrap()
            .len()
    });
    let seq_t = time_avg(reps, || {
        matching_rows_on(rt, &bt, &pred, bt.num_rows().max(1))
            .unwrap()
            .len()
    });
    entries.push(Entry::new(
        "filter_scan_german_1m",
        secs_to_us(par_t),
        Some(secs_to_us(seq_t)),
    ));

    // Out-of-core: spill the big table into HYPR1 column chunks (chunk
    // granularity = morsel granularity) and scan it chunk-at-a-time
    // under a resident budget of ~1/8 of the table, verifying the
    // selection matches the in-memory scan. This is the acceptance
    // criterion that a table larger than its budget still scans
    // correctly; the time shows what paging costs over the in-memory
    // scan above.
    let spill_dir = std::env::temp_dir().join(format!("hyper_bench_paged_{}", std::process::id()));
    std::fs::remove_dir_all(&spill_dir).ok();
    let paged = hyper_store::PagedTable::spill(
        &bt,
        &spill_dir,
        DEFAULT_MORSEL_ROWS,
        0, // resolved below: budget must be < spilled size
    )
    .unwrap();
    let budget = paged.spilled_bytes() / 8;
    std::fs::remove_dir_all(&spill_dir).ok();
    let paged =
        hyper_store::PagedTable::spill(&bt, &spill_dir, DEFAULT_MORSEL_ROWS, budget).unwrap();
    let in_memory = hyper_storage::ops::matching_rows(&bt, &pred).unwrap();
    let paged_sel = paged.matching_rows(&pred).unwrap();
    assert_eq!(
        in_memory, paged_sel,
        "paged scan under budget diverged from the in-memory scan"
    );
    drop((in_memory, paged_sel));
    let paged_t = time_avg(big_reps, || paged.matching_rows(&pred).unwrap().len());
    // Predicate scans decode column-projected chunks straight off disk
    // (counted as loads, bypassing the resident LRU entirely); a
    // full-chunk pass then exercises the LRU, which must evict under a
    // budget of 1/8 the table.
    assert!(
        paged.stats().loads > 0,
        "projected predicate scans must read chunks from disk"
    );
    paged.for_each_chunk(|_, _, _| Ok(())).unwrap();
    assert!(
        paged.stats().evictions > 0,
        "a budget of 1/8 the table must actually evict"
    );
    entries.push(Entry::new(
        "paged_scan_german_1m",
        secs_to_us(paged_t),
        Some(secs_to_us(seq_t)),
    ));

    // Streaming forest training over the out-of-core table (PR 9): fit
    // the encoder and collect the target chunk-at-a-time, build the
    // two-pass binned layout under the same 1/8 paging budget, then
    // train morsel-parallel on the global pool. The fitted forest must
    // be bit-identical to the resident trainer's, and the layout's peak
    // resident footprint must stay under the dense encoded matrix it
    // replaces.
    let train_cols = encoder_columns();
    let enc_paged = hyper_store::fit_encoder_paged(&paged, &train_cols).unwrap();
    let enc_resident = TableEncoder::fit(&bt, &train_cols).unwrap();
    assert_eq!(
        enc_paged.parts().1,
        enc_resident.parts().1,
        "chunk-fitted encoder diverged from the resident fit"
    );
    let big_y_age = hyper_store::target_vector_paged(&paged, "age").unwrap();
    let train_params = ForestParams {
        n_trees: 16,
        ..ForestParams::default()
    };
    let cell_cap = (bt.num_rows() / 4).max(64);
    let build_start = std::time::Instant::now();
    let mut src = hyper_store::PagedTrainSource::new(&paged, &enc_paged);
    let layout = hyper_ml::StreamedLayout::build(&mut src, hyper_ml::MAX_BINS, cell_cap)
        .unwrap()
        .expect("german-syn features are cell-trainable");
    let layout_build_us = secs_to_us(build_start.elapsed());
    let matrix_bytes = (bt.num_rows() * enc_resident.width() * 8) as u64;
    assert!(
        layout.stats().peak_resident_bytes < matrix_bytes,
        "streaming layout resident bytes {} must undercut the {}-byte dense matrix",
        layout.stats().peak_resident_bytes,
        matrix_bytes
    );
    paged.remove_files().unwrap();
    let stream_train_t = time_avg(big_reps, || {
        layout
            .fit_forest(rt, &big_y_age, &train_params)
            .unwrap()
            .num_trees()
    });
    let rt0 = HyperRuntime::with_workers(0);
    let xm = enc_resident.encode_table(&bt).unwrap();
    let resident_train_t = time_avg(big_reps, || {
        RandomForest::fit_on(&rt0, &xm, &big_y_age, &train_params)
            .unwrap()
            .num_trees()
    });
    let streamed_forest = layout.fit_forest(rt, &big_y_age, &train_params).unwrap();
    let resident_forest = RandomForest::fit_on(&rt0, &xm, &big_y_age, &train_params).unwrap();
    for i in [0, bt.num_rows() / 2, bt.num_rows() - 1] {
        assert_eq!(
            resident_forest.predict_row(xm.row(i)).to_bits(),
            streamed_forest.predict_row(xm.row(i)).to_bits(),
            "streamed forest diverged from the resident trainer at row {i}"
        );
    }
    drop((xm, layout, streamed_forest, resident_forest));
    let mut e = Entry::new(
        "forest_train_german_1m",
        secs_to_us(stream_train_t),
        Some(secs_to_us(resident_train_t)),
    );
    e.extra = vec![("layout_build_us", layout_build_us)];
    entries.push(e);

    // ML: encode + batch-predict at the big scale point (the morsel
    // fan-out paths).
    let big_x = enc.encode_table(&bt).unwrap();
    let big_y: Vec<f64> = (0..big_x.rows()).map(|i| big_x.get(i, 0)).collect();
    let big_forest = RandomForest::fit(
        &big_x,
        &big_y,
        &ForestParams {
            n_trees: 16,
            ..ForestParams::default()
        },
    )
    .unwrap();
    let big_pred_t = time_avg(big_reps, || big_forest.predict(&big_x).len());
    entries.push(Entry::new(
        "forest_predict_german_1m",
        secs_to_us(big_pred_t),
        None,
    ));
    drop((big_x, big_y, big_forest));

    // Session: cold what-if at the big scale point. Gated below against
    // 1.5× linear scaling of the 10k measurement (≤150× at the full 1M).
    let big_cold_t = time_avg(big_reps, || {
        evaluate_whatif(&big.db, Some(&big.graph), &EngineConfig::hyper(), &q).unwrap()
    });
    entries.push(Entry::new(
        "whatif_cold_german_1m",
        secs_to_us(big_cold_t),
        None,
    ));

    // Serving at the big scale point: fewer requests (each response is
    // the same size; the tenant just carries 100× the rows), with tail
    // latency recorded alongside throughput.
    let serve_1m = serve_run(&big.db, &big.graph, "1m", SERVE_TEXT, 4, 25);
    let mut e = Entry::new("serve_qps_german_1m", serve_1m.mean_us, None);
    e.extra = vec![("p50_us", serve_1m.p50_us), ("p99_us", serve_1m.p99_us)];
    entries.push(e);

    // Render JSON by hand (no serde in the offline workspace).
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"mean_us\": {:.1}",
            e.name, e.micros
        );
        if let Some(b) = e.baseline_micros {
            let _ = write!(
                json,
                ", \"baseline_mean_us\": {:.1}, \"speedup\": {:.2}",
                b,
                b / e.micros
            );
        }
        for (key, v) in &e.extra {
            let _ = write!(json, ", \"{key}\": {v:.1}");
        }
        json.push('}');
        if i + 1 < entries.len() {
            json.push(',');
        }
        json.push('\n');
    }
    // Per-phase exclusive time accumulated by the traced prepared runs:
    // where the warm path actually spends its microseconds.
    json.push_str("  ],\n  \"phases\": {\n");
    let traced = phase_snapshot.traced_queries.max(1) as f64;
    let active: Vec<hyper_core::Phase> = hyper_core::Phase::ALL
        .into_iter()
        .filter(|&p| phase_snapshot.phase_ns(p) > 0 || phase_snapshot.phase_count(p) > 0)
        .collect();
    for (i, phase) in active.iter().enumerate() {
        let _ = write!(
            json,
            "    \"{}\": {{\"self_us_per_query\": {:.2}, \"spans\": {}}}",
            phase.name(),
            phase_snapshot.phase_ns(*phase) as f64 / 1_000.0 / traced,
            phase_snapshot.phase_count(*phase),
        );
        if i + 1 < active.len() {
            json.push(',');
        }
        json.push('\n');
    }
    let _ = write!(
        json,
        "  }},\n  \"serve_qps\": {:.1},\n  \"serve_shed\": {},\n  \"serve_qps_1m\": {:.1},\n  \"serve_shed_1m\": {},\n  \"rows\": {N},\n  \"big_rows\": {big_rows},\n  \"workers\": {},\n  \"reps\": {reps},\n  \"issue\": 10\n}}\n",
        serve_10k.qps,
        serve_10k.shed,
        serve_1m.qps,
        serve_1m.shed,
        HyperRuntime::global().workers(),
    );

    std::fs::write(&out_path, &json).expect("write benchmark summary");
    println!("{json}");
    println!("wrote {out_path}");

    // Guard the acceptance criteria: vectorized filter/encode must stay
    // well ahead of the Value-per-cell baselines (PR 3), and cold what-if
    // must hold ≥2× over the PR-3 training path (this PR's headline).
    for e in &entries {
        if let Some(b) = e.baseline_micros {
            let speedup = b / e.micros;
            if (e.name.starts_with("filter_scan_german_10k") || e.name.starts_with("table_encode"))
                && speedup < 3.0
            {
                eprintln!("REGRESSION: {} speedup {speedup:.2} < 3.0", e.name);
                std::process::exit(1);
            }
            // Hardware-independent gate: histogram/cell training vs the
            // live sequential sort-based reference on the same machine.
            if e.name == "forest_train_german_10k" && speedup < 2.0 {
                eprintln!("REGRESSION: {} speedup {speedup:.2} < 2.0", e.name);
                std::process::exit(1);
            }
            // Absolute gate from the acceptance criterion. The constant
            // was measured on the reference container; current headroom
            // is ~7x, so moderate runner variance cannot trip it, but a
            // much slower CI machine would need this constant revisited.
            if e.name == "whatif_cold_german_10k" && speedup < 2.0 {
                eprintln!(
                    "REGRESSION: cold what-if {:.1}us is less than 2x faster than \
                     the PR-3 baseline {PR3_COLD_WHATIF_US:.1}us ({speedup:.2}x)",
                    e.micros
                );
                std::process::exit(1);
            }
            // Warm-start gate: a restarted process recovering artifacts
            // from the persist directory must beat full retraining by
            // ≥3× (both sides measured live on this machine).
            if e.name == "warm_start_german_10k" && speedup < 3.0 {
                eprintln!(
                    "REGRESSION: warm start {:.1}us is less than 3x faster than \
                     retraining {b:.1}us ({speedup:.2}x)",
                    e.micros
                );
                std::process::exit(1);
            }
            // Delta-refresh gate (PR 7): running the block-scoped
            // survival analysis and re-serving the untouched what-if
            // must beat a from-scratch session over the post-delta
            // database by ≥3× (both sides measured live).
            if e.name == "delta_refresh_german_10k" && speedup < 3.0 {
                eprintln!(
                    "REGRESSION: delta refresh {:.1}us is less than 3x faster than \
                     a cold rebuild {b:.1}us ({speedup:.2}x)",
                    e.micros
                );
                std::process::exit(1);
            }
        }
    }
    // Tracing-overhead gate (PR 10): phase tracing on the prepared
    // what-if path may cost at most 5% over the disabled path (both
    // sides best-of-3 interleaved above). The disabled path itself is
    // one relaxed atomic load per query.
    let overhead = traced_us / untraced_us;
    if overhead > 1.05 {
        eprintln!(
            "REGRESSION: traced prepared what-if {traced_us:.1}us is {overhead:.3}x the \
             disabled path {untraced_us:.1}us (> 1.05x)"
        );
        std::process::exit(1);
    }

    // Continuity with the committed PR-9 summary: the disabled-path
    // prepared what-if must not regress more than 5% against the
    // recorded BENCH_9 mean (measured on the same reference container).
    // A big *improvement* is reported, not failed — that is a signal to
    // refresh the recorded baseline, not a defect.
    if let Ok(prev) = std::fs::read_to_string("BENCH_9.json") {
        let prev_prepared = prev
            .find("\"whatif_prepared_german_10k\", \"mean_us\": ")
            .and_then(|i| {
                let rest = &prev[i + "\"whatif_prepared_german_10k\", \"mean_us\": ".len()..];
                rest[..rest.find(',')?].trim().parse::<f64>().ok()
            });
        if let Some(prev_us) = prev_prepared {
            let prepared_us = entries
                .iter()
                .find(|e| e.name == "whatif_prepared_german_10k")
                .map(|e| e.micros)
                .unwrap();
            let ratio = prepared_us / prev_us;
            if ratio > 1.05 {
                eprintln!(
                    "REGRESSION: prepared what-if {prepared_us:.1}us is {ratio:.3}x the \
                     BENCH_9 baseline {prev_us:.1}us (> 1.05x)"
                );
                std::process::exit(1);
            }
            if ratio < 0.95 {
                eprintln!(
                    "note: prepared what-if {prepared_us:.1}us beats the BENCH_9 baseline \
                     {prev_us:.1}us by more than 5% — consider refreshing the baseline"
                );
            }
        } else {
            eprintln!("note: BENCH_9.json present but its prepared entry did not parse");
        }
    } else {
        eprintln!("note: BENCH_9.json not found; continuity gate skipped");
    }

    // Serving gates (PR 6): 8 persistent connections must sustain a qps
    // floor through the full HTTP + admission stack, and the 64-deep
    // queue must shed nothing at this well-under-capacity load. The
    // floor is deliberately coarse (steady-state per-request cost is
    // ~100x under it on the reference container) — this catches "the
    // server serializes everything" or "keep-alive broke", not jitter.
    if serve_10k.qps < 100.0 {
        eprintln!(
            "REGRESSION: serve qps {:.1} < 100 at 8 connections",
            serve_10k.qps
        );
        std::process::exit(1);
    }
    if serve_10k.shed != 0 || serve_1m.shed != 0 {
        eprintln!(
            "REGRESSION: requests shed at a load far under queue capacity \
             (10k: {}, 1m: {})",
            serve_10k.shed, serve_1m.shed
        );
        std::process::exit(1);
    }

    // Scaling gate (PR 8): the big-row cold what-if must stay within
    // 1.5× linear scaling of the 10k cold what-if — ≤150× at the full
    // 1M (both sides measured live on this machine, so the gate is
    // hardware-independent and adjusts when CI shrinks the big-row
    // count through HYPER_BENCH_ROWS).
    let cold_10k_us = entries
        .iter()
        .find(|e| e.name == "whatif_cold_german_10k")
        .map(|e| e.micros)
        .unwrap();
    let big_cold_us = entries
        .iter()
        .find(|e| e.name == "whatif_cold_german_1m")
        .map(|e| e.micros)
        .unwrap();
    let allowed = 1.5 * (big_rows as f64 / N as f64) * cold_10k_us;
    if big_cold_us > allowed {
        eprintln!(
            "REGRESSION: cold what-if at {big_rows} rows took {big_cold_us:.0}us, over the \
             1.5x-linear-scaling allowance of {allowed:.0}us ({:.0}x the 10k {cold_10k_us:.0}us)",
            big_cold_us / cold_10k_us
        );
        std::process::exit(1);
    }

    // Parallel-filter gate (PR 8): with ≥2 workers in the global pool,
    // the morsel-parallel scan must beat the single-morsel sequential
    // scan ≥1.5×. On 1-core runners (0 or 1 workers) both sides run the
    // same sequential code and the gate auto-skips — bit-parity is
    // still asserted above and property-tested in crates/storage.
    let workers = HyperRuntime::global().workers();
    if workers >= 2 {
        let par = entries
            .iter()
            .find(|e| e.name == "filter_scan_german_1m")
            .unwrap();
        let speedup = par.baseline_micros.unwrap() / par.micros;
        if speedup < 1.5 {
            eprintln!(
                "REGRESSION: morsel-parallel filter speedup {speedup:.2} < 1.5 \
                 with {workers} workers"
            );
            std::process::exit(1);
        }
    } else {
        // Zero-worker fast path (PR 9): with no pool, the morsel entry
        // points must route straight to the sequential scan without
        // allocating any morsel state — the parallel-named call may not
        // cost more than ~5% over the sequential one.
        // Only meaningful at scale: under ~100k rows the scan is
        // sub-millisecond and timing noise alone exceeds the 5% margin
        // (CI runs 200k, where the gate is stable).
        if big_rows >= 100_000 {
            let par = entries
                .iter()
                .find(|e| e.name == "filter_scan_german_1m")
                .unwrap();
            let ratio = par.baseline_micros.unwrap() / par.micros;
            if ratio < 0.95 {
                eprintln!(
                    "REGRESSION: morsel filter costs {:.2}x the sequential scan \
                     with {workers} workers (zero-worker fast path broken)",
                    1.0 / ratio
                );
                std::process::exit(1);
            }
        }
        eprintln!("note: parallel-filter gate skipped ({workers} workers in the global pool)");
    }

    // Streaming-training gate (PR 9): with ≥2 workers, the
    // morsel-parallel fit over the streamed layout must beat the
    // single-threaded resident fit ≥2× (both sides measured live over
    // the same targets; the forests are asserted bit-identical above).
    // On 1-core runners both sides run the same sequential loop and the
    // gate auto-skips — bit-identity still holds and is property-tested
    // in crates/store.
    if workers >= 2 {
        let e = entries
            .iter()
            .find(|e| e.name == "forest_train_german_1m")
            .unwrap();
        let speedup = e.baseline_micros.unwrap() / e.micros;
        if speedup < 2.0 {
            eprintln!(
                "REGRESSION: streamed parallel forest training speedup {speedup:.2} < 2.0 \
                 with {workers} workers"
            );
            std::process::exit(1);
        }
    } else {
        eprintln!("note: streaming-training gate skipped ({workers} workers in the global pool)");
    }
}
