//! Reduced-iteration benchmark smoke run: times the storage-layer
//! microbenchmarks (filter scan, table encode, forest train/predict —
//! vectorized vs `Value`-per-cell) and the session-layer cold vs prepared
//! what-if on German-Syn 10k, then writes a machine-readable throughput
//! summary.
//!
//! Used by the CI `bench-smoke` job to track the perf trajectory: each
//! run produces a `BENCH_7.json` artifact (override the path with
//! `--out <path>` or the `BENCH_OUT` environment variable). Iteration
//! counts are deliberately small — this guards against order-of-magnitude
//! regressions, not microsecond drift. Gates enforced: the ≥3×
//! vectorization speedups over the `Value`-per-cell baselines (PR 3), the
//! ≥2× cold-what-if speedup over the PR-3 sequential-sort-training
//! measurement (28.9 ms) delivered by parallel histogram/cell-based
//! forest training (PR 4), the ≥3× warm-start speedup of a simulated
//! process restart recovering its artifacts from a populated persist
//! directory instead of retraining (PR 5), the hyper-serve HTTP
//! throughput floor — ≥100 queries/sec sustained over 8 persistent
//! connections with zero shed requests (PR 6) — and the ≥3× speedup of
//! a block-scoped delta refresh over a from-scratch rebuild after a 1%
//! append, with the untouched-block what-if required to be a pure cache
//! hit (PR 7).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use hyper_bench::storage_baseline::{
    encode_row_reference, encoder_columns, filter_row_reference, german_predicate,
};
use hyper_bench::time_avg;
use hyper_core::{evaluate_whatif, EngineConfig, HyperSession, SharedArtifactStore};
use hyper_ingest::DeltaBatch;
use hyper_ml::{ForestParams, Matrix, RandomForest, RegressionTree, TableEncoder, TreeParams};
use hyper_storage::ops::filter;
use hyper_storage::{TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The PR-3 training path, kept alive as a hardware-independent baseline:
/// sequential trees, per-node sort-based split search over raw features,
/// one shared RNG stream. The histogram/cell trainer is gated against
/// this live measurement in addition to the absolute PR-3 cold-what-if
/// constant below.
fn forest_train_row_reference(x: &Matrix, y: &[f64], n_trees: usize) -> usize {
    let mut rng = StdRng::seed_from_u64(0);
    let mut tree_params = TreeParams::default();
    if tree_params.max_features.is_none() && x.cols() > 3 {
        tree_params.max_features = Some((x.cols() as f64).sqrt().ceil() as usize);
    }
    let n = x.rows();
    let mut nodes = 0usize;
    for _ in 0..n_trees {
        let idx: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n) as u32).collect();
        nodes += RegressionTree::fit_indices(x, y, idx, &tree_params, &mut rng)
            .unwrap()
            .num_nodes();
    }
    nodes
}

const N: usize = 10_000;

/// Cold what-if on German-Syn 10k as measured at the PR-3 head on the
/// reference container (sequential per-node-sort forest training
/// dominating); the histogram/cell refactor must hold ≥2× against it.
const PR3_COLD_WHATIF_US: f64 = 28_900.0;

struct Entry {
    name: &'static str,
    micros: f64,
    baseline_micros: Option<f64>,
}

fn secs_to_us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("BENCH_OUT").ok())
        .unwrap_or_else(|| "BENCH_7.json".to_string());
    let reps: usize = std::env::var("BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let data = hyper_datasets::german_syn(N, 1);
    let t = data.db.table("german_syn").unwrap().clone();
    let pred = german_predicate();
    let enc = TableEncoder::fit(&t, &encoder_columns()).unwrap();
    let x = enc.encode_table(&t).unwrap();
    let y: Vec<f64> = (0..x.rows()).map(|i| x.get(i, 0)).collect();
    let forest = RandomForest::fit(
        &x,
        &y,
        &ForestParams {
            n_trees: 16,
            ..ForestParams::default()
        },
    )
    .unwrap();

    let mut entries: Vec<Entry> = Vec::new();

    // Storage: filter scan.
    let vec_t = time_avg(reps, || filter(&t, &pred).unwrap().num_rows());
    let ref_t = time_avg(reps, || filter_row_reference(&t, &pred).num_rows());
    entries.push(Entry {
        name: "filter_scan_german_10k",
        micros: secs_to_us(vec_t),
        baseline_micros: Some(secs_to_us(ref_t)),
    });

    // Storage: table encode.
    let vec_t = time_avg(reps, || enc.encode_table(&t).unwrap().rows());
    let ref_t = time_avg(reps, || encode_row_reference(&enc, &t).rows());
    entries.push(Entry {
        name: "table_encode_german_10k",
        micros: secs_to_us(vec_t),
        baseline_micros: Some(secs_to_us(ref_t)),
    });

    // ML: batch forest prediction.
    let pred_t = time_avg(reps, || forest.predict(&x).len());
    entries.push(Entry {
        name: "forest_predict_german_10k",
        micros: secs_to_us(pred_t),
        baseline_micros: None,
    });

    // ML: histogram/cell-based parallel forest training (the cold-what-if
    // dominator this run exists to watch) vs the PR-3 sequential
    // sort-based path, measured live on this machine.
    let train_t = time_avg(reps, || {
        RandomForest::fit(
            &x,
            &y,
            &ForestParams {
                n_trees: 16,
                ..ForestParams::default()
            },
        )
        .unwrap()
        .num_trees()
    });
    let train_ref_t = time_avg(reps.clamp(1, 3), || forest_train_row_reference(&x, &y, 16));
    entries.push(Entry {
        name: "forest_train_german_10k",
        micros: secs_to_us(train_t),
        baseline_micros: Some(secs_to_us(train_ref_t)),
    });

    // Session: cold single-shot what-if vs prepared over a warm cache.
    let q = match hyper_query::parse_query(
        "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')",
    )
    .unwrap()
    {
        hyper_query::HypotheticalQuery::WhatIf(q) => q,
        _ => unreachable!(),
    };
    let config = EngineConfig::hyper();
    let cold_reps = reps.clamp(1, 3);
    let cold_t = time_avg(cold_reps, || {
        evaluate_whatif(&data.db, Some(&data.graph), &config, &q).unwrap()
    });
    let session = HyperSession::builder(data.db.clone())
        .graph(data.graph.clone())
        .config(config)
        .build();
    let prepared = session.prepare(&q).unwrap();
    prepared.execute().unwrap(); // warm
    let warm_t = time_avg(reps, || prepared.execute_whatif().unwrap());
    entries.push(Entry {
        name: "whatif_prepared_german_10k",
        micros: secs_to_us(warm_t),
        baseline_micros: Some(secs_to_us(cold_t)),
    });
    entries.push(Entry {
        name: "whatif_cold_german_10k",
        micros: secs_to_us(cold_t),
        baseline_micros: Some(PR3_COLD_WHATIF_US),
    });

    // Warm start: the first what-if of a "restarted" process — in-memory
    // artifact store cleared, session rebuilt over a persist directory
    // populated by a previous life — vs the full-retrain cold path. The
    // restarted process deserializes the relevant view and the fitted
    // forest from `HYPR1` artifact files instead of rebuilding them.
    let persist = std::env::temp_dir().join(format!("hyper_bench_warm_{}", std::process::id()));
    std::fs::remove_dir_all(&persist).ok();
    let db = Arc::new(data.db.clone());
    let graph = Arc::new(data.graph.clone());
    let restarted_session = || {
        HyperSession::builder(Arc::clone(&db))
            .graph(Arc::clone(&graph))
            .config(EngineConfig::hyper())
            .persist_dir(&persist)
            .build()
    };
    // One cold run with persistence on populates the artifact files.
    SharedArtifactStore::global().clear();
    restarted_session().whatif(&q).unwrap();
    let warm_t = time_avg(cold_reps, || {
        SharedArtifactStore::global().clear(); // drop all in-memory state
        let session = restarted_session();
        let r = session.whatif(&q).unwrap();
        let stats = session.stats();
        assert_eq!(stats.estimator_misses, 0, "warm start must not retrain");
        assert!(
            stats.estimator_disk_hits > 0,
            "estimator must come from disk"
        );
        r
    });
    std::fs::remove_dir_all(&persist).ok();
    entries.push(Entry {
        name: "warm_start_german_10k",
        micros: secs_to_us(warm_t),
        baseline_micros: Some(secs_to_us(cold_t)),
    });

    // Ingest: block-scoped delta refresh vs a from-scratch rebuild. The
    // session serves a working set of four filtered what-if templates
    // over young applicants (`age = 0/1/< 2/< 1`); then a 1% append of
    // senior applicants (every row has age = 2) lands. No filter admits
    // any appended row, so every view, block, and estimator survives the
    // refresh and the whole working set re-serves as pure cache hits —
    // zero view rebuilds, zero retrains. Restoring service through
    // `refresh` is gated ≥3× faster than the pre-ingest alternative: a
    // cold session over the post-delta database rebuilding every view
    // and retraining every estimator from scratch.
    const UNTOUCHED_TEXTS: [&str; 4] = [
        "Use (Select status, credit From german_syn Where age = 0) \
         Update(status) = 3 Output Count(Post(credit) = 'Good')",
        "Use (Select status, credit From german_syn Where age = 1) \
         Update(status) = 3 Output Count(Post(credit) = 'Good')",
        "Use (Select status, credit From german_syn Where age < 2) \
         Update(status) = 3 Output Count(Post(credit) = 'Good')",
        "Use (Select savings, credit From german_syn Where age < 1) \
         Update(savings) = 0 Output Count(Post(credit) = 'Good')",
    ];
    for text in UNTOUCHED_TEXTS {
        session.whatif_text(text).unwrap();
    }
    let mut appends = TableBuilder::new("german_syn", t.schema().clone());
    for i in 0..(N / 100) as i64 {
        appends = appends
            .row(vec![
                Value::Int(2),
                Value::Int(i % 2),
                Value::Int(i % 4),
                Value::Int((i / 2) % 4),
                Value::Int(i % 3),
                Value::Int((i / 3) % 4),
                Value::Str(if i % 4 == 0 { "Bad" } else { "Good" }.into()),
            ])
            .unwrap();
    }
    let delta = DeltaBatch::new().append(appends.build());
    let refresh_t = time_avg(cold_reps, || {
        let out = session.refresh(&delta).unwrap();
        assert!(
            out.report.views_kept >= UNTOUCHED_TEXTS.len(),
            "every non-matching filtered view must survive the append"
        );
        let before = out.session.stats();
        let mut sum = 0.0;
        for text in UNTOUCHED_TEXTS {
            sum += out.session.whatif_text(text).unwrap().value;
        }
        let after = out.session.stats();
        assert_eq!(
            (after.view_misses, after.estimator_misses),
            (before.view_misses, before.estimator_misses),
            "untouched-block what-ifs after a delta refresh must be pure cache hits"
        );
        sum
    });
    let post = Arc::new(delta.apply(session.database()).unwrap());
    let rebuild_t = time_avg(cold_reps, || {
        let cold = HyperSession::builder(Arc::clone(&post))
            .graph(data.graph.clone())
            .config(EngineConfig::hyper())
            .share_artifacts(false)
            .build();
        let mut sum = 0.0;
        for text in UNTOUCHED_TEXTS {
            sum += cold.whatif_text(text).unwrap().value;
        }
        sum
    });
    entries.push(Entry {
        name: "delta_refresh_german_10k",
        micros: secs_to_us(refresh_t),
        baseline_micros: Some(secs_to_us(rebuild_t)),
    });

    // Serving: sustained queries/sec through the full HTTP + admission
    // stack — 8 persistent connections pipelining the prepared what-if
    // against a snapshot tenant. The queue (depth 64) can never fill at
    // 8 sequential connections, so any shed request is a server bug, and
    // the gate below requires zero.
    let registry = std::env::temp_dir().join(format!("hyper_bench_serve_{}", std::process::id()));
    std::fs::remove_dir_all(&registry).ok();
    std::fs::create_dir_all(&registry).unwrap();
    hyper_store::Snapshot::new(data.db.clone(), Some(data.graph.clone()))
        .save(registry.join("t0.hypr"))
        .unwrap();
    let server = hyper_serve::Server::start(
        &registry,
        hyper_serve::ServeConfig {
            workers: 2,
            queue_depth: 64,
            ..hyper_serve::ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    const SERVE_TEXT: &str =
        "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')";
    const CONNECTIONS: usize = 8;
    const REQUESTS_PER_CONN: usize = 50;
    // One warm request loads the snapshot and trains the estimator so the
    // measured window is steady-state serving, not cold setup.
    let mut warm = hyper_serve::Client::connect(addr).unwrap();
    let warm_response = warm.query("/query", "t0", SERVE_TEXT, &[]).unwrap();
    assert_eq!(warm_response.status, 200, "warmup must succeed");
    let serve_start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CONNECTIONS {
            scope.spawn(|| {
                let mut client = hyper_serve::Client::connect(addr).unwrap();
                for _ in 0..REQUESTS_PER_CONN {
                    let response = client.query("/query", "t0", SERVE_TEXT, &[]).unwrap();
                    assert_eq!(response.status, 200, "steady-state request failed");
                }
            });
        }
    });
    let serve_elapsed = serve_start.elapsed();
    let total_requests = (CONNECTIONS * REQUESTS_PER_CONN) as f64;
    let serve_qps = total_requests / serve_elapsed.as_secs_f64();
    let shed_total = server.stats().total(|c| &c.shed);
    server.shutdown();
    std::fs::remove_dir_all(&registry).ok();
    entries.push(Entry {
        name: "serve_qps_german_10k",
        micros: secs_to_us(serve_elapsed) / total_requests,
        baseline_micros: None,
    });

    // Render JSON by hand (no serde in the offline workspace).
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"mean_us\": {:.1}",
            e.name, e.micros
        );
        if let Some(b) = e.baseline_micros {
            let _ = write!(
                json,
                ", \"baseline_mean_us\": {:.1}, \"speedup\": {:.2}",
                b,
                b / e.micros
            );
        }
        json.push('}');
        if i + 1 < entries.len() {
            json.push(',');
        }
        json.push('\n');
    }
    let _ = write!(
        json,
        "  ],\n  \"serve_qps\": {serve_qps:.1},\n  \"serve_shed\": {shed_total},\n  \"rows\": {N},\n  \"reps\": {reps},\n  \"issue\": 7\n}}\n"
    );

    std::fs::write(&out_path, &json).expect("write benchmark summary");
    println!("{json}");
    println!("wrote {out_path}");

    // Guard the acceptance criteria: vectorized filter/encode must stay
    // well ahead of the Value-per-cell baselines (PR 3), and cold what-if
    // must hold ≥2× over the PR-3 training path (this PR's headline).
    for e in &entries {
        if let Some(b) = e.baseline_micros {
            let speedup = b / e.micros;
            if (e.name.starts_with("filter_scan") || e.name.starts_with("table_encode"))
                && speedup < 3.0
            {
                eprintln!("REGRESSION: {} speedup {speedup:.2} < 3.0", e.name);
                std::process::exit(1);
            }
            // Hardware-independent gate: histogram/cell training vs the
            // live sequential sort-based reference on the same machine.
            if e.name == "forest_train_german_10k" && speedup < 2.0 {
                eprintln!("REGRESSION: {} speedup {speedup:.2} < 2.0", e.name);
                std::process::exit(1);
            }
            // Absolute gate from the acceptance criterion. The constant
            // was measured on the reference container; current headroom
            // is ~7x, so moderate runner variance cannot trip it, but a
            // much slower CI machine would need this constant revisited.
            if e.name == "whatif_cold_german_10k" && speedup < 2.0 {
                eprintln!(
                    "REGRESSION: cold what-if {:.1}us is less than 2x faster than \
                     the PR-3 baseline {PR3_COLD_WHATIF_US:.1}us ({speedup:.2}x)",
                    e.micros
                );
                std::process::exit(1);
            }
            // Warm-start gate: a restarted process recovering artifacts
            // from the persist directory must beat full retraining by
            // ≥3× (both sides measured live on this machine).
            if e.name == "warm_start_german_10k" && speedup < 3.0 {
                eprintln!(
                    "REGRESSION: warm start {:.1}us is less than 3x faster than \
                     retraining {b:.1}us ({speedup:.2}x)",
                    e.micros
                );
                std::process::exit(1);
            }
            // Delta-refresh gate (PR 7): running the block-scoped
            // survival analysis and re-serving the untouched what-if
            // must beat a from-scratch session over the post-delta
            // database by ≥3× (both sides measured live).
            if e.name == "delta_refresh_german_10k" && speedup < 3.0 {
                eprintln!(
                    "REGRESSION: delta refresh {:.1}us is less than 3x faster than \
                     a cold rebuild {b:.1}us ({speedup:.2}x)",
                    e.micros
                );
                std::process::exit(1);
            }
        }
    }
    // Serving gates (PR 6): 8 persistent connections must sustain a qps
    // floor through the full HTTP + admission stack, and the 64-deep
    // queue must shed nothing at this well-under-capacity load. The
    // floor is deliberately coarse (steady-state per-request cost is
    // ~100x under it on the reference container) — this catches "the
    // server serializes everything" or "keep-alive broke", not jitter.
    if serve_qps < 100.0 {
        eprintln!("REGRESSION: serve qps {serve_qps:.1} < 100 at 8 connections");
        std::process::exit(1);
    }
    if shed_total != 0 {
        eprintln!("REGRESSION: {shed_total} requests shed at a load far under queue capacity");
        std::process::exit(1);
    }
}
