//! German credit datasets.
//!
//! * [`german`] — simulated UCI German credit (1k rows, richer schema) for
//!   the Fig. 8a qualitative study: `Status` and `Credit history` dominate
//!   the credit outcome, `Housing`/`Investment` matter far less.
//! * [`german_syn`] — the paper's synthetic German generator (§5.1) with
//!   the same causal graph shape (Chiappa \[11\]): confounders `age`/`sex`
//!   feeding financial attributes feeding `credit`. Used by Figs. 6, 10a,
//!   12 and the how-to quality experiments.
//! * [`german_syn_continuous`] — the Fig. 9 variant with a continuous
//!   update attribute.

use std::collections::HashMap;

use hyper_causal::scm::{Mechanism, Scm};
use hyper_storage::{DataType, Database, Value};

use crate::Dataset;

fn discrete(levels: &[(i64, f64)]) -> Vec<(Value, f64)> {
    levels.iter().map(|&(v, p)| (Value::Int(v), p)).collect()
}

/// CPD helper: per parent combination, a distribution over integer levels
/// produced by a logistic-ish score.
fn leveled_cpd(
    parent_domains: &[&[i64]],
    levels: i64,
    score: impl Fn(&[i64]) -> f64,
) -> HashMap<Vec<Value>, Vec<(Value, f64)>> {
    let mut table = HashMap::new();
    let mut combo = vec![0usize; parent_domains.len()];
    loop {
        let parents: Vec<i64> = combo
            .iter()
            .zip(parent_domains)
            .map(|(&i, d)| d[i])
            .collect();
        let s = score(&parents);
        // Geometric-ish tilt towards high levels as score grows.
        let mut weights: Vec<f64> = (0..levels)
            .map(|l| ((l as f64 - (levels - 1) as f64 / 2.0) * s).exp())
            .collect();
        let z: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= z;
        }
        table.insert(
            parents.iter().map(|&p| Value::Int(p)).collect(),
            (0..levels)
                .map(|l| (Value::Int(l), weights[l as usize]))
                .collect(),
        );
        // Increment combo.
        let mut i = 0;
        loop {
            if i == combo.len() {
                return table;
            }
            combo[i] += 1;
            if combo[i] < parent_domains[i].len() {
                break;
            }
            combo[i] = 0;
            i += 1;
        }
    }
}

/// Binary outcome CPD from a linear score through a sigmoid.
fn binary_cpd(
    parent_domains: &[&[i64]],
    good: Value,
    bad: Value,
    score: impl Fn(&[i64]) -> f64,
) -> HashMap<Vec<Value>, Vec<(Value, f64)>> {
    let mut table = HashMap::new();
    let mut combo = vec![0usize; parent_domains.len()];
    loop {
        let parents: Vec<i64> = combo
            .iter()
            .zip(parent_domains)
            .map(|(&i, d)| d[i])
            .collect();
        let p = 1.0 / (1.0 + (-score(&parents)).exp());
        table.insert(
            parents.iter().map(|&x| Value::Int(x)).collect(),
            vec![(bad.clone(), 1.0 - p), (good.clone(), p)],
        );
        let mut i = 0;
        loop {
            if i == combo.len() {
                return table;
            }
            combo[i] += 1;
            if combo[i] < parent_domains[i].len() {
                break;
            }
            combo[i] = 0;
            i += 1;
        }
    }
}

const L2: &[i64] = &[0, 1];
const L3: &[i64] = &[0, 1, 2];
const L4: &[i64] = &[0, 1, 2, 3];

/// The paper's German-Syn generator: 7 attributes, discrete levels,
/// `age`/`sex` confound the financial attributes and the credit outcome.
pub fn german_syn_scm() -> Scm {
    let mut scm = Scm::new();
    scm.add_node(
        "age",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(discrete(&[(0, 0.35), (1, 0.4), (2, 0.25)])),
    )
    .unwrap();
    scm.add_node(
        "sex",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(discrete(&[(0, 0.55), (1, 0.45)])),
    )
    .unwrap();
    scm.add_node(
        "status",
        DataType::Int,
        &["age", "sex"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3, L2], 4, |p| {
                0.5 * p[0] as f64 + 0.3 * p[1] as f64 - 0.4
            }),
            default: discrete(&[(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]),
        },
    )
    .unwrap();
    scm.add_node(
        "savings",
        DataType::Int,
        &["age", "sex"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3, L2], 4, |p| {
                0.35 * p[0] as f64 + 0.2 * p[1] as f64 - 0.3
            }),
            default: discrete(&[(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]),
        },
    )
    .unwrap();
    scm.add_node(
        "housing",
        DataType::Int,
        &["age"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3], 3, |p| 0.3 * p[0] as f64 - 0.2),
            default: discrete(&[(0, 0.34), (1, 0.33), (2, 0.33)]),
        },
    )
    .unwrap();
    scm.add_node(
        "credit_amount",
        DataType::Int,
        &["age", "sex"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3, L2], 4, |p| {
                0.25 * p[0] as f64 + 0.15 * p[1] as f64 - 0.2
            }),
            default: discrete(&[(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]),
        },
    )
    .unwrap();
    // Credit: status dominates, savings/housing moderate, amount small —
    // the effect ordering §5.3/Fig 10a reports.
    scm.add_node(
        "credit",
        DataType::Str,
        &["status", "savings", "housing", "credit_amount"],
        Mechanism::DiscreteCpd {
            table: binary_cpd(
                &[L4, L4, L3, L4],
                Value::str("Good"),
                Value::str("Bad"),
                |p| {
                    -2.0 + 1.0 * p[0] as f64
                        + 0.45 * p[1] as f64
                        + 0.35 * p[2] as f64
                        + 0.15 * p[3] as f64
                },
            ),
            default: vec![(Value::str("Bad"), 1.0)],
        },
    )
    .unwrap();
    scm
}

/// German-Syn extended with an `interest_rate` attribute *downstream of the
/// outcome* (good credit lowers the offered rate). Used by the
/// lexicographic multi-objective demo, which needs two downstream
/// objectives. Kept separate from [`german_syn_scm`] because a post-outcome
/// attribute deliberately breaks the HypeR-NB canonical adjustment set
/// (conditioning on it leaks the outcome — §2.2's caveat).
pub fn german_syn_extended_scm() -> Scm {
    let mut scm = german_syn_scm();
    scm.add_node(
        "interest_rate",
        DataType::Float,
        &["credit", "credit_amount"],
        Mechanism::Deterministic(std::sync::Arc::new(|parents: &[Value]| {
            let good = parents[0].as_str() == Some("Good");
            let amount = parents[1].as_f64().unwrap_or(0.0);
            Value::Float(if good { 4.0 } else { 9.0 } + 0.6 * amount)
        })),
    )
    .unwrap();
    scm
}

/// German-Syn-extended with `n` rows (see [`german_syn_extended_scm`]).
pub fn german_syn_extended(n: usize, seed: u64) -> Dataset {
    let scm = german_syn_extended_scm();
    let table = scm.sample("german_syn", n, seed).expect("valid scm");
    let mut db = Database::new();
    db.add_table(table).expect("fresh db");
    let graph = scm.to_causal_graph("german_syn");
    Dataset {
        name: "german-syn-ext",
        db,
        graph,
        scm: Some(scm),
    }
}

/// German-Syn with `n` rows.
pub fn german_syn(n: usize, seed: u64) -> Dataset {
    let scm = german_syn_scm();
    let table = scm.sample("german_syn", n, seed).expect("valid scm");
    let mut db = Database::new();
    db.add_table(table).expect("fresh db");
    let graph = scm.to_causal_graph("german_syn");
    Dataset {
        name: "german-syn",
        db,
        graph,
        scm: Some(scm),
    }
}

/// German-Syn at the 1M-row scale point used by the out-of-core and
/// morsel-parallel benchmarks (`*_german_1m` entries in `bench_smoke`).
/// Identical generator to [`german_syn`] — only the row count differs —
/// so scaling curves compare like against like.
pub fn german_syn_1m(seed: u64) -> Dataset {
    german_syn(1_000_000, seed)
}

/// Fig-9 variant: `credit_amount` is continuous (Gaussian around a level
/// driven by age/sex) and credit responds to it continuously.
pub fn german_syn_continuous(n: usize, seed: u64) -> Dataset {
    let mut scm = Scm::new();
    scm.add_node(
        "age",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(discrete(&[(0, 0.35), (1, 0.4), (2, 0.25)])),
    )
    .unwrap();
    scm.add_node(
        "sex",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(discrete(&[(0, 0.55), (1, 0.45)])),
    )
    .unwrap();
    scm.add_node(
        "status",
        DataType::Int,
        &["age", "sex"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3, L2], 4, |p| {
                0.5 * p[0] as f64 + 0.3 * p[1] as f64 - 0.4
            }),
            default: discrete(&[(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]),
        },
    )
    .unwrap();
    scm.add_node(
        "credit_amount",
        DataType::Float,
        &["age", "sex"],
        Mechanism::LinearGaussian {
            // Wide support over the full [100, 10000] candidate range so
            // bucketized how-to candidates stay inside the observed data
            // (forests cannot extrapolate beyond it).
            intercept: 3600.0,
            coefs: vec![900.0, 500.0],
            noise_std: 2300.0,
            clamp: Some((100.0, 10_000.0)),
            round: false,
        },
    )
    .unwrap();
    scm.add_node(
        "credit",
        DataType::Str,
        &["status", "credit_amount"],
        Mechanism::Logistic {
            intercept: -1.8,
            coefs: vec![0.8, 0.0005],
            if_true: Value::str("Good"),
            if_false: Value::str("Bad"),
        },
    )
    .unwrap();
    let table = scm.sample("german_syn", n, seed).expect("valid scm");
    let mut db = Database::new();
    db.add_table(table).expect("fresh db");
    let graph = scm.to_causal_graph("german_syn");
    Dataset {
        name: "german-syn-cont",
        db,
        graph,
        scm: Some(scm),
    }
}

/// Simulated UCI German credit (1k rows): the Fig-8a schema with `status`,
/// `credit_history`, `housing`, `investment` plus demographics.
pub fn german(seed: u64) -> Dataset {
    let mut scm = Scm::new();
    scm.add_node(
        "age",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(discrete(&[(0, 0.3), (1, 0.45), (2, 0.25)])),
    )
    .unwrap();
    scm.add_node(
        "sex",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(discrete(&[(0, 0.69), (1, 0.31)])),
    )
    .unwrap();
    scm.add_node(
        "employment",
        DataType::Int,
        &["age"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3], 3, |p| 0.4 * p[0] as f64 - 0.3),
            default: discrete(&[(0, 0.34), (1, 0.33), (2, 0.33)]),
        },
    )
    .unwrap();
    scm.add_node(
        "status",
        DataType::Int,
        &["age", "employment"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3, L3], 4, |p| {
                0.35 * p[0] as f64 + 0.4 * p[1] as f64 - 0.5
            }),
            default: discrete(&[(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]),
        },
    )
    .unwrap();
    scm.add_node(
        "credit_history",
        DataType::Int,
        &["age"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3], 4, |p| 0.45 * p[0] as f64 - 0.3),
            default: discrete(&[(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]),
        },
    )
    .unwrap();
    scm.add_node(
        "housing",
        DataType::Int,
        &["age", "employment"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3, L3], 3, |p| {
                0.25 * p[0] as f64 + 0.2 * p[1] as f64 - 0.2
            }),
            default: discrete(&[(0, 0.34), (1, 0.33), (2, 0.33)]),
        },
    )
    .unwrap();
    scm.add_node(
        "investment",
        DataType::Int,
        &["employment"],
        Mechanism::DiscreteCpd {
            table: leveled_cpd(&[L3], 4, |p| 0.3 * p[0] as f64 - 0.2),
            default: discrete(&[(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]),
        },
    )
    .unwrap();
    // Status and credit history dominate; housing/investment are weak —
    // exactly the §5.3 finding ("updating these attributes to the maximum
    // value, more than 81% of the individuals have good credit … housing
    // and investment affect less than 20%").
    scm.add_node(
        "credit",
        DataType::Str,
        &["status", "credit_history", "housing", "investment"],
        Mechanism::DiscreteCpd {
            table: binary_cpd(
                &[L4, L4, L3, L4],
                Value::str("Good"),
                Value::str("Bad"),
                |p| {
                    -2.4 + 1.1 * p[0] as f64
                        + 0.9 * p[1] as f64
                        + 0.25 * p[2] as f64
                        + 0.15 * p[3] as f64
                },
            ),
            default: vec![(Value::str("Bad"), 1.0)],
        },
    )
    .unwrap();
    let table = scm.sample("german", 1000, seed).expect("valid scm");
    let mut db = Database::new();
    db.add_table(table).expect("fresh db");
    let graph = scm.to_causal_graph("german");
    Dataset {
        name: "german",
        db,
        graph,
        scm: Some(scm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_core::HyperSession;

    #[test]
    fn german_syn_shape_and_determinism() {
        let d1 = german_syn(2000, 5);
        let d2 = german_syn(2000, 5);
        let t1 = d1.db.table("german_syn").unwrap();
        let t2 = d2.db.table("german_syn").unwrap();
        assert_eq!(t1.num_rows(), 2000);
        assert_eq!(t1.column(0), t2.column(0));
        assert_eq!(t1.num_columns(), 7);
        assert!(d1.scm.is_some());
    }

    #[test]
    fn credit_is_mixed() {
        let d = german_syn(5000, 9);
        let t = d.db.table("german_syn").unwrap();
        let good = t
            .column_by_name("credit")
            .unwrap()
            .iter()
            .filter(|v| v.as_str() == Some("Good"))
            .count() as f64
            / 5000.0;
        assert!(
            (0.2..0.8).contains(&good),
            "P(good) = {good} should be non-degenerate"
        );
    }

    #[test]
    fn status_dominates_credit_in_ground_truth() {
        // Replay the Fig-8a/10a direction through the structural equations.
        let d = german(3);
        let scm = d.scm.as_ref().unwrap();
        let p_good = |attr: &str, value: i64| -> f64 {
            let (_, post) = scm
                .sample_paired(
                    "g",
                    8000,
                    77,
                    &[hyper_causal::Intervention::new(
                        attr,
                        hyper_causal::InterventionOp::Set(Value::Int(value)),
                    )],
                    None,
                )
                .unwrap();
            post.column_by_name("credit")
                .unwrap()
                .iter()
                .filter(|v| v.as_str() == Some("Good"))
                .count() as f64
                / 8000.0
        };
        let status_gap = p_good("status", 3) - p_good("status", 0);
        let history_gap = p_good("credit_history", 3) - p_good("credit_history", 0);
        let housing_gap = p_good("housing", 2) - p_good("housing", 0);
        let investment_gap = p_good("investment", 3) - p_good("investment", 0);
        assert!(status_gap > housing_gap, "{status_gap} vs {housing_gap}");
        assert!(status_gap > investment_gap);
        assert!(history_gap > housing_gap);
        assert!(status_gap > 0.3, "status must matter a lot: {status_gap}");
        assert!(
            housing_gap < 0.25,
            "housing must matter little: {housing_gap}"
        );
    }

    #[test]
    fn engine_runs_on_german_syn() {
        let d = german_syn(4000, 21);
        let engine = HyperSession::new(d.db.clone(), Some(&d.graph));
        let r = engine
            .whatif_text(
                "Use german_syn Update(status) = 3
                 Output Count(Post(credit) = 'Good')",
            )
            .unwrap();
        assert!(r.value > 0.0 && r.value <= 4000.0);
        // A valid adjustment set must be chosen: non-empty (the graph is
        // confounded) and never containing the treatment or the outcome.
        // Both {age, sex} and {savings, housing, credit_amount} are valid
        // minimal sets here; the greedy shrink may land on either.
        assert!(!r.backdoor.is_empty());
        assert!(!r.backdoor.iter().any(|c| c == "status" || c == "credit"));
    }

    #[test]
    fn continuous_variant_has_float_amounts() {
        let d = german_syn_continuous(1000, 13);
        let t = d.db.table("german_syn").unwrap();
        let amounts = t.column_by_name("credit_amount").unwrap();
        assert!(amounts.iter().any(|v| matches!(v, Value::Float(_))));
        let distinct: std::collections::HashSet<_> =
            amounts.iter().map(|v| v.to_string()).collect();
        assert!(distinct.len() > 100, "continuous attribute expected");
    }
}
