//! Simulated Amazon product database (paper Figure 1): a `product` relation
//! and a `review` relation linked by a foreign key, generated under the
//! Figure-2 causal graph.
//!
//! Qualitative calibration (§5.3): ratings fall as price rises relative to
//! the category's typical price, with brand-dependent sensitivity ordered
//! Apple > Dell > Toshiba > Acer > Asus, and sentiment tracks quality.

use hyper_causal::{amazon_example_graph, CausalGraph};
#[cfg(test)]
use hyper_storage::Value;
use hyper_storage::{DataType, Database, Field, ForeignKey, Schema, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Dataset;

const CATEGORIES: &[(&str, f64, &[&str])] = &[
    (
        "Laptop",
        800.0,
        &["Apple", "Dell", "Toshiba", "Acer", "Asus", "Vaio", "HP"],
    ),
    ("DSLR Camera", 600.0, &["Canon", "Nikon", "Sony"]),
    ("Phone", 500.0, &["Apple", "Samsung", "Sony"]),
    ("eBook", 15.0, &["Fantasy Press", "Penguin"]),
];

const COLORS: &[&str] = &["Black", "Silver", "Blue", "Red", "White"];

/// Brand quality premium and price-sensitivity of ratings (the §5.3
/// ordering: Apple reacts most to price cuts).
fn brand_params(brand: &str) -> (f64, f64) {
    match brand {
        "Apple" => (0.25, 2.2),
        "Dell" => (0.15, 1.9),
        "Toshiba" => (0.10, 1.7),
        "Acer" => (0.05, 1.55),
        "Asus" => (0.08, 1.45),
        "Vaio" => (0.12, 1.3),
        "HP" => (0.10, 1.3),
        "Canon" => (0.15, 1.2),
        "Nikon" => (0.12, 1.2),
        "Sony" => (0.14, 1.2),
        _ => (0.0, 1.0),
    }
}

/// Generate `n_products` products with ~`reviews_per_product` reviews each.
pub fn amazon(n_products: usize, reviews_per_product: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);

    let mut product = TableBuilder::with_key(
        "product",
        Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("category", DataType::Str),
            Field::new("price", DataType::Float),
            Field::new("brand", DataType::Str),
            Field::new("color", DataType::Str),
            Field::new("quality", DataType::Float),
        ])
        .expect("static schema"),
        &["pid"],
    )
    .expect("key exists");
    let mut review = TableBuilder::with_key(
        "review",
        Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("review_id", DataType::Int),
            Field::new("sentiment", DataType::Float),
            Field::new("rating", DataType::Int),
        ])
        .expect("static schema"),
        &["review_id"],
    )
    .expect("key exists");

    let mut review_id = 0i64;
    for pid in 0..n_products as i64 {
        let (category, base_price, brands) = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
        let brand = brands[rng.gen_range(0..brands.len())];
        let color = COLORS[rng.gen_range(0..COLORS.len())];
        let (premium, sensitivity) = brand_params(brand);
        // quality ← brand (+ category baseline) + noise
        let quality = (0.5 + premium + 0.1 * rng.gen::<f64>() - 0.05).clamp(0.05, 0.95);
        // price ← category, brand, quality, color
        let color_markup = if color == "Red" { 0.02 } else { 0.0 };
        let price = (base_price
            * (0.6 + 0.8 * quality + premium + color_markup)
            * (0.85 + 0.3 * rng.gen::<f64>()))
        .max(5.0);
        product
            .push(vec![
                pid.into(),
                category.into(),
                price.into(),
                brand.into(),
                color.into(),
                quality.into(),
            ])
            .expect("schema-conforming row");

        let n_rev = 1 + rng.gen_range(0..reviews_per_product.max(1) * 2);
        for _ in 0..n_rev {
            // sentiment ← quality
            let sentiment = (2.0 * quality - 1.0 + 0.6 * (rng.gen::<f64>() - 0.5)).clamp(-1.0, 1.0);
            // rating ← sentiment, quality, relative price (brand-sensitive).
            let rel_price = price / base_price - 1.0;
            let score = 4.05 + 1.4 * sentiment + 0.9 * (quality - 0.5)
                - sensitivity * rel_price.clamp(-1.0, 1.5)
                + 0.5 * (rng.gen::<f64>() - 0.5);
            let rating = (score.round() as i64).clamp(1, 5);
            review
                .push(vec![
                    pid.into(),
                    review_id.into(),
                    sentiment.into(),
                    rating.into(),
                ])
                .expect("schema-conforming row");
            review_id += 1;
        }
    }

    let mut db = Database::new();
    db.add_table(product.build()).expect("fresh db");
    db.add_table(review.build()).expect("fresh db");
    db.add_foreign_key(ForeignKey {
        child_table: "review".into(),
        child_columns: vec!["pid".into()],
        parent_table: "product".into(),
        parent_columns: vec!["pid".into()],
    })
    .expect("valid fk");

    Dataset {
        name: "amazon",
        db,
        graph: amazon_graph(),
        scm: None,
    }
}

/// The Figure-2 causal graph (re-exported so callers need not know it lives
/// in `hyper-causal`).
pub fn amazon_graph() -> CausalGraph {
    amazon_example_graph()
}

/// The literal Figure-1 toy database (5 products, 6 reviews), for examples
/// and documentation.
pub fn amazon_figure1() -> Dataset {
    let mut product = TableBuilder::with_key(
        "product",
        Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("category", DataType::Str),
            Field::new("price", DataType::Float),
            Field::new("brand", DataType::Str),
            Field::new("color", DataType::Str),
            Field::new("quality", DataType::Float),
        ])
        .expect("static schema"),
        &["pid"],
    )
    .expect("key exists");
    for (pid, cat, price, brand, color, q) in [
        (1, "Laptop", 999.0, "Vaio", "Silver", 0.7),
        (2, "Laptop", 529.0, "Asus", "Black", 0.65),
        (3, "Laptop", 599.0, "HP", "Silver", 0.5),
        (4, "DSLR Camera", 549.0, "Canon", "Black", 0.75),
        (5, "Sci Fi eBooks", 15.99, "Fantasy Press", "Blue", 0.4),
    ] {
        product
            .push(vec![
                pid.into(),
                cat.into(),
                price.into(),
                brand.into(),
                color.into(),
                q.into(),
            ])
            .expect("schema-conforming row");
    }
    let mut review = TableBuilder::with_key(
        "review",
        Schema::new(vec![
            Field::new("pid", DataType::Int),
            Field::new("review_id", DataType::Int),
            Field::new("sentiment", DataType::Float),
            Field::new("rating", DataType::Int),
        ])
        .expect("static schema"),
        &["pid", "review_id"],
    )
    .expect("key exists");
    for (pid, rid, s, r) in [
        (1, 1, -0.95, 2),
        (2, 2, 0.7, 4),
        (2, 3, -0.2, 1),
        (3, 3, 0.23, 3),
        (3, 5, 0.95, 5),
        (4, 5, 0.7, 4),
    ] {
        review
            .push(vec![pid.into(), rid.into(), s.into(), r.into()])
            .expect("schema-conforming row");
    }
    let mut db = Database::new();
    db.add_table(product.build()).expect("fresh db");
    db.add_table(review.build()).expect("fresh db");
    db.add_foreign_key(ForeignKey {
        child_table: "review".into(),
        child_columns: vec!["pid".into()],
        parent_table: "product".into(),
        parent_columns: vec!["pid".into()],
    })
    .expect("valid fk");
    Dataset {
        name: "amazon-figure1",
        db,
        graph: amazon_graph(),
        scm: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_fk_integrity() {
        let d = amazon(500, 9, 4);
        let products = d.db.table("product").unwrap();
        let reviews = d.db.table("review").unwrap();
        assert_eq!(products.num_rows(), 500);
        assert!(reviews.num_rows() > 500, "multiple reviews per product");
        // All review pids exist.
        let pids: std::collections::HashSet<i64> = products
            .column_by_name("pid")
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        for v in reviews.column_by_name("pid").unwrap().iter() {
            assert!(pids.contains(&v.as_i64().unwrap()));
        }
        products.check_key_unique().unwrap();
        reviews.check_key_unique().unwrap();
    }

    #[test]
    fn ratings_fall_with_relative_price() {
        // Within laptops, the top price tercile should rate worse than the
        // bottom tercile (the §5.3 percentile experiment's direction).
        let d = amazon(1500, 9, 8);
        let products = d.db.table("product").unwrap();
        let reviews = d.db.table("review").unwrap();
        let mut price_of = std::collections::HashMap::new();
        for i in 0..products.num_rows() {
            if products.column(1).value(i).as_str() == Some("Laptop") {
                price_of.insert(
                    products.column(0).value(i).as_i64().unwrap(),
                    products.column(2).value(i).as_f64().unwrap(),
                );
            }
        }
        let mut prices: Vec<f64> = price_of.values().copied().collect();
        prices.sort_by(f64::total_cmp);
        let lo_cut = prices[prices.len() / 3];
        let hi_cut = prices[2 * prices.len() / 3];
        let (mut lo_sum, mut lo_n, mut hi_sum, mut hi_n) = (0.0, 0, 0.0, 0);
        for i in 0..reviews.num_rows() {
            let pid = reviews.column(0).value(i).as_i64().unwrap();
            let Some(&p) = price_of.get(&pid) else {
                continue;
            };
            let r = reviews.column(3).value(i).as_f64().unwrap();
            if p <= lo_cut {
                lo_sum += r;
                lo_n += 1;
            } else if p >= hi_cut {
                hi_sum += r;
                hi_n += 1;
            }
        }
        let lo_avg = lo_sum / lo_n as f64;
        let hi_avg = hi_sum / hi_n as f64;
        assert!(
            lo_avg > hi_avg + 0.1,
            "cheap laptops {lo_avg:.2} vs expensive {hi_avg:.2}"
        );
    }

    #[test]
    fn figure1_matches_paper() {
        let d = amazon_figure1();
        assert_eq!(d.db.table("product").unwrap().num_rows(), 5);
        assert_eq!(d.db.table("review").unwrap().num_rows(), 6);
        assert_eq!(
            d.db.table("product").unwrap().column(3).value(1),
            Value::str("Asus")
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = amazon(100, 5, 42);
        let b = amazon(100, 5, 42);
        assert_eq!(
            a.db.table("product").unwrap().column(2),
            b.db.table("product").unwrap().column(2)
        );
    }
}
