//! Student-Syn (paper §5.1): a two-relation synthetic dataset — student
//! demographics/attendance plus per-course participation — "generated
//! keeping in mind the effect of attendance on class discussions,
//! announcements and grade", with roots age/gender/country.
//!
//! Calibration targets from §5.4/§5.5:
//! * the single-attribute how-to that maximizes average grade picks
//!   **attendance** (largest total causal effect);
//! * among students who read announcements and attend a lot, **assignment**
//!   updates move the grade most (attendance saturates);
//! * Fig. 10b's what-if per-attribute ordering follows the structural
//!   coefficients below.

use hyper_causal::scm::{Mechanism, Scm};
use hyper_causal::{CausalGraph, EdgeKind};
use hyper_storage::{DataType, Database, Field, ForeignKey, Schema, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Dataset;

/// Student-level (flat) SCM: one unit per student, participation attributes
/// at their per-course expected values. Used for interventional ground
/// truth (Fig. 10b).
pub fn student_flat_scm() -> Scm {
    let mut scm = Scm::new();
    scm.add_node(
        "age",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(vec![
            (Value::Int(0), 0.4),
            (Value::Int(1), 0.35),
            (Value::Int(2), 0.25),
        ]),
    )
    .unwrap();
    scm.add_node(
        "gender",
        DataType::Str,
        &[],
        Mechanism::CategoricalPrior(vec![(Value::str("F"), 0.5), (Value::str("M"), 0.5)]),
    )
    .unwrap();
    scm.add_node(
        "country",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(vec![
            (Value::Int(0), 0.5),
            (Value::Int(1), 0.3),
            (Value::Int(2), 0.2),
        ]),
    )
    .unwrap();
    scm.add_node(
        "attendance",
        DataType::Float,
        &["age", "country"],
        Mechanism::LinearGaussian {
            intercept: 45.0,
            coefs: vec![5.0, 4.0],
            noise_std: 14.0,
            clamp: Some((0.0, 100.0)),
            round: false,
        },
    )
    .unwrap();
    scm.add_node(
        "discussion",
        DataType::Float,
        &["attendance"],
        Mechanism::LinearGaussian {
            intercept: 8.0,
            coefs: vec![0.5],
            noise_std: 9.0,
            clamp: Some((0.0, 100.0)),
            round: false,
        },
    )
    .unwrap();
    scm.add_node(
        "announcements",
        DataType::Float,
        &["attendance"],
        Mechanism::LinearGaussian {
            intercept: 12.0,
            coefs: vec![0.45],
            noise_std: 9.0,
            clamp: Some((0.0, 100.0)),
            round: false,
        },
    )
    .unwrap();
    scm.add_node(
        "hand_raised",
        DataType::Float,
        &["discussion"],
        Mechanism::LinearGaussian {
            intercept: 15.0,
            coefs: vec![0.3],
            noise_std: 8.0,
            clamp: Some((0.0, 100.0)),
            round: false,
        },
    )
    .unwrap();
    scm.add_node(
        "assignment",
        DataType::Float,
        &["attendance"],
        Mechanism::LinearGaussian {
            intercept: 45.0,
            coefs: vec![0.2],
            noise_std: 15.0,
            clamp: Some((0.0, 100.0)),
            round: false,
        },
    )
    .unwrap();
    // Grade: assignment is the strongest *direct* input, attendance has the
    // largest *total* effect (direct + via discussion/announcements/
    // assignment).
    scm.add_node(
        "grade",
        DataType::Float,
        &[
            "assignment",
            "discussion",
            "announcements",
            "hand_raised",
            "attendance",
        ],
        Mechanism::LinearGaussian {
            intercept: 5.0,
            coefs: vec![0.45, 0.18, 0.12, 0.05, 0.25],
            noise_std: 5.0,
            clamp: Some((0.0, 100.0)),
            round: false,
        },
    )
    .unwrap();
    scm
}

/// The two-relation causal graph (FK edges from student attendance into the
/// participation attributes).
pub fn student_graph() -> CausalGraph {
    let mut g = CausalGraph::new();
    let age = g.node("student", "age");
    let country = g.node("student", "country");
    let _gender = g.node("student", "gender");
    let attendance = g.node("student", "attendance");
    let discussion = g.node("participation", "discussion");
    let announcements = g.node("participation", "announcements");
    let hand_raised = g.node("participation", "hand_raised");
    let assignment = g.node("participation", "assignment");
    let grade = g.node("participation", "grade");

    g.add_edge(age, attendance, EdgeKind::Intra).unwrap();
    g.add_edge(country, attendance, EdgeKind::Intra).unwrap();
    g.add_edge(attendance, discussion, EdgeKind::ForeignKey)
        .unwrap();
    g.add_edge(attendance, announcements, EdgeKind::ForeignKey)
        .unwrap();
    g.add_edge(attendance, assignment, EdgeKind::ForeignKey)
        .unwrap();
    g.add_edge(attendance, grade, EdgeKind::ForeignKey).unwrap();
    g.add_edge(discussion, hand_raised, EdgeKind::Intra)
        .unwrap();
    g.add_edge(discussion, grade, EdgeKind::Intra).unwrap();
    g.add_edge(announcements, grade, EdgeKind::Intra).unwrap();
    g.add_edge(hand_raised, grade, EdgeKind::Intra).unwrap();
    g.add_edge(assignment, grade, EdgeKind::Intra).unwrap();
    g
}

/// Generate Student-Syn: `n_students` students, `courses` participation
/// rows each (paper: 10k students × 5 courses = 50k rows).
pub fn student_syn(n_students: usize, courses: usize, seed: u64) -> Dataset {
    let scm = student_flat_scm();
    let flat = scm.sample("flat", n_students, seed).expect("valid scm");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x5eed));

    let mut student = TableBuilder::with_key(
        "student",
        Schema::new(vec![
            Field::new("sid", DataType::Int),
            Field::new("age", DataType::Int),
            Field::new("gender", DataType::Str),
            Field::new("country", DataType::Int),
            Field::new("attendance", DataType::Float),
        ])
        .expect("static schema"),
        &["sid"],
    )
    .expect("key exists");
    let mut participation = TableBuilder::with_key(
        "participation",
        Schema::new(vec![
            Field::new("sid", DataType::Int),
            Field::new("course", DataType::Int),
            Field::new("discussion", DataType::Float),
            Field::new("announcements", DataType::Float),
            Field::new("hand_raised", DataType::Float),
            Field::new("assignment", DataType::Float),
            Field::new("grade", DataType::Float),
        ])
        .expect("static schema"),
        &["sid", "course"],
    )
    .expect("key exists");

    let col = |name: &str| flat.schema().index_of(name).expect("flat schema");
    let (c_age, c_gender, c_country, c_att) =
        (col("age"), col("gender"), col("country"), col("attendance"));
    let (c_disc, c_ann, c_hand, c_assign, c_grade) = (
        col("discussion"),
        col("announcements"),
        col("hand_raised"),
        col("assignment"),
        col("grade"),
    );

    for s in 0..n_students {
        student
            .push(vec![
                (s as i64).into(),
                flat.column(c_age).value(s),
                flat.column(c_gender).value(s),
                flat.column(c_country).value(s),
                flat.column(c_att).value(s),
            ])
            .expect("schema-conforming row");
        for course in 0..courses as i64 {
            // Per-course realizations scatter around the student-level mean.
            let jitter = |mean: f64, sd: f64, rng: &mut StdRng| -> f64 {
                (mean + sd * (rng.gen::<f64>() - 0.5) * 2.0).clamp(0.0, 100.0)
            };
            let disc = jitter(flat.column(c_disc).f64_at(s).unwrap(), 6.0, &mut rng);
            let ann = jitter(flat.column(c_ann).f64_at(s).unwrap(), 6.0, &mut rng);
            let hand = jitter(flat.column(c_hand).f64_at(s).unwrap(), 5.0, &mut rng);
            let assign = jitter(flat.column(c_assign).f64_at(s).unwrap(), 8.0, &mut rng);
            let grade = jitter(flat.column(c_grade).f64_at(s).unwrap(), 4.0, &mut rng);
            participation
                .push(vec![
                    (s as i64).into(),
                    course.into(),
                    disc.into(),
                    ann.into(),
                    hand.into(),
                    assign.into(),
                    grade.into(),
                ])
                .expect("schema-conforming row");
        }
    }

    let mut db = Database::new();
    db.add_table(student.build()).expect("fresh db");
    db.add_table(participation.build()).expect("fresh db");
    db.add_foreign_key(ForeignKey {
        child_table: "participation".into(),
        child_columns: vec!["sid".into()],
        parent_table: "student".into(),
        parent_columns: vec!["sid".into()],
    })
    .expect("valid fk");

    Dataset {
        name: "student-syn",
        db,
        graph: student_graph(),
        scm: Some(scm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_causal::{Intervention, InterventionOp};

    #[test]
    fn shape_and_keys() {
        let d = student_syn(200, 5, 7);
        assert_eq!(d.db.table("student").unwrap().num_rows(), 200);
        assert_eq!(d.db.table("participation").unwrap().num_rows(), 1000);
        d.db.table("participation")
            .unwrap()
            .check_key_unique()
            .unwrap();
    }

    #[test]
    fn attendance_has_largest_total_effect_on_grade() {
        let scm = student_flat_scm();
        let effect = |attr: &str| -> f64 {
            let (pre, post) = scm
                .sample_paired(
                    "f",
                    8000,
                    99,
                    &[Intervention::new(
                        attr,
                        InterventionOp::Set(Value::Float(95.0)),
                    )],
                    None,
                )
                .unwrap();
            let g = |t: &hyper_storage::Table| {
                t.column_by_name("grade")
                    .unwrap()
                    .iter()
                    .map(|v| v.as_f64().unwrap())
                    .sum::<f64>()
                    / t.num_rows() as f64
            };
            g(&post) - g(&pre)
        };
        let att = effect("attendance");
        let assign = effect("assignment");
        let disc = effect("discussion");
        let hand = effect("hand_raised");
        assert!(
            att > assign,
            "attendance {att:.2} vs assignment {assign:.2}"
        );
        assert!(
            assign > disc,
            "assignment {assign:.2} vs discussion {disc:.2}"
        );
        assert!(disc > hand);
    }

    #[test]
    fn assignment_dominates_for_high_attendance_students() {
        // §5.3's complex what-if: condition on announcement-readers with
        // high attendance.
        let scm = student_flat_scm();
        let cond = |row: &[Value]| -> bool {
            // attendance is node 3, announcements node 5 in declaration order.
            row[3].as_f64().unwrap() > 75.0 && row[5].as_f64().unwrap() > 40.0
        };
        let effect = |attr: &str| -> f64 {
            let (pre, post) = scm
                .sample_paired(
                    "f",
                    20_000,
                    101,
                    &[Intervention::new(
                        attr,
                        InterventionOp::Set(Value::Float(95.0)),
                    )],
                    Some(&cond),
                )
                .unwrap();
            let mut dsum = 0.0;
            let mut n = 0usize;
            let gi = 8; // grade index
            let pre_row =
                |i: usize| -> Vec<Value> { (0..9).map(|c| pre.column(c).value(i)).collect() };
            for i in 0..pre.num_rows() {
                if cond(&pre_row(i)) {
                    dsum += post.column(gi).f64_at(i).unwrap() - pre.column(gi).f64_at(i).unwrap();
                    n += 1;
                }
            }
            dsum / n as f64
        };
        let att = effect("attendance");
        let assign = effect("assignment");
        assert!(
            assign > att,
            "conditioned on high attendance, assignment {assign:.2} must beat attendance {att:.2}"
        );
    }

    #[test]
    fn graph_and_blocks() {
        let d = student_syn(50, 3, 11);
        let blocks = hyper_causal::BlockDecomposition::compute(&d.db, &d.graph).unwrap();
        // Each student + their participation rows form one block: 50 blocks.
        assert_eq!(blocks.num_blocks(), 50);
    }
}
