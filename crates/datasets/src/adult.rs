//! Simulated UCI Adult income dataset (32k rows, 13 attributes).
//!
//! Reproduces the causal structure the paper uses (Chiappa \[11\]) and the
//! §5.3 finding: marital status has an outsized causal effect on reported
//! income ("married individuals report total household income"), with
//! occupation and education next and workclass far weaker (Fig. 8b).

use std::collections::HashMap;

use hyper_causal::scm::{Mechanism, Scm};
use hyper_storage::{DataType, Database, Value};

use crate::Dataset;

fn cats(vals: &[(&str, f64)]) -> Vec<(Value, f64)> {
    vals.iter().map(|&(v, p)| (Value::str(v), p)).collect()
}

/// The Adult SCM: demographics → marital/education → occupation/class →
/// income, plus noise attributes (hours, capital gain/loss, fnlwgt) that
/// pad the schema to the UCI width.
fn build_adult_scm() -> Scm {
    let mut scm = Scm::new();
    // -- roots --
    scm.add_node(
        "age",
        DataType::Int,
        &[],
        Mechanism::CategoricalPrior(vec![
            (Value::Int(0), 0.30),
            (Value::Int(1), 0.45),
            (Value::Int(2), 0.25),
        ]),
    )
    .unwrap();
    scm.add_node(
        "sex",
        DataType::Str,
        &[],
        Mechanism::CategoricalPrior(cats(&[("Male", 0.67), ("Female", 0.33)])),
    )
    .unwrap();
    scm.add_node(
        "race",
        DataType::Str,
        &[],
        Mechanism::CategoricalPrior(cats(&[("White", 0.85), ("Black", 0.10), ("Other", 0.05)])),
    )
    .unwrap();
    scm.add_node(
        "native_country",
        DataType::Str,
        &[],
        Mechanism::CategoricalPrior(cats(&[("US", 0.90), ("Other", 0.10)])),
    )
    .unwrap();
    let mut edu = HashMap::new();
    for a in 0..3i64 {
        let tilt = 0.05 * a as f64;
        edu.insert(
            vec![Value::Int(a)],
            vec![
                (Value::Int(0), 0.42 - tilt),
                (Value::Int(1), 0.28),
                (Value::Int(2), 0.20 + tilt / 2.0),
                (Value::Int(3), 0.10 + tilt / 2.0),
            ],
        );
    }
    scm.add_node(
        "education",
        DataType::Int,
        &["age"],
        Mechanism::DiscreteCpd {
            table: edu,
            default: vec![
                (Value::Int(0), 0.4),
                (Value::Int(1), 0.3),
                (Value::Int(2), 0.2),
                (Value::Int(3), 0.1),
            ],
        },
    )
    .unwrap();
    let mut marital = HashMap::new();
    for a in 0..3i64 {
        for s in ["Male", "Female"] {
            let p_married = match a {
                0 => 0.25,
                1 => 0.55,
                _ => 0.60,
            } + if s == "Male" { 0.05 } else { -0.05 };
            let p_div = match a {
                0 => 0.05,
                1 => 0.15,
                _ => 0.20,
            };
            marital.insert(
                vec![Value::Int(a), Value::str(s)],
                vec![
                    (Value::str("Married"), p_married),
                    (Value::str("Divorced"), p_div),
                    (Value::str("Never-married"), 1.0 - p_married - p_div),
                ],
            );
        }
    }
    scm.add_node(
        "marital",
        DataType::Str,
        &["age", "sex"],
        Mechanism::DiscreteCpd {
            table: marital,
            default: cats(&[
                ("Married", 0.46),
                ("Divorced", 0.14),
                ("Never-married", 0.40),
            ]),
        },
    )
    .unwrap();
    let mut occ = HashMap::new();
    for e in 0..4i64 {
        let tilt = 0.6 * e as f64;
        let weights: Vec<f64> = (0..4)
            .map(|o| ((o as f64 - 1.5) * tilt * 0.5).exp())
            .collect();
        let z: f64 = weights.iter().sum();
        occ.insert(
            vec![Value::Int(e)],
            (0..4)
                .map(|o| (Value::Int(o), weights[o as usize] / z))
                .collect(),
        );
    }
    scm.add_node(
        "occupation",
        DataType::Int,
        &["education"],
        Mechanism::DiscreteCpd {
            table: occ,
            default: vec![
                (Value::Int(0), 0.25),
                (Value::Int(1), 0.25),
                (Value::Int(2), 0.25),
                (Value::Int(3), 0.25),
            ],
        },
    )
    .unwrap();
    let mut class = HashMap::new();
    for o in 0..4i64 {
        let p_gov = 0.10 + 0.02 * o as f64;
        let p_self = 0.08 + 0.03 * o as f64;
        class.insert(
            vec![Value::Int(o)],
            vec![
                (Value::str("Private"), 1.0 - p_gov - p_self),
                (Value::str("Gov"), p_gov),
                (Value::str("Self-emp"), p_self),
            ],
        );
    }
    scm.add_node(
        "class",
        DataType::Str,
        &["occupation"],
        Mechanism::DiscreteCpd {
            table: class,
            default: cats(&[("Private", 0.75), ("Gov", 0.13), ("Self-emp", 0.12)]),
        },
    )
    .unwrap();
    scm.add_node(
        "hours",
        DataType::Float,
        &["occupation"],
        Mechanism::LinearGaussian {
            intercept: 36.0,
            coefs: vec![2.0],
            noise_std: 8.0,
            clamp: Some((5.0, 90.0)),
            round: true,
        },
    )
    .unwrap();
    scm.add_node(
        "capital_gain",
        DataType::Float,
        &["education"],
        Mechanism::LinearGaussian {
            intercept: 200.0,
            coefs: vec![400.0],
            noise_std: 900.0,
            clamp: Some((0.0, 60_000.0)),
            round: true,
        },
    )
    .unwrap();
    scm.add_node(
        "capital_loss",
        DataType::Float,
        &[],
        Mechanism::LinearGaussian {
            intercept: 60.0,
            coefs: vec![],
            noise_std: 150.0,
            clamp: Some((0.0, 4_000.0)),
            round: true,
        },
    )
    .unwrap();
    scm.add_node(
        "fnlwgt",
        DataType::Float,
        &[],
        Mechanism::LinearGaussian {
            intercept: 190_000.0,
            coefs: vec![],
            noise_std: 60_000.0,
            clamp: Some((10_000.0, 900_000.0)),
            round: true,
        },
    )
    .unwrap();
    // Income as a discrete CPD over (marital, education, occupation, class,
    // age): calibrated so P(>50K | do(Married)) ≈ 0.38 and
    // P(>50K | do(Never-married/Divorced)) < 0.10 (§5.3).
    let mut income = HashMap::new();
    for m in ["Married", "Divorced", "Never-married"] {
        for e in 0..4i64 {
            for o in 0..4i64 {
                for c in ["Private", "Gov", "Self-emp"] {
                    for a in 0..3i64 {
                        let score = -3.6
                            + if m == "Married" { 1.9 } else { 0.0 }
                            + 0.45 * e as f64
                            + 0.35 * o as f64
                            + if c == "Self-emp" { 0.2 } else { 0.0 }
                            + 0.25 * a as f64;
                        let p = 1.0 / (1.0 + (-score).exp());
                        income.insert(
                            vec![
                                Value::str(m),
                                Value::Int(e),
                                Value::Int(o),
                                Value::str(c),
                                Value::Int(a),
                            ],
                            vec![(Value::str("<=50K"), 1.0 - p), (Value::str(">50K"), p)],
                        );
                    }
                }
            }
        }
    }
    scm.add_node(
        "income",
        DataType::Str,
        &["marital", "education", "occupation", "class", "age"],
        Mechanism::DiscreteCpd {
            table: income,
            default: cats(&[("<=50K", 0.76), (">50K", 0.24)]),
        },
    )
    .unwrap();
    scm
}

/// Simulated Adult dataset with `n` rows (paper uses 32k).
pub fn adult(n: usize, seed: u64) -> Dataset {
    let scm = build_adult_scm();
    let table = scm.sample("adult", n, seed).expect("valid scm");
    let mut db = Database::new();
    db.add_table(table).expect("fresh db");
    let graph = scm.to_causal_graph("adult");
    Dataset {
        name: "adult",
        db,
        graph,
        scm: Some(scm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_causal::{Intervention, InterventionOp};

    #[test]
    fn shape_and_marginals() {
        let d = adult(10_000, 1);
        let t = d.db.table("adult").unwrap();
        assert_eq!(t.num_rows(), 10_000);
        assert_eq!(t.num_columns(), 13);
        let hi = t
            .column_by_name("income")
            .unwrap()
            .iter()
            .filter(|v| v.as_str() == Some(">50K"))
            .count() as f64
            / 10_000.0;
        assert!(
            (0.15..0.40).contains(&hi),
            "baseline P(>50K) = {hi} out of the plausible band"
        );
    }

    #[test]
    fn marital_effect_matches_paper_numbers() {
        // §5.3: "38% of the individuals have more than 50K salary [if all
        // married] … if all unmarried or divorced, less than 9%".
        let d = adult(1000, 2);
        let scm = d.scm.as_ref().unwrap();
        let p_hi = |status: &str| -> f64 {
            let (_, post) = scm
                .sample_paired(
                    "a",
                    12_000,
                    50,
                    &[Intervention::new(
                        "marital",
                        InterventionOp::Set(Value::str(status)),
                    )],
                    None,
                )
                .unwrap();
            post.column_by_name("income")
                .unwrap()
                .iter()
                .filter(|v| v.as_str() == Some(">50K"))
                .count() as f64
                / 12_000.0
        };
        let married = p_hi("Married");
        let never = p_hi("Never-married");
        assert!(
            (0.30..0.46).contains(&married),
            "do(Married) → {married}, expected ≈ 0.38"
        );
        assert!(
            never < 0.12,
            "do(Never-married) → {never}, expected < 0.09-ish"
        );
    }

    #[test]
    fn class_effect_is_weak() {
        let d = adult(1000, 3);
        let scm = d.scm.as_ref().unwrap();
        let p_hi = |class: &str| -> f64 {
            let (_, post) = scm
                .sample_paired(
                    "a",
                    12_000,
                    51,
                    &[Intervention::new(
                        "class",
                        InterventionOp::Set(Value::str(class)),
                    )],
                    None,
                )
                .unwrap();
            post.column_by_name("income")
                .unwrap()
                .iter()
                .filter(|v| v.as_str() == Some(">50K"))
                .count() as f64
                / 12_000.0
        };
        let gap = (p_hi("Self-emp") - p_hi("Private")).abs();
        assert!(gap < 0.08, "class gap {gap} should be small (Fig 8b)");
    }
}
