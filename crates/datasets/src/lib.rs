//! # hyper-datasets
//!
//! Workload generators for the HypeR reproduction (paper §5.1). Real
//! datasets (UCI Adult, UCI German credit, the Amazon product crawl) are
//! not redistributable/downloadable offline, so each is *simulated*: a
//! seeded structural causal model reproduces the schema, attribute domains
//! and the causal graphs the paper cites (Chiappa's graphs for Adult and
//! German \[11\]; Figure 2 for Amazon), with effect directions matching the
//! paper's qualitative findings (§5.3). Synthetic datasets (German-Syn,
//! Student-Syn) are generated exactly as the paper describes.
//!
//! Every generator returns a [`Dataset`]: the database, the causal graph,
//! and — when the data is single-relation (or has a flat per-unit view) —
//! the generating [`Scm`] for interventional ground truth.

#![warn(missing_docs)]

pub mod adult;
pub mod amazon;
pub mod german;
pub mod student;

use hyper_causal::{CausalGraph, Scm};
use hyper_storage::Database;

pub use adult::adult;
pub use amazon::amazon;
pub use german::{german, german_syn, german_syn_1m, german_syn_continuous, german_syn_extended};
pub use student::student_syn;

/// A generated workload: data + causal model (+ generating SCM when flat).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short identifier (e.g. `"german-syn"`).
    pub name: &'static str,
    /// The relational data.
    pub db: Database,
    /// Schema-level causal graph.
    pub graph: CausalGraph,
    /// The generating structural model, for ground-truth interventions
    /// (single-relation datasets only).
    pub scm: Option<Scm>,
}

impl Dataset {
    /// Total tuples across relations.
    pub fn total_rows(&self) -> usize {
        self.db.total_rows()
    }
}
