//! Bounded work submission with per-key fairness: the admission-control
//! primitive under `hyper-serve`.
//!
//! [`FairQueue`] is a blocking multi-producer / multi-consumer queue of
//! work items, each tagged with a *lane* key (a tenant id, a shard, …).
//! It differs from a plain bounded channel in two ways that matter for a
//! multi-tenant server:
//!
//! 1. **Bounded submission** — the queue holds at most `capacity` items
//!    across all lanes. [`FairQueue::try_push`] never blocks: when the
//!    queue is full the item is returned to the caller ([`QueueFull`]),
//!    which is what lets a server shed load with a typed `503` instead
//!    of letting every slow client grow an unbounded backlog.
//! 2. **Per-lane fairness** — [`FairQueue::pop`] services lanes
//!    round-robin, not in global FIFO order. A tenant that floods the
//!    queue with hundreds of requests cannot starve a tenant that
//!    submitted one: each pop takes the front item of the *next*
//!    non-empty lane after the previously served one.
//!
//! [`FairQueue::close`] starts a graceful drain: further pushes are
//! refused ([`PushError::Closed`]) while consumers keep popping until
//! every queued item has been handed out, after which `pop` returns
//! `None` and workers can exit. Nothing admitted before the close is
//! lost.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`FairQueue::try_push`] refused an item; the item is handed back
/// so the caller can respond to its originator.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the request (e.g. HTTP 503).
    Full(QueueFull<T>),
    /// The queue is closed — the server is draining for shutdown.
    Closed(T),
}

/// The rejected item plus the queue state that caused the rejection.
#[derive(Debug)]
pub struct QueueFull<T> {
    /// The item that was not admitted.
    pub item: T,
    /// Queue capacity at rejection time.
    pub capacity: usize,
}

struct Lane<T> {
    key: String,
    items: VecDeque<T>,
}

struct State<T> {
    /// Lanes in creation order; `cursor` indexes the lane served last.
    lanes: Vec<Lane<T>>,
    cursor: usize,
    len: usize,
    closed: bool,
}

/// A bounded, closeable MPMC queue with round-robin fairness across
/// string-keyed lanes. See the module docs.
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for FairQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("FairQueue")
            .field("capacity", &self.capacity)
            .field("len", &s.len)
            .field("lanes", &s.lanes.len())
            .field("closed", &s.closed)
            .finish()
    }
}

impl<T> FairQueue<T> {
    /// A queue admitting at most `capacity` items at a time (clamped to
    /// ≥ 1 — a zero-capacity queue could never hand work to a consumer).
    pub fn new(capacity: usize) -> FairQueue<T> {
        FairQueue {
            state: Mutex::new(State {
                lanes: Vec::new(),
                cursor: 0,
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued across all lanes.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).len
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit `item` on lane `key`, or hand it back without blocking.
    pub fn try_push(&self, key: &str, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.len >= self.capacity {
            return Err(PushError::Full(QueueFull {
                item,
                capacity: self.capacity,
            }));
        }
        match s.lanes.iter_mut().find(|l| l.key == key) {
            Some(lane) => lane.items.push_back(item),
            None => s.lanes.push(Lane {
                key: key.to_string(),
                items: VecDeque::from([item]),
            }),
        }
        s.len += 1;
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the next item, blocking while the queue is open and empty.
    /// Lanes are served round-robin: the search starts at the lane after
    /// the one served last. Returns `None` once the queue is closed
    /// *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if s.len > 0 {
                let n = s.lanes.len();
                let start = s.cursor;
                for step in 1..=n {
                    let i = (start + step) % n;
                    if let Some(item) = s.lanes[i].items.pop_front() {
                        s.cursor = i;
                        s.len -= 1;
                        return Some(item);
                    }
                }
                unreachable!("len > 0 implies a non-empty lane");
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: refuse new pushes, let consumers drain what was
    /// admitted, then release them (`pop` → `None`).
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.closed = true;
        drop(s);
        self.ready.notify_all();
    }

    /// True once [`FairQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_hands_the_item_back() {
        let q = FairQueue::new(2);
        q.try_push("a", 1).unwrap();
        q.try_push("a", 2).unwrap();
        match q.try_push("a", 3) {
            Err(PushError::Full(f)) => {
                assert_eq!(f.item, 3);
                assert_eq!(f.capacity, 2);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        q.try_push("a", 4).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn lanes_are_served_round_robin() {
        let q = FairQueue::new(16);
        // Tenant "hog" floods; tenant "small" submits one item last.
        for i in 0..6 {
            q.try_push("hog", ("hog", i)).unwrap();
        }
        q.try_push("small", ("small", 0)).unwrap();
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        // Round-robin alternates lanes: "small" is served within the
        // first two pops despite arriving behind six "hog" items.
        assert!(
            first.0 == "small" || second.0 == "small",
            "fair pop must not starve the small lane: got {first:?}, {second:?}"
        );
    }

    #[test]
    fn close_drains_then_releases_consumers() {
        let q = Arc::new(FairQueue::new(8));
        q.try_push("a", 1).unwrap();
        q.try_push("b", 2).unwrap();
        q.close();
        assert!(matches!(q.try_push("a", 3), Err(PushError::Closed(3))));
        let mut drained = vec![q.pop().unwrap(), q.pop().unwrap()];
        drained.sort();
        assert_eq!(drained, vec![1, 2]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_on_close() {
        let q = Arc::new(FairQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push("a", 7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![7]);
    }

    #[test]
    fn many_producers_one_consumer_delivers_everything() {
        let q = Arc::new(FairQueue::<usize>::new(1024));
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..50 {
                        q.try_push(&format!("t{t}"), t * 100 + i).unwrap();
                    }
                });
            }
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                q.close();
            });
            let mut got = Vec::new();
            while let Some(v) = q.pop() {
                got.push(v);
            }
            got.sort();
            let mut want: Vec<usize> = (0..4)
                .flat_map(|t| (0..50).map(move |i| t * 100 + i))
                .collect();
            want.sort();
            assert_eq!(got, want);
        });
    }
}
