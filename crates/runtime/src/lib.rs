//! The shared execution runtime: one persistent worker pool per process
//! (or per [`HyperRuntime`] instance) that every parallel code path in the
//! workspace routes through — session batch execution, how-to candidate
//! fan-out, and random-forest training.
//!
//! Before this crate existed each of those paths spawned throwaway
//! `std::thread::scope` threads per call, and nested fan-outs (a batch of
//! how-to queries, each fanning out candidates, each training a forest)
//! had to guard against spawning `P²` threads. The runtime replaces that
//! with **fixed worker threads and a shared injector queue**:
//!
//! * [`HyperRuntime::for_each_parallel`] runs a scoped parallel-for. The
//!   *calling thread participates* — it claims task indices from the same
//!   atomic cursor the workers do — so the primitive is safe to call from
//!   inside a task (nested jobs are helped to completion, never waited on
//!   from an idle thread), and a zero-worker runtime degrades to a plain
//!   sequential loop. Total live threads never exceed the pool size,
//!   however deeply fan-outs nest.
//! * [`HyperRuntime::join`] runs two closures potentially in parallel and
//!   returns both results.
//!
//! Determinism is the caller's contract: tasks receive their index and
//! must derive any randomness from it (see the forest trainer, which
//! seeds one RNG per tree from `(seed, tree_index)`), so results are
//! bit-identical whatever the worker count — including zero.
//!
//! [`HyperRuntime::global`] returns the process-wide pool (sized to the
//! machine, overridable with the `HYPER_RUNTIME_WORKERS` environment
//! variable); [`HyperRuntime::with_workers`] builds private pools for
//! tests and benchmarks. Handles are cheap to clone; worker threads shut
//! down when the last handle to their pool drops.
//!
//! ```
//! use hyper_runtime::HyperRuntime;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let rt = HyperRuntime::with_workers(2);
//! let sum = AtomicU64::new(0);
//! rt.for_each_parallel(100, |i| {
//!     sum.fetch_add(i as u64, Ordering::Relaxed);
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 4950);
//!
//! let (a, b) = rt.join(|| 2 + 2, || "fast".len());
//! assert_eq!((a, b), (4, 4));
//! ```

pub mod queue;

pub use queue::{FairQueue, PushError, QueueFull};

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One scoped parallel-for in flight: a lifetime-erased task closure plus
/// the claim cursor and completion latch. The erased reference is only
/// dereferenced while the submitting call frame is alive —
/// `for_each_parallel` does not return before `remaining` hits zero, and
/// exhausted jobs are dropped from the queue, so no worker can start a
/// task after the closure is gone.
struct Job {
    /// The task body; `'static` here is a lie guarded by the scoped-wait
    /// protocol above.
    task: &'static (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Total number of task indices.
    total: usize,
    /// Tasks claimed but not yet finished plus tasks never claimed.
    remaining: AtomicUsize,
    /// First panic payload observed in any task.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Signals `remaining == 0` (paired with `panic`'s mutex).
    done: Condvar,
}

impl Job {
    /// True when every index has been claimed (the job can leave the
    /// queue; stragglers are tracked by `remaining`).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// Claim-and-run loop shared by workers and the submitting caller.
    fn run(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.task)(i)));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                slot.get_or_insert(payload);
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task: wake the submitter. Lock the latch mutex so
                // the notify cannot race between its check and its wait.
                let _guard = self.panic.lock().unwrap_or_else(|e| e.into_inner());
                self.done.notify_all();
            }
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work: Condvar,
    workers: usize,
    shutdown: AtomicBool,
    /// Live external handles; the last one to drop stops the workers.
    handles: AtomicUsize,
    join_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A handle to a persistent worker pool. Cheap to clone (clones share the
/// pool); the pool's threads exit when the last handle drops. See the
/// crate docs for the execution model.
pub struct HyperRuntime {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for HyperRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HyperRuntime")
            .field("workers", &self.shared.workers)
            .finish()
    }
}

impl Clone for HyperRuntime {
    fn clone(&self) -> HyperRuntime {
        self.shared.handles.fetch_add(1, Ordering::Relaxed);
        HyperRuntime {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for HyperRuntime {
    fn drop(&mut self) {
        if self.shared.handles.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        // Last handle: stop the workers and wait for them to exit (each
        // finishes its current task first; queued jobs have no live
        // submitter once every handle is gone).
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        let handles = std::mem::take(
            &mut *self
                .shared
                .join_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job: Arc<Job> = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // Drop fully-claimed jobs from the front; their stragglers
                // are tracked by the submitter, not the queue.
                while queue.front().is_some_and(|j| j.exhausted()) {
                    queue.pop_front();
                }
                if let Some(job) = queue.iter().find(|j| !j.exhausted()) {
                    break Arc::clone(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.work.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.run();
    }
}

/// The process-wide pool, created on first use.
static GLOBAL: OnceLock<HyperRuntime> = OnceLock::new();

impl HyperRuntime {
    /// A pool with exactly `workers` background threads (plus the calling
    /// thread, which always participates in its own jobs). Zero workers is
    /// valid: every primitive then runs inline on the caller.
    pub fn with_workers(workers: usize) -> HyperRuntime {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            workers,
            shutdown: AtomicBool::new(false),
            handles: AtomicUsize::new(1),
            join_handles: Mutex::new(Vec::with_capacity(workers)),
        });
        let mut joins = Vec::with_capacity(workers);
        for i in 0..workers {
            let s = Arc::clone(&shared);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("hyper-runtime-{i}"))
                    .spawn(move || worker_loop(s))
                    .expect("spawn runtime worker"),
            );
        }
        *shared
            .join_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = joins;
        HyperRuntime { shared }
    }

    /// The process-wide runtime. Sized to `available_parallelism − 1`
    /// background workers (the submitting thread is the final lane), so
    /// a single-core machine runs everything inline; override with the
    /// `HYPER_RUNTIME_WORKERS` environment variable (read once, at first
    /// use).
    pub fn global() -> &'static HyperRuntime {
        GLOBAL.get_or_init(|| {
            let workers = std::env::var("HYPER_RUNTIME_WORKERS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|p| p.get().saturating_sub(1))
                        .unwrap_or(0)
                });
            HyperRuntime::with_workers(workers)
        })
    }

    /// Number of background worker threads (the caller is always an
    /// additional lane).
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Run `f(0..n)` across the pool and the calling thread, returning
    /// when every call has finished. Tasks may run in any order and on any
    /// thread; derive per-task state from the index, never from shared
    /// mutable position. Panics in tasks are forwarded to the caller after
    /// the whole job has drained (first payload wins).
    ///
    /// Safe to call from inside a task on the same runtime: the inner call
    /// is helped to completion by its own caller, so nesting cannot
    /// deadlock and never grows the thread count.
    pub fn for_each_parallel<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        if self.shared.workers == 0 || n == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        // Carry the submitter's trace context (if any) into the pool:
        // worker threads attach it around each task so per-morsel work
        // is attributed to the submitting query's trace, while the
        // participating caller (which already carries it) runs tasks
        // directly. `None` (tracing disabled) adds no per-task cost.
        let trace_ctx = hyper_trace::current_context();
        let traced = move |i: usize| match &trace_ctx {
            Some(ctx) => ctx.attach(|| f(i)),
            None => f(i),
        };
        let task: &(dyn Fn(usize) + Sync) = &traced;
        // SAFETY: the job is removed from every worker's reach before this
        // frame returns — `run()` below claims indices until exhaustion,
        // and the wait loop only exits once `remaining == 0`, i.e. after
        // the last borrow of `f` ended.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task,
            next: AtomicUsize::new(0),
            total: n,
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
            done: Condvar::new(),
        });
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(Arc::clone(&job));
        }
        self.shared.work.notify_all();
        // The caller is a full participant.
        job.run();
        // Wait for tasks claimed by workers but still running.
        let mut guard = job.panic.lock().unwrap_or_else(|e| e.into_inner());
        while job.remaining.load(Ordering::Acquire) > 0 {
            guard = job.done.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        if let Some(payload) = guard.take() {
            drop(guard);
            resume_unwind(payload);
        }
    }

    /// Run `f` over `0..items` split into contiguous chunks of
    /// `chunk_size` (the final chunk may be shorter), one pool task per
    /// chunk, returning when every chunk has finished. This is the
    /// morsel-loop primitive: a scan over a million rows pays one queue
    /// push per chunk, not one per row, and each task receives the whole
    /// row range so it can run a tight vectorized kernel over it.
    ///
    /// Chunk boundaries depend only on `(items, chunk_size)` — never on
    /// the worker count — so a caller that merges per-chunk results in
    /// chunk order gets bit-identical output on any pool, including a
    /// zero-worker pool (which degrades to a sequential loop in chunk
    /// order). Panics and nesting behave as in
    /// [`for_each_parallel`](HyperRuntime::for_each_parallel).
    pub fn for_each_chunked<F>(&self, items: usize, chunk_size: usize, f: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        if items == 0 {
            return;
        }
        let chunk = chunk_size.max(1);
        let chunks = items.div_ceil(chunk);
        self.for_each_parallel(chunks, |c| {
            let start = c * chunk;
            let end = (start + chunk).min(items);
            f(start..end);
        });
    }

    /// Run two closures, potentially in parallel, and return both results.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let a = Mutex::new(Some(a));
        let b = Mutex::new(Some(b));
        let ra: Mutex<Option<RA>> = Mutex::new(None);
        let rb: Mutex<Option<RB>> = Mutex::new(None);
        self.for_each_parallel(2, |i| {
            if i == 0 {
                let f = a.lock().unwrap_or_else(|e| e.into_inner()).take();
                let r = f.expect("join slot 0 claimed once")();
                *ra.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            } else {
                let f = b.lock().unwrap_or_else(|e| e.into_inner()).take();
                let r = f.expect("join slot 1 claimed once")();
                *rb.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            }
        });
        (
            ra.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("join slot 0 filled"),
            rb.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("join slot 1 filled"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_worker_pool_runs_inline() {
        let rt = HyperRuntime::with_workers(0);
        let mut hits = [false; 17];
        let cells: Vec<Mutex<bool>> = (0..17).map(|_| Mutex::new(false)).collect();
        rt.for_each_parallel(17, |i| *cells[i].lock().unwrap() = true);
        for (i, c) in cells.iter().enumerate() {
            hits[i] = *c.lock().unwrap();
        }
        assert!(hits.iter().all(|&h| h));
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let rt = HyperRuntime::with_workers(3);
        let counts: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        rt.for_each_parallel(1000, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_jobs_complete_without_deadlock() {
        let rt = HyperRuntime::with_workers(2);
        let total = AtomicU64::new(0);
        rt.for_each_parallel(8, |_| {
            rt.for_each_parallel(8, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 28);
    }

    #[test]
    fn deeply_nested_jobs_on_one_worker() {
        let rt = HyperRuntime::with_workers(1);
        let total = AtomicU64::new(0);
        rt.for_each_parallel(3, |_| {
            rt.for_each_parallel(3, |_| {
                rt.for_each_parallel(3, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 27);
    }

    #[test]
    fn task_panics_propagate_after_drain() {
        let rt = HyperRuntime::with_workers(2);
        let ran = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            rt.for_each_parallel(32, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the submitter");
        // The pool survives a panicking job.
        let after = AtomicU64::new(0);
        rt.for_each_parallel(4, |_| {
            after.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn chunked_covers_every_index_once_with_uneven_tail() {
        for workers in [0, 1, 3] {
            let rt = HyperRuntime::with_workers(workers);
            for (items, chunk) in [(10, 3), (1, 5), (64, 64), (1000, 7), (5, 1)] {
                let counts: Vec<AtomicU64> = (0..items).map(|_| AtomicU64::new(0)).collect();
                rt.for_each_chunked(items, chunk, |range| {
                    assert!(range.end - range.start <= chunk);
                    for i in range {
                        counts[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "items={items} chunk={chunk} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn chunked_handles_zero_items_and_zero_chunk_size() {
        let rt = HyperRuntime::with_workers(1);
        rt.for_each_chunked(0, 8, |_| panic!("no chunks expected"));
        // A zero chunk size is clamped to 1 instead of looping forever.
        let n = AtomicU64::new(0);
        rt.for_each_chunked(3, 0, |r| {
            n.fetch_add((r.end - r.start) as u64, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn join_returns_both_results() {
        let rt = HyperRuntime::with_workers(2);
        let (a, b) = rt.join(|| (0..100u64).sum::<u64>(), || "x".repeat(3));
        assert_eq!(a, 4950);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn clones_share_the_pool_and_drop_cleans_up() {
        let rt = HyperRuntime::with_workers(2);
        let rt2 = rt.clone();
        assert_eq!(rt2.workers(), 2);
        drop(rt);
        let sum = AtomicU64::new(0);
        rt2.for_each_parallel(10, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
        // Dropping the last handle joins the workers (no hang = pass).
        drop(rt2);
    }

    #[test]
    fn trace_context_propagates_to_workers() {
        use hyper_trace::{span, with_trace, Phase, TraceTree};
        for workers in [0, 2] {
            let rt = HyperRuntime::with_workers(workers);
            let tree = TraceTree::new();
            with_trace(&tree, || {
                let _root = span(Phase::Execute);
                rt.for_each_parallel(16, |_| {
                    let _s = span(Phase::ForestTrain);
                });
            });
            let snap = tree.snapshot();
            assert_eq!(
                snap.count(Phase::ForestTrain),
                16,
                "every task attributed (workers={workers})"
            );
            assert_eq!(snap.count(Phase::Execute), 1);
        }
    }

    #[test]
    fn many_concurrent_submitters() {
        let rt = HyperRuntime::with_workers(2);
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    rt.for_each_parallel(100, |i| {
                        total.fetch_add(i as u64, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 4950);
    }
}
