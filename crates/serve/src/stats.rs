//! Server-side counters: what the admission layer did to every request,
//! per tenant and in aggregate — the server half of `/stats` (the other
//! half is each tenant session's consistent
//! [`SessionStats`](hyper_core::SessionStats) snapshot).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hyper_trace::{HistogramSnapshot, LatencyHistogram, Phase};

use crate::json::Json;

/// The admitted routes — everything that takes a queue slot and runs on
/// an executor. Inline routes (`/stats`, `/health`, `/metrics`) are not
/// here on purpose: they never queue, so they have no queue-wait to
/// measure, and measuring them would perturb exactly the signal they
/// exist to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `POST /query`.
    Query,
    /// `POST /explain`.
    Explain,
    /// `POST /ingest`.
    Ingest,
}

impl Route {
    /// Every admitted route, in label order.
    pub const ALL: [Route; 3] = [Route::Query, Route::Explain, Route::Ingest];

    /// The metric/JSON label for this route.
    pub fn name(self) -> &'static str {
        match self {
            Route::Query => "query",
            Route::Explain => "explain",
            Route::Ingest => "ingest",
        }
    }
}

/// The two latency stages of one admitted route, split at the moment an
/// executor pops the job: time spent waiting in the admission queue vs
/// time spent executing. Recording is two relaxed atomic adds per
/// stage — always on, never sampled.
#[derive(Debug, Default)]
pub struct RouteLatency {
    /// Admission-to-pop wait, in nanoseconds.
    pub queue_wait: LatencyHistogram,
    /// Pop-to-answer execution time, in nanoseconds.
    pub execute: LatencyHistogram,
}

/// Admission counters for one tenant (or, summed, for the server).
/// All counters are cumulative except [`TenantCounters::in_flight`],
/// which is a gauge of requests admitted but not yet answered.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests admitted to the queue.
    pub accepted: AtomicU64,
    /// Requests refused with 503 because the queue was full.
    pub shed: AtomicU64,
    /// Admitted requests whose caller gave up with a 504 before the
    /// executor finished (the execution still completes and populates
    /// caches — the session is never poisoned).
    pub timeouts: AtomicU64,
    /// Admitted requests executed to completion (any status).
    pub completed: AtomicU64,
    /// Completed requests that answered 2xx.
    pub ok: AtomicU64,
    /// Admitted requests currently queued or executing.
    pub in_flight: AtomicU64,
    /// Per-route queue-wait/execute histograms, indexed by `Route`.
    pub latency: [RouteLatency; 3],
}

impl TenantCounters {
    /// The latency histograms for `route`.
    pub fn latency(&self, route: Route) -> &RouteLatency {
        &self.latency[route as usize]
    }

    fn to_json(&self) -> Vec<(&'static str, Json)> {
        let mut latency = BTreeMap::new();
        for route in Route::ALL {
            let l = self.latency(route);
            let (queue_wait, execute) = (l.queue_wait.snapshot(), l.execute.snapshot());
            if queue_wait.count() == 0 && execute.count() == 0 {
                continue;
            }
            latency.insert(
                route.name().to_string(),
                Json::obj([
                    ("queue_wait", histogram_json(&queue_wait)),
                    ("execute", histogram_json(&execute)),
                ]),
            );
        }
        vec![
            ("accepted", self.accepted.load(Ordering::Relaxed).into()),
            ("shed", self.shed.load(Ordering::Relaxed).into()),
            ("timeouts", self.timeouts.load(Ordering::Relaxed).into()),
            ("completed", self.completed.load(Ordering::Relaxed).into()),
            ("ok", self.ok.load(Ordering::Relaxed).into()),
            ("in_flight", self.in_flight.load(Ordering::Relaxed).into()),
            ("latency", Json::obj_sorted(latency)),
        ]
    }
}

/// Render one histogram snapshot (values recorded in nanoseconds) as a
/// percentile object in microseconds.
pub fn histogram_json(h: &HistogramSnapshot) -> Json {
    let us = |ns: f64| ns / 1_000.0;
    let mean = if h.count() == 0 {
        0.0
    } else {
        h.sum() as f64 / h.count() as f64
    };
    Json::obj([
        ("count", h.count().into()),
        ("mean_us", us(mean).into()),
        ("p50_us", us(h.p50()).into()),
        ("p90_us", us(h.p90()).into()),
        ("p99_us", us(h.p99()).into()),
        ("p999_us", us(h.p999()).into()),
    ])
}

/// All server counters: global request/connection totals plus one
/// [`TenantCounters`] per tenant id that has been seen on `/query` or
/// `/explain`. Only *registered* tenants get an entry — requests naming
/// unknown tenants are counted globally (`not_found`), so hostile
/// traffic cannot grow the map without bound.
#[derive(Debug)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections currently open.
    pub connections_open: AtomicU64,
    /// Requests parsed off connections (any path).
    pub requests: AtomicU64,
    /// Malformed HTTP requests answered with a typed 4xx.
    pub malformed: AtomicU64,
    /// Requests for unknown paths or unknown tenants (404s).
    pub not_found: AtomicU64,
    /// When the stats (and therefore the server) came up.
    pub started: Instant,
    per_tenant: Mutex<BTreeMap<String, Arc<TenantCounters>>>,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats {
            connections: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            not_found: AtomicU64::new(0),
            started: Instant::now(),
            per_tenant: Mutex::new(BTreeMap::new()),
        }
    }
}

impl ServerStats {
    /// Time since the server came up.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The counters for `tenant`, created on first touch.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantCounters> {
        let mut map = self.per_tenant.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(tenant.to_string()).or_default())
    }

    /// Per-tenant counters snapshot, sorted by tenant id.
    pub fn tenants(&self) -> Vec<(String, Arc<TenantCounters>)> {
        let map = self.per_tenant.lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Sum a counter across tenants.
    pub fn total(&self, pick: impl Fn(&TenantCounters) -> &AtomicU64) -> u64 {
        let map = self.per_tenant.lock().unwrap_or_else(|e| e.into_inner());
        map.values().map(|c| pick(c).load(Ordering::Relaxed)).sum()
    }

    /// The `"server"` object of the `/stats` response.
    pub fn server_json(&self, queue_len: usize, queue_capacity: usize, workers: usize) -> Json {
        Json::obj([
            (
                "connections",
                self.connections.load(Ordering::Relaxed).into(),
            ),
            (
                "connections_open",
                self.connections_open.load(Ordering::Relaxed).into(),
            ),
            ("requests", self.requests.load(Ordering::Relaxed).into()),
            ("malformed", self.malformed.load(Ordering::Relaxed).into()),
            ("not_found", self.not_found.load(Ordering::Relaxed).into()),
            ("accepted", self.total(|c| &c.accepted).into()),
            ("shed", self.total(|c| &c.shed).into()),
            ("timeouts", self.total(|c| &c.timeouts).into()),
            ("completed", self.total(|c| &c.completed).into()),
            ("in_flight", self.total(|c| &c.in_flight).into()),
            ("queue_len", queue_len.into()),
            ("queue_capacity", queue_capacity.into()),
            ("workers", workers.into()),
        ])
    }

    /// One tenant's `/stats` entry: admission counters plus (when the
    /// tenant's session is loaded) its consistent session snapshot.
    pub fn tenant_json(
        &self,
        tenant: &str,
        loaded: Option<(u64, hyper_core::SessionStats)>,
    ) -> Json {
        let counters = self.tenant(tenant);
        let mut fields = counters.to_json();
        match loaded {
            Some((snapshot_loads, s)) => {
                fields.push(("loaded", true.into()));
                fields.push(("snapshot_loads", snapshot_loads.into()));
                fields.push(("session", session_json(&s)));
            }
            None => fields.push(("loaded", false.into())),
        }
        Json::obj(fields)
    }
}

/// Render a consistent [`SessionStats`](hyper_core::SessionStats)
/// snapshot (taken via `HyperSession::snapshot()`).
pub fn session_json(s: &hyper_core::SessionStats) -> Json {
    // Phase totals come from the same stabilized snapshot as the cache
    // counters, so a query landing mid-read never shows torn totals
    // (e.g. a phase sum exceeding `trace_total_ns`).
    let mut phases = BTreeMap::new();
    for phase in Phase::ALL {
        let (ns, n) = (s.phase_ns(phase), s.phase_count(phase));
        if ns == 0 && n == 0 {
            continue;
        }
        phases.insert(
            phase.name().to_string(),
            Json::obj([("self_ns", ns.into()), ("count", n.into())]),
        );
    }
    Json::obj([
        ("view_hits", s.view_hits.into()),
        ("view_misses", s.view_misses.into()),
        ("view_shared_hits", s.view_shared_hits.into()),
        ("view_disk_hits", s.view_disk_hits.into()),
        ("estimator_hits", s.estimator_hits.into()),
        ("estimator_misses", s.estimator_misses.into()),
        ("estimator_shared_hits", s.estimator_shared_hits.into()),
        ("estimator_disk_hits", s.estimator_disk_hits.into()),
        ("block_hits", s.block_hits.into()),
        ("block_misses", s.block_misses.into()),
        ("block_shared_hits", s.block_shared_hits.into()),
        ("views_cached", s.views_cached.into()),
        ("estimators_cached", s.estimators_cached.into()),
        ("queries_prepared", s.queries_prepared.into()),
        ("queries_executed", s.queries_executed.into()),
        ("texts_parsed", s.texts_parsed.into()),
        ("views_invalidated", s.views_invalidated.into()),
        ("estimators_invalidated", s.estimators_invalidated.into()),
        ("blocks_invalidated", s.blocks_invalidated.into()),
        ("refreshes", s.refreshes.into()),
        ("data_version", s.data_version.into()),
        ("trainings_streamed", s.trainings_streamed.into()),
        ("train_chunks_streamed", s.train_chunks_streamed.into()),
        (
            "train_peak_resident_bytes",
            s.train_peak_resident_bytes.into(),
        ),
        ("paging_loads", s.paging_loads.into()),
        ("paging_hits", s.paging_hits.into()),
        ("paging_evictions", s.paging_evictions.into()),
        ("traced_queries", s.traced_queries.into()),
        ("trace_total_ns", s.trace_total_ns.into()),
        ("phases", Json::obj_sorted(phases)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tenant_counters_are_shared_and_summed() {
        let stats = ServerStats::default();
        stats.tenant("a").accepted.fetch_add(2, Ordering::Relaxed);
        stats.tenant("b").accepted.fetch_add(3, Ordering::Relaxed);
        stats.tenant("a").shed.fetch_add(1, Ordering::Relaxed);
        assert_eq!(stats.total(|c| &c.accepted), 5);
        assert_eq!(stats.total(|c| &c.shed), 1);
        let names: Vec<String> = stats.tenants().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
        let json = stats.server_json(0, 8, 2).render();
        assert!(json.contains("\"accepted\":5"));
        assert!(json.contains("\"queue_capacity\":8"));
    }

    #[test]
    fn session_json_carries_training_and_paging_counters() {
        let s = hyper_core::SessionStats {
            trainings_streamed: 2,
            train_chunks_streamed: 44,
            train_peak_resident_bytes: 1024,
            paging_loads: 7,
            ..Default::default()
        };
        let json = session_json(&s).render();
        assert!(json.contains("\"trainings_streamed\":2"));
        assert!(json.contains("\"train_chunks_streamed\":44"));
        assert!(json.contains("\"train_peak_resident_bytes\":1024"));
        assert!(json.contains("\"paging_loads\":7"));
        assert!(json.contains("\"paging_hits\":0"));
        assert!(json.contains("\"paging_evictions\":0"));
    }
}
