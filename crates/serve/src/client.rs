//! A minimal blocking HTTP/1.1 client for the serve protocol — enough
//! for the integration tests, the qps bench, and the example to talk to
//! the server over a persistent connection without external crates.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::{self, Json};

/// A response as the client saw it.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `(lower-cased name, value)` response headers.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse the body as JSON.
    pub fn json(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| e.to_string())?;
        json::parse(text)
    }

    /// The body as UTF-8 text (for non-JSON routes like `/metrics`).
    pub fn text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| e.to_string())
    }
}

/// A persistent keep-alive connection to a server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(60))
    }

    /// Connect with an explicit read timeout (a hung server surfaces as
    /// an `Err`, not a stuck test).
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// One round-trip: send `method path` with an optional JSON body,
    /// read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> std::io::Result<ClientResponse> {
        let payload = body.map(Json::render).unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: hyper-serve\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            payload.len(),
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(payload.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// POST a `/query` (or `/explain`) protocol body.
    pub fn query(
        &mut self,
        path: &str,
        tenant: &str,
        query: &str,
        bindings: &[(&str, Json)],
    ) -> std::io::Result<ClientResponse> {
        let mut fields = vec![
            ("tenant".to_string(), Json::Str(tenant.to_string())),
            ("query".to_string(), Json::Str(query.to_string())),
        ];
        if !bindings.is_empty() {
            fields.push((
                "bindings".to_string(),
                Json::Obj(
                    bindings
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ));
        }
        self.request("POST", path, Some(&Json::Obj(fields)))
    }

    /// POST an `/ingest` body: append `rows` to `table` and/or delete
    /// the row indices in `deletes` (pass an empty slice to skip one).
    pub fn ingest(
        &mut self,
        tenant: &str,
        table: &str,
        rows: &[Vec<Json>],
        deletes: &[usize],
    ) -> std::io::Result<ClientResponse> {
        let mut fields = vec![
            ("tenant".to_string(), Json::Str(tenant.to_string())),
            ("table".to_string(), Json::Str(table.to_string())),
        ];
        if !rows.is_empty() {
            fields.push((
                "rows".to_string(),
                Json::Arr(rows.iter().map(|r| Json::Arr(r.clone())).collect()),
            ));
        }
        if !deletes.is_empty() {
            fields.push((
                "deletes".to_string(),
                Json::Arr(deletes.iter().map(|&i| i.into()).collect()),
            ));
        }
        self.request("POST", "/ingest", Some(&Json::Obj(fields)))
    }

    /// Send raw bytes down the connection (for malformed-input tests)
    /// and read whatever response comes back.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<ClientResponse> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad status line: {status_line:?}")))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad(format!("bad header: {line:?}")))?;
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("bad content-length"))?;
            }
            headers.push((name, value));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut raw = Vec::new();
        let n = self.reader.read_until(b'\n', &mut raw)?;
        if n == 0 {
            return Err(bad("server closed the connection"));
        }
        while matches!(raw.last(), Some(b'\n' | b'\r')) {
            raw.pop();
        }
        String::from_utf8(raw).map_err(|_| bad("non-UTF-8 response head"))
    }
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}
