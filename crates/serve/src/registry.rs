//! Tenant sessions over a [`SnapshotRegistry`]: lazy, single-flight
//! snapshot loading and a per-tenant prepared-query template cache.
//!
//! The registry directory maps tenant ids to `HYPR1` snapshot files
//! (see [`hyper_store::registry`]). Nothing is loaded at boot: a
//! tenant's snapshot is decoded and its [`HyperSession`] built on the
//! **first request that names it**, behind a per-tenant single-flight
//! lock — N concurrent first requests cause exactly one load (asserted
//! by the integration tests via the per-tenant `snapshot_loads`
//! counter). A failed load caches nothing; the next request retries.
//!
//! Loaded sessions participate in the process-wide shared artifact
//! store by default, so tenants whose snapshots hold content-identical
//! `(database, graph)` pairs share relevant views, block
//! decompositions, and fitted estimators — visible in `/stats` as
//! `*_shared_hits`. When the server is configured with a persist
//! directory, sessions also warm-start from the disk tier.
//!
//! Repeat queries hit the **prepared path**: each tenant keeps a map
//! from raw query text to its [`PreparedQuery`], so a query text seen
//! before skips parsing and view resolution entirely and goes straight
//! to the estimator cache (`Bindings` are applied per execution).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use hyper_core::{
    EngineConfig, EngineError, HyperSession, PreparedQuery, RefreshReport, Result as CoreResult,
};
use hyper_ingest::DeltaBatch;
use hyper_store::{AppendLog, SnapshotRegistry};

/// Cap on distinct prepared templates kept per tenant. Exceeding it
/// clears the map (a rare, self-healing event for workloads that
/// generate unbounded distinct query texts; artifact-level caches keep
/// the expensive state).
const MAX_PREPARED_PER_TENANT: usize = 256;

/// One loaded tenant: its current session version, the prepared-template
/// cache, and the durable delta log behind `POST /ingest`.
///
/// The session sits behind a `RwLock` so ingest can swap in the
/// refreshed version while queries keep cloning the current one (a
/// [`HyperSession`] is an `Arc` handle — clones are cheap and in-flight
/// executions simply finish against the version they started with,
/// MVCC-style).
pub struct Tenant {
    id: String,
    session: RwLock<HyperSession>,
    prepared: Mutex<HashMap<String, Arc<PreparedQuery>>>,
    /// Serializes ingests for this tenant and owns the append-log path.
    /// Queries are never blocked by this lock.
    ingest: Mutex<PathBuf>,
}

impl Tenant {
    /// The tenant id (the snapshot file stem).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The tenant's current session version (an owned `Arc` handle;
    /// later ingests do not retroactively change it).
    pub fn session(&self) -> HyperSession {
        self.session
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Apply a delta batch: refresh the session with causal
    /// invalidation, append the batch to the durable `HYPD1` log, and
    /// swap the refreshed session in. Ingests for one tenant are
    /// serialized; concurrent queries keep serving the prior version
    /// until the swap.
    ///
    /// Ordering: the log append happens only after the refresh has
    /// validated and applied the delta, and the in-memory swap happens
    /// only after the append has been fsync'd — a crash can lose the
    /// in-flight batch but never acknowledge one it didn't persist.
    pub fn ingest(&self, delta: &DeltaBatch) -> CoreResult<RefreshReport> {
        let log_path = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let out = self.session().refresh(delta)?;
        let log = AppendLog::open(&*log_path).map_err(|e| EngineError::Storage(e.to_string()))?;
        log.append(&delta.to_bytes())
            .map_err(|e| EngineError::Storage(e.to_string()))?;
        *self.session.write().unwrap_or_else(|e| e.into_inner()) = out.session;
        // Prepared templates captured the old session; drop them so the
        // next prepare binds the refreshed one.
        self.prepared
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        Ok(out.report)
    }

    /// The prepared query for `text`, preparing (parse + validate +
    /// view resolution) only on first sight of this exact text.
    pub fn prepared(&self, text: &str) -> CoreResult<Arc<PreparedQuery>> {
        if let Some(p) = self
            .prepared
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(text)
        {
            return Ok(Arc::clone(p));
        }
        // Prepare outside the lock: view builds can be slow and must not
        // serialize unrelated queries. A racing duplicate prepare is
        // harmless — the artifact cache single-flights the real work —
        // and the first insert wins.
        let p = Arc::new(self.session().prepare(text)?);
        let mut map = self.prepared.lock().unwrap_or_else(|e| e.into_inner());
        if map.len() >= MAX_PREPARED_PER_TENANT {
            map.clear();
        }
        Ok(Arc::clone(map.entry(text.to_string()).or_insert(p)))
    }

    /// Number of distinct templates currently cached.
    pub fn prepared_cached(&self) -> usize {
        self.prepared
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
}

/// Per-tenant single-flight slot: the init lock serializes loaders, the
/// cell is written once, and the loads counter records how many actual
/// snapshot decodes happened (1 in the happy path, +1 per failed retry).
#[derive(Default)]
struct TenantSlot {
    init: Mutex<()>,
    cell: OnceLock<Arc<Tenant>>,
    loads: AtomicU64,
}

/// Lazily-loaded tenant sessions over a snapshot registry directory.
pub struct Tenants {
    registry: SnapshotRegistry,
    persist_dir: Option<PathBuf>,
    slots: Mutex<HashMap<String, Arc<TenantSlot>>>,
}

/// Why a tenant could not be resolved.
#[derive(Debug)]
pub enum TenantError {
    /// The id is not in the registry (HTTP 404).
    Unknown(String),
    /// The snapshot exists but failed to load/validate (HTTP 500; the
    /// next request retries).
    Load(String),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::Unknown(id) => write!(f, "unknown tenant `{id}`"),
            TenantError::Load(msg) => write!(f, "tenant snapshot failed to load: {msg}"),
        }
    }
}

impl Tenants {
    /// Wrap a scanned registry. `persist_dir` adds the disk artifact
    /// tier to every tenant session (artifacts spill there and restarted
    /// servers warm-start from it).
    pub fn new(registry: SnapshotRegistry, persist_dir: Option<PathBuf>) -> Tenants {
        Tenants {
            registry,
            persist_dir,
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying path registry.
    pub fn registry(&self) -> &SnapshotRegistry {
        &self.registry
    }

    /// True when `id` is a registered tenant (loaded or not).
    pub fn contains(&self, id: &str) -> bool {
        self.registry.contains(id)
    }

    /// The already-loaded tenant, if any (never triggers a load).
    pub fn loaded(&self, id: &str) -> Option<Arc<Tenant>> {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.get(id).and_then(|s| s.cell.get().cloned())
    }

    /// Ids of tenants whose sessions are currently loaded, sorted.
    /// Never triggers a load.
    pub fn loaded_ids(&self) -> Vec<String> {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let mut ids: Vec<String> = slots
            .iter()
            .filter(|(_, s)| s.cell.get().is_some())
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        ids
    }

    /// Snapshot decodes performed for `id` so far (0 = not yet loaded).
    pub fn snapshot_loads(&self, id: &str) -> u64 {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots.get(id).map_or(0, |s| s.loads.load(Ordering::Relaxed))
    }

    /// Total snapshot decodes across tenants.
    pub fn total_snapshot_loads(&self) -> u64 {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots
            .values()
            .map(|s| s.loads.load(Ordering::Relaxed))
            .sum()
    }

    /// Resolve `id` to its loaded tenant, loading the snapshot and
    /// building the session on first touch (single-flight: concurrent
    /// callers for the same tenant block on one load).
    pub fn tenant(&self, id: &str) -> Result<Arc<Tenant>, TenantError> {
        if !self.registry.contains(id) {
            return Err(TenantError::Unknown(id.to_string()));
        }
        let slot = {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(slots.entry(id.to_string()).or_default())
        };
        if let Some(t) = slot.cell.get() {
            return Ok(Arc::clone(t));
        }
        let _guard = slot.init.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = slot.cell.get() {
            return Ok(Arc::clone(t));
        }
        slot.loads.fetch_add(1, Ordering::Relaxed);
        let snapshot = {
            // No-op unless an ambient trace context is installed (e.g. a
            // traced query triggering a lazy first-touch load).
            let _span = hyper_trace::span(hyper_trace::Phase::SnapshotLoad);
            self.registry
                .load(id)
                .map_err(|e| TenantError::Load(e.to_string()))?
        };
        // Plain HypeR needs the causal graph; graphless snapshots fall
        // back to HypeR-NB (canonical adjustment set, no graph needed).
        let config = if snapshot.graph.is_some() {
            EngineConfig::hyper()
        } else {
            EngineConfig::hyper_nb()
        };
        // Tenant sessions serve with tracing on: per-phase self-time
        // lands in `SessionStats` and surfaces on `/stats` and
        // `/metrics`. The cost is one relaxed load plus a small
        // allocation per query; results are bit-identical either way.
        let mut builder = HyperSession::builder(snapshot.database)
            .maybe_graph(snapshot.graph)
            .config(config)
            .tracing(true);
        if let Some(dir) = &self.persist_dir {
            builder = builder.persist_dir(dir.join(id));
        }
        let mut session = builder.build();
        // Replay the sidecar delta log (if any) over the snapshot: the
        // loaded session resumes at the latest ingested version, with
        // `data_version` = the number of intact log records.
        let log_path = self.registry.delta_log_path(id);
        if log_path.exists() {
            let log = AppendLog::open(&log_path).map_err(|e| TenantError::Load(e.to_string()))?;
            for payload in log.replay().map_err(|e| TenantError::Load(e.to_string()))? {
                let delta = DeltaBatch::from_bytes(&payload)
                    .map_err(|e| TenantError::Load(format!("delta log replay: {e}")))?;
                session = session
                    .refresh(&delta)
                    .map_err(|e| TenantError::Load(format!("delta log replay: {e}")))?
                    .session;
            }
        }
        let tenant = Arc::new(Tenant {
            id: id.to_string(),
            session: RwLock::new(session),
            prepared: Mutex::new(HashMap::new()),
            ingest: Mutex::new(log_path),
        });
        slot.cell
            .set(Arc::clone(&tenant))
            .unwrap_or_else(|_| unreachable!("slot is written under its init lock"));
        Ok(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::{DataType, Database, Field, Schema, TableBuilder};
    use hyper_store::Snapshot;

    fn registry_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hyper_serve_registry_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut db = Database::new();
        let t = TableBuilder::with_key(
            "items",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("price", DataType::Float),
            ])
            .unwrap(),
            &["id"],
        )
        .unwrap()
        .rows((0..50).map(|i| vec![i.into(), (i as f64).into()]))
        .unwrap()
        .build();
        db.add_table(t).unwrap();
        Snapshot::new(db, None).save(dir.join("t0.hypr")).unwrap();
        dir
    }

    #[test]
    fn concurrent_first_touch_loads_once() {
        let dir = registry_dir("once");
        let tenants = Arc::new(Tenants::new(SnapshotRegistry::open(&dir).unwrap(), None));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let tenants = Arc::clone(&tenants);
                s.spawn(move || {
                    tenants.tenant("t0").unwrap();
                });
            }
        });
        assert_eq!(tenants.snapshot_loads("t0"), 1, "single-flight load");
        assert!(matches!(
            tenants.tenant("nope"),
            Err(TenantError::Unknown(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeat_query_text_reuses_the_prepared_template() {
        let dir = registry_dir("prepared");
        let tenants = Tenants::new(SnapshotRegistry::open(&dir).unwrap(), None);
        let t = tenants.tenant("t0").unwrap();
        let q = "Use items Update(price) = 2.0 * Pre(price) Output Count(Post(price) > 10)";
        let a = t.prepared(q).unwrap();
        let b = t.prepared(q).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same text → same template");
        assert_eq!(t.session().snapshot().texts_parsed, 1);
        assert_eq!(t.prepared_cached(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
