//! Prometheus text exposition, hand-rolled for the offline build: a
//! small writer that renders the 0.0.4 text format and a strict
//! validator shared by the CI bench (which scrapes `GET /metrics` and
//! fails the run on malformed output).
//!
//! The writer is deliberately minimal — `# HELP`/`# TYPE` headers and
//! samples with escaped label values — because the server's metric set
//! is fixed and enumerable. The validator is stricter than real
//! Prometheus ingestion: every sample must belong to a family whose
//! `# TYPE` appeared earlier, types may not be redeclared, and values
//! must parse as floats. That strictness is the point — it turns a
//! renderer regression into a red CI job instead of a silently dropped
//! series.

use std::collections::BTreeMap;

/// Incremental renderer for the Prometheus text format.
///
/// ```
/// use hyper_serve::metrics::MetricsWriter;
/// let mut w = MetricsWriter::new();
/// w.header("up", "gauge", "1 while the server is alive");
/// w.sample("up", &[("tenant", "t0")], 1.0);
/// let text = w.finish();
/// assert!(text.contains("up{tenant=\"t0\"} 1"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsWriter {
    out: String,
}

impl MetricsWriter {
    /// An empty exposition.
    pub fn new() -> MetricsWriter {
        MetricsWriter::default()
    }

    /// Emit the `# HELP` and `# TYPE` lines for a metric family. Call
    /// once per family, before its samples.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        debug_assert!(valid_name(name), "invalid metric name `{name}`");
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Emit one sample. `name` may extend the family name (`_sum`,
    /// `_count` for summaries); floats render shortest-round-trip, so a
    /// scraper recovers the value bit-for-bit.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        if value.is_nan() {
            self.out.push_str("NaN");
        } else {
            self.out.push_str(&format!("{value}"));
        }
        self.out.push('\n');
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validate a text exposition. Returns the sorted metric family names
/// on success; on failure, an error naming the first offending line.
///
/// Checks, per line: comments are free-form but `# TYPE` must carry a
/// known kind and may not repeat; every sample's family (after
/// stripping a summary/histogram `_sum`/`_count`/`_bucket` suffix) must
/// have a preceding `# TYPE`; label pairs must be `name="escaped"`;
/// values must parse as `f64` (`NaN`/`+Inf`/`-Inf` included). An
/// exposition with zero samples is an error — a scrape that returns
/// only headers means the server rendered nothing.
pub fn validate(text: &str) -> Result<Vec<String>, String> {
    const KINDS: [&str; 5] = ["counter", "gauge", "summary", "histogram", "untyped"];
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or(format!("line {n}: TYPE without a name"))?;
                let kind = parts
                    .next()
                    .ok_or(format!("line {n}: TYPE without a kind"))?;
                if !valid_name(name) {
                    return Err(format!("line {n}: invalid metric name `{name}`"));
                }
                if !KINDS.contains(&kind) {
                    return Err(format!("line {n}: unknown metric type `{kind}`"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {n}: duplicate TYPE for `{name}`"));
                }
            }
            // HELP lines and free comments need no further checks.
            continue;
        }
        let (name, rest) = split_name(line).ok_or(format!("line {n}: malformed sample"))?;
        let rest = if let Some(after) = rest.strip_prefix('{') {
            parse_labels(after).ok_or(format!("line {n}: malformed labels"))?
        } else {
            rest
        };
        let value = rest.trim();
        if value.is_empty() || parse_value(value).is_none() {
            return Err(format!("line {n}: unparseable sample value `{value}`"));
        }
        let family = family_of(&name, &types);
        if !types.contains_key(&family) {
            return Err(format!("line {n}: sample `{name}` has no preceding TYPE"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition contains no samples".to_string());
    }
    Ok(types.into_keys().collect())
}

/// Split a sample line into `(metric name, remainder)`.
fn split_name(line: &str) -> Option<(String, &str)> {
    let end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    let name = &line[..end];
    if !valid_name(name) {
        return None;
    }
    Some((name.to_string(), &line[end..]))
}

/// Consume a `name="value",...}` label block; returns the text after
/// the closing brace, or `None` if the block is malformed.
fn parse_labels(mut s: &str) -> Option<&str> {
    loop {
        if let Some(rest) = s.strip_prefix('}') {
            return Some(rest);
        }
        let eq = s.find('=')?;
        if !valid_name(&s[..eq]) {
            return None;
        }
        s = s[eq + 1..].strip_prefix('"')?;
        // Scan the escaped string body.
        let mut escaped = false;
        let mut close = None;
        for (i, c) in s.char_indices() {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        s = &s[close? + 1..];
        s = s.strip_prefix(',').unwrap_or(s);
    }
}

fn parse_value(v: &str) -> Option<f64> {
    match v {
        "NaN" => Some(f64::NAN),
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        v => v.parse().ok(),
    }
}

/// The family a sample belongs to: summary/histogram children
/// (`_sum`, `_count`, `_bucket`) report under their parent's name.
fn family_of(name: &str, types: &BTreeMap<String, String>) -> String {
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if let Some(kind) = types.get(base) {
                if kind == "summary" || kind == "histogram" {
                    return base.to_string();
                }
            }
        }
    }
    name.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_validates_and_escapes_labels() {
        let mut w = MetricsWriter::new();
        w.header("requests_total", "counter", "requests seen");
        w.sample("requests_total", &[("tenant", "a\"b\\c")], 3.0);
        w.header("latency_seconds", "summary", "request latency");
        w.sample("latency_seconds", &[("quantile", "0.5")], 0.25);
        w.sample("latency_seconds_sum", &[], 1.5);
        w.sample("latency_seconds_count", &[], 6.0);
        let text = w.finish();
        assert!(text.contains("tenant=\"a\\\"b\\\\c\""), "{text}");
        let families = validate(&text).unwrap();
        assert_eq!(families, vec!["latency_seconds", "requests_total"]);
    }

    #[test]
    fn validator_rejects_untyped_and_malformed_samples() {
        assert!(
            validate("orphan_metric 1\n").is_err(),
            "sample without TYPE"
        );
        assert!(
            validate("# TYPE m counter\nm notanumber\n").is_err(),
            "bad value"
        );
        assert!(
            validate("# TYPE m wat\nm 1\n").is_err(),
            "unknown metric kind"
        );
        assert!(
            validate("# TYPE m counter\n# TYPE m counter\nm 1\n").is_err(),
            "duplicate TYPE"
        );
        assert!(
            validate("# TYPE m counter\nm{l=\"unterminated} 1\n").is_err(),
            "unterminated label"
        );
        assert!(validate("# TYPE m counter\n").is_err(), "no samples at all");
        assert!(validate("# TYPE m gauge\nm NaN\nm{x=\"y\"} +Inf\n").is_ok());
    }
}
