//! `hyper-serve` — serve a registry of HypeR snapshots over HTTP.
//!
//! ```text
//! hyper-serve --registry DIR [--addr HOST:PORT] [--workers N]
//!             [--queue-depth N] [--request-timeout-ms MS]
//!             [--persist-dir DIR]
//! ```
//!
//! The process serves until stdin reaches EOF or the process receives a
//! termination signal, then drains in-flight requests and exits.

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;

use hyper_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: hyper-serve --registry DIR [options]

Serve every <tenant>.hypr snapshot in DIR over HTTP.

options:
  --addr HOST:PORT          bind address (default 127.0.0.1:7878)
  --workers N               executor threads running engine work (default 2)
  --queue-depth N           admission queue depth; overflow sheds 503 (default 64)
  --request-timeout-ms MS   per-request deadline, answered 504 (default 30000)
  --persist-dir DIR         disk artifact tier for warm starts (default off)

endpoints: POST /query, POST /explain, GET /stats, GET /health
The server runs until stdin closes, then drains in-flight work."
    );
    std::process::exit(2);
}

fn parse_args() -> (String, ServeConfig) {
    let mut registry = None;
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n");
                usage()
            })
        };
        match arg.as_str() {
            "--registry" => registry = Some(value("--registry")),
            "--addr" => config.addr = value("--addr"),
            "--workers" => match value("--workers").parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => usage(),
            },
            "--queue-depth" => match value("--queue-depth").parse() {
                Ok(n) if n > 0 => config.queue_depth = n,
                _ => usage(),
            },
            "--request-timeout-ms" => match value("--request-timeout-ms").parse() {
                Ok(ms) if ms > 0 => config.request_timeout = Duration::from_millis(ms),
                _ => usage(),
            },
            "--persist-dir" => config.persist_dir = Some(value("--persist-dir").into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}\n");
                usage();
            }
        }
    }
    match registry {
        Some(r) => (r, config),
        None => {
            eprintln!("error: --registry is required\n");
            usage();
        }
    }
}

fn main() -> ExitCode {
    let (registry, config) = parse_args();
    let server = match Server::start(&registry, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tenants: Vec<String> = server
        .tenants()
        .registry()
        .tenants()
        .map(str::to_string)
        .collect();
    eprintln!(
        "hyper-serve listening on http://{} — {} tenant(s): {}",
        server.addr(),
        tenants.len(),
        if tenants.is_empty() {
            "(none)".to_string()
        } else {
            tenants.join(", ")
        }
    );
    eprintln!("serving until stdin closes; then draining in-flight requests");
    // Block until the operator (or the supervising process) closes
    // stdin — the simplest portable signal available without libc.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    eprintln!("stdin closed; draining…");
    server.shutdown();
    eprintln!("drained; goodbye");
    ExitCode::SUCCESS
}
