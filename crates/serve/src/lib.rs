//! hyper-serve: a multi-tenant HTTP query server for the HypeR engine.
//!
//! Everything below runs on `std` alone — the HTTP layer, the JSON
//! codec, the admission queue — because the build environment is
//! offline. The serving pipeline, request to response:
//!
//! ```text
//!             ┌──────────────────────────── hyper-serve ───────────────────────────┐
//!  TCP ──────▶│ accept loop ─▶ connection thread                                   │
//!             │                  │  parse HTTP (http.rs) ── malformed? ─▶ typed 4xx │
//!             │                  │  parse protocol (json.rs)                        │
//!             │                  │  route: /health /stats answered inline           │
//!             │                  ▼                                                  │
//!             │        admission (admission.rs)                                     │
//!             │          bounded FairQueue, one lane per tenant                     │
//!             │          full? ─▶ 503 + Retry-After (shed, no engine work)          │
//!             │          admitted ─▶ executor pool (N = --workers)                  │
//!             │                        │ tenants (registry.rs)                      │
//!             │                        │   single-flight snapshot load              │
//!             │                        │   prepared-template cache per tenant       │
//!             │                        ▼                                            │
//!             │                  HyperSession::execute_with(bindings)               │
//!             │          waiter timed out? ─▶ 504 (executor finishes, result        │
//!             │                               discarded, caches stay warm)          │
//!             └────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Tenancy: a registry directory of `<tenant>.hypr` snapshot files
//! ([`hyper_store::SnapshotRegistry`]). Sessions are built lazily on
//! first request and share the process-wide artifact store, so tenants
//! serving content-identical data share views, block decompositions,
//! and fitted estimators across sessions.
//!
//! Fidelity: the server is a transport, not a second engine. Responses
//! render engine results with shortest-round-trip float formatting, so
//! a client re-parsing `value` recovers the library-path `f64`
//! **bit-for-bit** — the integration tests assert `==`, not a
//! tolerance.
//!
//! See `crates/serve/README.md` for the wire protocol, the failure-mode
//! table, and operational knobs.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod stats;

pub use admission::{Admission, Job, Outcome, Rejected, ResponseSlot};
pub use client::{Client, ClientResponse};
pub use json::Json;
pub use metrics::MetricsWriter;
pub use registry::{Tenant, TenantError, Tenants};
pub use server::{outcome_json, refresh_json, ServeConfig, Server};
pub use stats::{histogram_json, session_json, Route, RouteLatency, ServerStats, TenantCounters};
