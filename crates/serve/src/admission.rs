//! Admission control: a bounded, tenant-fair request queue in front of
//! a fixed executor pool, with load shedding and per-request timeouts.
//!
//! Every `/query` and `/explain` request becomes a [`Job`] — a closure
//! producing `(status, body)` — and is offered to a
//! [`FairQueue`](hyper_runtime::FairQueue) keyed by tenant id:
//!
//! * **Bounded**: at most `queue_depth` jobs wait; an offer beyond that
//!   is refused *immediately* and the connection answers a typed `503`
//!   with `Retry-After` (the shed path does no engine work at all).
//! * **Fair**: executors pop round-robin across tenant lanes, so one
//!   tenant's burst cannot starve another's single request.
//! * **Concurrency-limited**: exactly `workers` executor threads run
//!   jobs; each tenant session may additionally parallelize internally
//!   over the shared [`HyperRuntime`](hyper_runtime::HyperRuntime).
//! * **Timed out, not cancelled**: the connection waits on a
//!   [`ResponseSlot`] with a deadline. On expiry it answers `504` and
//!   moves on; the executor still finishes the job (its artifacts land
//!   in the caches — a timed-out query warms the session rather than
//!   poisoning it) and the late result is discarded.
//!
//! [`Admission::close`] is the graceful-shutdown half: the queue stops
//! admitting, executors drain everything already admitted, and
//! [`Admission::join`] returns once the last admitted job has answered.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hyper_runtime::{FairQueue, PushError};

use crate::json::Json;
use crate::stats::{Route, ServerStats, TenantCounters};

/// A finished HTTP payload: status code plus JSON body.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Json,
}

/// One-shot rendezvous between the connection thread (waiting with a
/// deadline) and the executor (filling exactly once).
pub struct ResponseSlot {
    state: Mutex<Option<Outcome>>,
    ready: Condvar,
}

impl ResponseSlot {
    /// An empty slot.
    pub fn new() -> ResponseSlot {
        ResponseSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Fill the slot (first write wins) and wake the waiter.
    pub fn fill(&self, outcome: Outcome) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.is_none() {
            *state = Some(outcome);
        }
        drop(state);
        self.ready.notify_all();
    }

    /// Wait up to `timeout` for the outcome. `None` means the deadline
    /// passed — the job may still be queued or executing; its eventual
    /// result is discarded.
    pub fn wait(&self, timeout: Duration) -> Option<Outcome> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = state.take() {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .ready
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }
}

impl Default for ResponseSlot {
    fn default() -> ResponseSlot {
        ResponseSlot::new()
    }
}

/// An admitted unit of work.
pub struct Job {
    /// Lane key (tenant id).
    pub tenant: String,
    /// The work: runs on an executor thread, produces the response.
    pub work: Box<dyn FnOnce() -> Outcome + Send>,
    /// Where the connection thread is waiting.
    pub slot: Arc<ResponseSlot>,
    /// The tenant's admission counters (in-flight/completed upkeep and
    /// the per-route latency histograms).
    pub counters: Arc<TenantCounters>,
    /// Which admitted route this is — labels the latency samples.
    pub route: Route,
    /// When the job was built for submission; the executor records
    /// `admitted.elapsed()` at pop time as the queue-wait sample.
    pub admitted: Instant,
}

/// Why [`Admission::submit`] refused a job.
#[derive(Debug)]
pub enum Rejected {
    /// Queue full — answer 503 + `Retry-After`.
    QueueFull {
        /// Configured queue depth, for the error body.
        depth: usize,
    },
    /// Server draining for shutdown — answer 503.
    ShuttingDown,
}

/// The bounded queue plus its executor pool.
pub struct Admission {
    queue: Arc<FairQueue<Job>>,
    executors: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl Admission {
    /// Start `workers` executor threads over a queue of `queue_depth`.
    pub fn start(workers: usize, queue_depth: usize, stats: Arc<ServerStats>) -> Admission {
        let workers = workers.max(1);
        let queue = Arc::new(FairQueue::new(queue_depth));
        let mut executors = Vec::with_capacity(workers);
        for i in 0..workers {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            executors.push(
                std::thread::Builder::new()
                    .name(format!("hyper-serve-exec-{i}"))
                    .spawn(move || executor_loop(&queue, &stats))
                    .expect("spawn executor thread"),
            );
        }
        Admission {
            queue,
            executors: Mutex::new(executors),
            workers,
        }
    }

    /// Executor thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs currently queued (excludes jobs already executing).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Offer a job; on admission the tenant's `accepted`/`in_flight`
    /// counters are bumped. Never blocks.
    pub fn submit(&self, job: Job) -> Result<(), Rejected> {
        let counters = Arc::clone(&job.counters);
        let tenant = job.tenant.clone();
        match self.queue.try_push(&tenant, job) {
            Ok(()) => {
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                counters.in_flight.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(PushError::Full(f)) => Err(Rejected::QueueFull { depth: f.capacity }),
            Err(PushError::Closed(_)) => Err(Rejected::ShuttingDown),
        }
    }

    /// Stop admitting; already-admitted jobs keep draining.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Wait for the executors to finish draining (call after
    /// [`Admission::close`]).
    pub fn join(&self) {
        let handles =
            std::mem::take(&mut *self.executors.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn executor_loop(queue: &FairQueue<Job>, _stats: &ServerStats) {
    while let Some(job) = queue.pop() {
        let Job {
            work,
            slot,
            counters,
            route,
            admitted,
            ..
        } = job;
        // The pop is the split point between the two latency stages:
        // everything before it was queue wait, everything after is
        // execution. Both are recorded whatever the outcome — a 504'd
        // caller is gone, but the sample is exactly the kind an
        // operator needs to see.
        let latency = counters.latency(route);
        latency
            .queue_wait
            .record(admitted.elapsed().as_nanos() as u64);
        let started = Instant::now();
        // A panicking job must not take the executor down with it — the
        // slot gets a 500 and the loop continues.
        let outcome = catch_unwind(AssertUnwindSafe(work)).unwrap_or_else(|_| Outcome {
            status: 500,
            body: Json::obj([("error", "internal panic while executing the query".into())]),
        });
        latency.execute.record(started.elapsed().as_nanos() as u64);
        counters.completed.fetch_add(1, Ordering::Relaxed);
        if (200..300).contains(&outcome.status) {
            counters.ok.fetch_add(1, Ordering::Relaxed);
        }
        counters.in_flight.fetch_sub(1, Ordering::Relaxed);
        slot.fill(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(
        tenant: &str,
        counters: &Arc<TenantCounters>,
        f: impl FnOnce() -> Outcome + Send + 'static,
    ) -> (Job, Arc<ResponseSlot>) {
        let slot = Arc::new(ResponseSlot::new());
        (
            Job {
                tenant: tenant.to_string(),
                work: Box::new(f),
                slot: Arc::clone(&slot),
                counters: Arc::clone(counters),
                route: Route::Query,
                admitted: Instant::now(),
            },
            slot,
        )
    }

    #[test]
    fn submitted_jobs_execute_and_fill_their_slots() {
        let stats = Arc::new(ServerStats::default());
        let adm = Admission::start(2, 8, Arc::clone(&stats));
        let counters = stats.tenant("t");
        let (j, slot) = job("t", &counters, || Outcome {
            status: 200,
            body: Json::Int(42),
        });
        adm.submit(j).unwrap();
        let outcome = slot.wait(Duration::from_secs(5)).expect("job completes");
        assert_eq!(outcome.status, 200);
        assert_eq!(counters.accepted.load(Ordering::Relaxed), 1);
        assert_eq!(counters.completed.load(Ordering::Relaxed), 1);
        assert_eq!(counters.in_flight.load(Ordering::Relaxed), 0);
        let latency = counters.latency(Route::Query);
        assert_eq!(latency.queue_wait.snapshot().count(), 1);
        assert_eq!(latency.execute.snapshot().count(), 1);
        assert_eq!(
            counters.latency(Route::Ingest).execute.snapshot().count(),
            0
        );
        adm.close();
        adm.join();
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let stats = Arc::new(ServerStats::default());
        // One worker, depth 1: occupy the worker, fill the queue, then
        // the next submit must shed.
        let adm = Admission::start(1, 1, Arc::clone(&stats));
        let counters = stats.tenant("t");
        let gate = Arc::new(ResponseSlot::new());
        let g = Arc::clone(&gate);
        let (blocker, blocker_slot) = job("t", &counters, move || {
            g.wait(Duration::from_secs(10));
            Outcome {
                status: 200,
                body: Json::Null,
            }
        });
        adm.submit(blocker).unwrap();
        // Wait until the worker picked the blocker up (queue empty).
        let start = Instant::now();
        while adm.queue_len() > 0 && start.elapsed() < Duration::from_secs(5) {
            std::thread::yield_now();
        }
        let (queued, _queued_slot) = job("t", &counters, || Outcome {
            status: 200,
            body: Json::Null,
        });
        adm.submit(queued).unwrap();
        let (shed, _) = job("t", &counters, || Outcome {
            status: 200,
            body: Json::Null,
        });
        match adm.submit(shed) {
            Err(Rejected::QueueFull { depth }) => assert_eq!(depth, 1),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        gate.fill(Outcome {
            status: 204,
            body: Json::Null,
        });
        assert!(blocker_slot.wait(Duration::from_secs(5)).is_some());
        adm.close();
        adm.join();
    }

    #[test]
    fn panicking_job_answers_500_and_pool_survives() {
        let stats = Arc::new(ServerStats::default());
        let adm = Admission::start(1, 4, Arc::clone(&stats));
        let counters = stats.tenant("t");
        let (bad, bad_slot) = job("t", &counters, || panic!("boom"));
        adm.submit(bad).unwrap();
        assert_eq!(bad_slot.wait(Duration::from_secs(5)).unwrap().status, 500);
        let (ok, ok_slot) = job("t", &counters, || Outcome {
            status: 200,
            body: Json::Null,
        });
        adm.submit(ok).unwrap();
        assert_eq!(ok_slot.wait(Duration::from_secs(5)).unwrap().status, 200);
        adm.close();
        adm.join();
    }

    #[test]
    fn close_drains_admitted_jobs() {
        let stats = Arc::new(ServerStats::default());
        let adm = Admission::start(1, 8, Arc::clone(&stats));
        let counters = stats.tenant("t");
        let mut slots = Vec::new();
        for _ in 0..4 {
            let (j, slot) = job("t", &counters, || {
                std::thread::sleep(Duration::from_millis(5));
                Outcome {
                    status: 200,
                    body: Json::Null,
                }
            });
            adm.submit(j).unwrap();
            slots.push(slot);
        }
        adm.close();
        assert!(matches!(
            adm.submit(
                job("t", &counters, || Outcome {
                    status: 200,
                    body: Json::Null
                })
                .0
            ),
            Err(Rejected::ShuttingDown)
        ));
        adm.join();
        for slot in slots {
            assert_eq!(
                slot.wait(Duration::from_millis(1)).expect("drained").status,
                200,
                "every admitted job answers before join() returns"
            );
        }
    }
}
