//! The HTTP server: accept loop, connection handling, routing, and the
//! JSON protocol over the admission layer.
//!
//! Thread model: one accept thread, one OS thread per live connection
//! (connections are expected to be few and persistent — clients
//! keep-alive and pipeline requests), and a fixed executor pool (see
//! [`crate::admission`]) that runs all engine work. Connection threads
//! never touch the engine directly: they parse, route, admit, and wait
//! on a [`ResponseSlot`](crate::admission::ResponseSlot) with the
//! configured request timeout.
//!
//! Routes:
//!
//! | method + path   | handled | answer |
//! |-----------------|---------|--------|
//! | `POST /query`   | admitted| query result (what-if or how-to) |
//! | `POST /explain` | admitted| static plan with cache provenance |
//! | `POST /ingest`  | admitted| delta applied + invalidation report |
//! | `GET /stats`    | inline  | server + per-tenant counters and latency percentiles |
//! | `GET /health`   | inline  | liveness, uptime, loaded tenants and their versions |
//! | `GET /metrics`  | inline  | Prometheus text exposition (see [`crate::metrics`]) |
//!
//! `/stats`, `/health`, and `/metrics` bypass admission deliberately:
//! they must stay answerable while the queue is saturated, or the
//! operator is blind exactly when they need to look.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hyper_core::{EngineError, QueryOutcome, RefreshReport};
use hyper_ingest::DeltaBatch;
use hyper_query::Bindings;
use hyper_storage::{DataType, Table, TableBuilder, Value};
use hyper_store::SnapshotRegistry;

use crate::admission::{Admission, Job, Outcome, Rejected, ResponseSlot};
use crate::http::{self, Request, MAX_BODY_BYTES};
use crate::json::{self, Json};
use crate::metrics::MetricsWriter;
use crate::registry::{TenantError, Tenants};
use crate::stats::{Route, ServerStats};

/// Server knobs. `Default` is sized for the CI container: 2 executors,
/// a 64-deep queue, 30-second request timeout.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Executor threads running engine work (`--workers`).
    pub workers: usize,
    /// Bounded admission queue depth (`--queue-depth`); offers beyond it
    /// are shed with 503.
    pub queue_depth: usize,
    /// Per-request deadline (`--request-timeout-ms`); expiry answers 504
    /// while the executor finishes in the background.
    pub request_timeout: Duration,
    /// Optional disk artifact tier handed to every tenant session.
    pub persist_dir: Option<PathBuf>,
    /// Request body cap in bytes.
    pub max_body_bytes: usize,
    /// Socket read timeout for idle keep-alive connections.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            request_timeout: Duration::from_secs(30),
            persist_dir: None,
            max_body_bytes: MAX_BODY_BYTES,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

struct Inner {
    tenants: Tenants,
    stats: Arc<ServerStats>,
    admission: Admission,
    shutdown: AtomicBool,
    request_timeout: Duration,
    max_body_bytes: usize,
    idle_timeout: Duration,
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// aborts ungracefully (the listener closes but executors are not
/// drained); call `shutdown()` for the orderly path.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Scan `registry_dir` for tenant snapshots and start serving.
    /// Snapshots are *not* loaded here — each loads on first request.
    pub fn start(registry_dir: impl Into<PathBuf>, config: ServeConfig) -> std::io::Result<Server> {
        let registry = SnapshotRegistry::open(registry_dir.into())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let inner = Arc::new(Inner {
            tenants: Tenants::new(registry, config.persist_dir.clone()),
            admission: Admission::start(config.workers, config.queue_depth, Arc::clone(&stats)),
            stats,
            shutdown: AtomicBool::new(false),
            request_timeout: config.request_timeout,
            max_body_bytes: config.max_body_bytes,
            idle_timeout: config.idle_timeout,
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("hyper-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_inner))?;
        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The tenant registry (for assertions in tests/examples).
    pub fn tenants(&self) -> &Tenants {
        &self.inner.tenants
    }

    /// The server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.inner.stats
    }

    /// Graceful shutdown: stop accepting, refuse new admissions with
    /// 503, drain every admitted job to its answer, then return.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.admission.close();
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.inner.admission.join();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        inner.stats.connections.fetch_add(1, Ordering::Relaxed);
        inner.stats.connections_open.fetch_add(1, Ordering::Relaxed);
        let inner = Arc::clone(inner);
        // Connection threads are detached: they exit on client EOF, on a
        // fatal parse error, or when the idle timeout trips.
        let _ = std::thread::Builder::new()
            .name("hyper-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &inner);
                inner.stats.connections_open.fetch_sub(1, Ordering::Relaxed);
            });
    }
}

fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(inner.idle_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader, inner.max_body_bytes) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(e) => {
                // Hostile or broken bytes: answer the typed status when
                // one applies, then drop the connection — never the
                // accept loop.
                if let Some((code, reason)) = e.status() {
                    inner.stats.malformed.fetch_add(1, Ordering::Relaxed);
                    let body = Json::obj([("error", e.to_string().into())]).render();
                    let _ = http::write_response(
                        &mut writer,
                        code,
                        reason,
                        "application/json",
                        body.as_bytes(),
                        false,
                        &[],
                    );
                }
                return;
            }
        };
        inner.stats.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = request.keep_alive && !inner.shutdown.load(Ordering::SeqCst);
        // `/metrics` is the one non-JSON route: Prometheus text, served
        // inline like `/stats` so it stays answerable under saturation.
        let (status, content_type, body, retry_after) =
            if request.method == "GET" && request.path == "/metrics" {
                (200, "text/plain; version=0.0.4", metrics_text(inner), false)
            } else {
                let (outcome, retry_after) = route(inner, &request);
                (
                    outcome.status,
                    "application/json",
                    outcome.body.render(),
                    retry_after,
                )
            };
        let extra: &[(&str, &str)] = if retry_after {
            &[("Retry-After", "1")]
        } else {
            &[]
        };
        if http::write_response(
            &mut writer,
            status,
            reason_phrase(status),
            content_type,
            body.as_bytes(),
            keep_alive,
            extra,
        )
        .is_err()
            || !keep_alive
        {
            let _ = writer.flush();
            return;
        }
    }
}

/// Dispatch one parsed request. The bool is "attach `Retry-After`".
fn route(inner: &Arc<Inner>, request: &Request) -> (Outcome, bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/query") => admit(inner, request, Mode::Execute),
        ("POST", "/explain") => admit(inner, request, Mode::Explain),
        ("POST", "/ingest") => admit_ingest(inner, request),
        ("GET", "/stats") => (stats_outcome(inner), false),
        ("GET", "/health") => (health_outcome(inner), false),
        ("GET" | "POST", "/query" | "/explain" | "/ingest" | "/stats" | "/health" | "/metrics") => {
            (
                Outcome {
                    status: 405,
                    body: Json::obj([("error", "method not allowed for this path".into())]),
                },
                false,
            )
        }
        _ => {
            inner.stats.not_found.fetch_add(1, Ordering::Relaxed);
            (
                Outcome {
                    status: 404,
                    body: Json::obj([("error", format!("no such path: {}", request.path).into())]),
                },
                false,
            )
        }
    }
}

#[derive(Clone, Copy)]
enum Mode {
    Execute,
    Explain,
}

/// Parse the protocol body, admit the engine work, wait with a deadline.
fn admit(inner: &Arc<Inner>, request: &Request, mode: Mode) -> (Outcome, bool) {
    let (tenant_id, query_text, bindings, timeout) = match parse_protocol(&request.body) {
        Ok(parts) => parts,
        Err(msg) => {
            inner.stats.malformed.fetch_add(1, Ordering::Relaxed);
            return (
                Outcome {
                    status: 400,
                    body: Json::obj([("error", msg.into())]),
                },
                false,
            );
        }
    };
    let work_inner = Arc::clone(inner);
    let work_tenant = tenant_id.clone();
    let route = match mode {
        Mode::Execute => Route::Query,
        Mode::Explain => Route::Explain,
    };
    submit_and_wait(
        inner,
        &tenant_id,
        route,
        timeout,
        Box::new(move || execute(&work_inner, &work_tenant, &query_text, &bindings, mode)),
    )
}

/// Parse, validate, and admit a `POST /ingest` body. The delta is
/// materialized on the executor (it needs the tenant's schema), so a
/// hostile body costs JSON parsing here, never engine work.
fn admit_ingest(inner: &Arc<Inner>, request: &Request) -> (Outcome, bool) {
    let (tenant_id, table, rows, deletes) = match parse_ingest(&request.body) {
        Ok(parts) => parts,
        Err(msg) => {
            inner.stats.malformed.fetch_add(1, Ordering::Relaxed);
            return (
                Outcome {
                    status: 400,
                    body: Json::obj([("error", msg.into())]),
                },
                false,
            );
        }
    };
    let work_inner = Arc::clone(inner);
    let work_tenant = tenant_id.clone();
    submit_and_wait(
        inner,
        &tenant_id,
        Route::Ingest,
        None,
        Box::new(move || execute_ingest(&work_inner, &work_tenant, &table, &rows, &deletes)),
    )
}

/// Shared admission tail: refuse unknown tenants before taking a queue
/// slot, submit the work, and wait with the (possibly tightened)
/// deadline.
fn submit_and_wait(
    inner: &Arc<Inner>,
    tenant_id: &str,
    route: Route,
    timeout: Option<Duration>,
    work: Box<dyn FnOnce() -> Outcome + Send>,
) -> (Outcome, bool) {
    // Unknown tenants are refused before admission — a hostile id costs
    // a map lookup, not a queue slot, and never creates counters.
    if !inner.tenants.contains(tenant_id) {
        inner.stats.not_found.fetch_add(1, Ordering::Relaxed);
        return (
            Outcome {
                status: 404,
                body: Json::obj([("error", format!("unknown tenant `{tenant_id}`").into())]),
            },
            false,
        );
    }
    let counters = inner.stats.tenant(tenant_id);
    let slot = Arc::new(ResponseSlot::new());
    let job = Job {
        tenant: tenant_id.to_string(),
        slot: Arc::clone(&slot),
        counters: Arc::clone(&counters),
        work,
        route,
        admitted: Instant::now(),
    };
    match inner.admission.submit(job) {
        Ok(()) => {}
        Err(Rejected::QueueFull { depth }) => {
            counters.shed.fetch_add(1, Ordering::Relaxed);
            return (
                Outcome {
                    status: 503,
                    body: Json::obj([
                        ("error", "overloaded: admission queue is full".into()),
                        ("queue_depth", depth.into()),
                    ]),
                },
                true,
            );
        }
        Err(Rejected::ShuttingDown) => {
            return (
                Outcome {
                    status: 503,
                    body: Json::obj([("error", "server is shutting down".into())]),
                },
                false,
            );
        }
    }
    // A request may tighten (never loosen) the server deadline.
    let timeout = timeout
        .unwrap_or(inner.request_timeout)
        .min(inner.request_timeout);
    match slot.wait(timeout) {
        Some(outcome) => (outcome, false),
        None => {
            counters.timeouts.fetch_add(1, Ordering::Relaxed);
            (
                Outcome {
                    status: 504,
                    body: Json::obj([(
                        "error",
                        format!(
                            "deadline of {}ms exceeded; execution continues and will warm the cache",
                            timeout.as_millis()
                        )
                        .into(),
                    )]),
                },
                false,
            )
        }
    }
}

/// Extract `(tenant, query, bindings, timeout override)` from a protocol
/// body.
type Protocol = (String, String, Bindings, Option<Duration>);

fn parse_protocol(body: &[u8]) -> Result<Protocol, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let tenant = doc
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or("missing string field `tenant`")?
        .to_string();
    let query = doc
        .get("query")
        .and_then(Json::as_str)
        .ok_or("missing string field `query`")?
        .to_string();
    let mut bindings = Bindings::new();
    if let Some(b) = doc.get("bindings") {
        let fields = b
            .as_obj()
            .ok_or("`bindings` must be an object of scalars")?;
        for (name, value) in fields {
            let v = value
                .to_value()
                .ok_or_else(|| format!("binding `{name}` must be a scalar"))?;
            bindings.insert(name.clone(), v);
        }
    }
    let timeout = match doc.get("timeout_ms") {
        None => None,
        Some(t) => {
            let ms = t
                .as_i64()
                .filter(|&ms| ms > 0)
                .ok_or("`timeout_ms` must be a positive integer")?;
            Some(Duration::from_millis(ms as u64))
        }
    };
    Ok((tenant, query, bindings, timeout))
}

/// `(tenant, table, rows, deletes)` of a `POST /ingest` body:
/// `{"tenant": "...", "table": "...", "rows": [[...], ...],
/// "deletes": [i, ...]}` with at least one of `rows`/`deletes`
/// non-empty. Row values stay as JSON here — typing them needs the
/// tenant's schema, which lives on the executor side.
type IngestParts = (String, String, Vec<Vec<Json>>, Vec<usize>);

fn parse_ingest(body: &[u8]) -> Result<IngestParts, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let tenant = doc
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or("missing string field `tenant`")?
        .to_string();
    let table = doc
        .get("table")
        .and_then(Json::as_str)
        .ok_or("missing string field `table`")?
        .to_string();
    let mut rows = Vec::new();
    if let Some(r) = doc.get("rows") {
        let Json::Arr(items) = r else {
            return Err("`rows` must be an array of arrays".to_string());
        };
        for (i, item) in items.iter().enumerate() {
            match item {
                Json::Arr(vals) => rows.push(vals.clone()),
                _ => return Err(format!("`rows[{i}]` must be an array of scalars")),
            }
        }
    }
    let mut deletes = Vec::new();
    if let Some(d) = doc.get("deletes") {
        let Json::Arr(items) = d else {
            return Err("`deletes` must be an array of row indices".to_string());
        };
        for (i, item) in items.iter().enumerate() {
            let idx = item
                .as_i64()
                .filter(|&v| v >= 0)
                .ok_or_else(|| format!("`deletes[{i}]` must be a non-negative integer"))?;
            deletes.push(idx as usize);
        }
    }
    if rows.is_empty() && deletes.is_empty() {
        return Err("ingest body must carry `rows` and/or `deletes`".to_string());
    }
    Ok((tenant, table, rows, deletes))
}

/// The ingest work — runs on an executor thread, serialized per tenant
/// by the tenant's ingest lock.
fn execute_ingest(
    inner: &Arc<Inner>,
    tenant_id: &str,
    table: &str,
    rows: &[Vec<Json>],
    deletes: &[usize],
) -> Outcome {
    let tenant = match inner.tenants.tenant(tenant_id) {
        Ok(t) => t,
        Err(e @ TenantError::Unknown(_)) => {
            return Outcome {
                status: 404,
                body: Json::obj([("error", e.to_string().into())]),
            }
        }
        Err(e @ TenantError::Load(_)) => {
            return Outcome {
                status: 500,
                body: Json::obj([("error", e.to_string().into())]),
            }
        }
    };
    let mut delta = DeltaBatch::new();
    if !rows.is_empty() {
        // Type the JSON rows against the *current* session's schema for
        // the target table.
        let session = tenant.session();
        let appends = match rows_to_table(session.database().table(table).ok(), table, rows) {
            Ok(t) => t,
            Err(msg) => {
                return Outcome {
                    status: 400,
                    body: Json::obj([("error", msg.into())]),
                }
            }
        };
        delta = delta.append(appends);
    }
    if !deletes.is_empty() {
        delta = delta.delete(table, deletes.to_vec());
    }
    match tenant.ingest(&delta) {
        Ok(report) => Outcome {
            status: 200,
            body: refresh_json(&report),
        },
        Err(e) => engine_error(&e),
    }
}

/// Build an append table from JSON rows, typed by the target table's
/// schema (integers widen into `Float` columns, mirroring
/// `Table::append_rows`).
fn rows_to_table(source: Option<&Table>, name: &str, rows: &[Vec<Json>]) -> Result<Table, String> {
    let source = source.ok_or_else(|| format!("unknown table `{name}`"))?;
    let schema = source.schema().clone();
    let mut typed = Vec::with_capacity(rows.len());
    for (ri, row) in rows.iter().enumerate() {
        if row.len() != schema.len() {
            return Err(format!(
                "rows[{ri}] has {} value(s); table `{name}` has {} column(s)",
                row.len(),
                schema.len()
            ));
        }
        let mut vals = Vec::with_capacity(row.len());
        for (ci, v) in row.iter().enumerate() {
            let field = schema.field(ci);
            let value = match (v, field.data_type) {
                (Json::Int(i), DataType::Float) => Value::Float(*i as f64),
                _ => v.to_value().ok_or_else(|| {
                    format!("rows[{ri}] column `{}` must be a scalar", field.name)
                })?,
            };
            vals.push(value);
        }
        typed.push(vals);
    }
    TableBuilder::new(name, schema)
        .rows(typed)
        .map_err(|e| e.to_string())
        .map(TableBuilder::build)
}

/// Render a refresh report: what the delta touched and what survived.
pub fn refresh_json(r: &RefreshReport) -> Json {
    Json::obj([
        ("status", "applied".into()),
        ("data_version", r.data_version.into()),
        (
            "touched_relations",
            Json::Arr(
                r.touched_relations
                    .iter()
                    .map(|t| t.as_str().into())
                    .collect(),
            ),
        ),
        ("views_kept", r.views_kept.into()),
        ("views_invalidated", r.views_invalidated.into()),
        ("estimators_kept", r.estimators_kept.into()),
        ("estimators_invalidated", r.estimators_invalidated.into()),
        ("blocks_invalidated", r.blocks_invalidated.into()),
    ])
}

/// The engine work — runs on an executor thread.
fn execute(
    inner: &Arc<Inner>,
    tenant_id: &str,
    text: &str,
    bindings: &Bindings,
    mode: Mode,
) -> Outcome {
    let tenant = match inner.tenants.tenant(tenant_id) {
        Ok(t) => t,
        Err(e @ TenantError::Unknown(_)) => {
            return Outcome {
                status: 404,
                body: Json::obj([("error", e.to_string().into())]),
            }
        }
        Err(e @ TenantError::Load(_)) => {
            return Outcome {
                status: 500,
                body: Json::obj([("error", e.to_string().into())]),
            }
        }
    };
    let prepared = match tenant.prepared(text) {
        Ok(p) => p,
        Err(e) => return engine_error(&e),
    };
    match mode {
        Mode::Execute => match prepared.execute_with(bindings) {
            Ok(outcome) => Outcome {
                status: 200,
                body: outcome_json(&outcome),
            },
            Err(e) => engine_error(&e),
        },
        Mode::Explain => match prepared.explain_with(bindings) {
            Ok(report) => Outcome {
                status: 200,
                body: explain_json(&report),
            },
            Err(e) => engine_error(&e),
        },
    }
}

fn engine_error(e: &EngineError) -> Outcome {
    // The caller's fault (bad query) is a 400; the server's (storage,
    // model, solver) is a 500.
    let status = match e {
        EngineError::Query(_) | EngineError::Unsupported(_) | EngineError::Plan(_) => 400,
        EngineError::Storage(_)
        | EngineError::Causal(_)
        | EngineError::Ml(_)
        | EngineError::Ip(_) => 500,
    };
    Outcome {
        status,
        body: Json::obj([("error", e.to_string().into())]),
    }
}

/// Render a query outcome. Floats use shortest-round-trip formatting, so
/// a client parsing `value` recovers the library result bit-for-bit.
pub fn outcome_json(outcome: &QueryOutcome) -> Json {
    match outcome {
        QueryOutcome::WhatIf(w) => Json::obj([
            ("kind", "whatif".into()),
            ("value", w.value.into()),
            ("view_rows", w.n_view_rows.into()),
            ("scope_rows", w.n_scope_rows.into()),
            ("updated_rows", w.n_updated_rows.into()),
            ("trained_rows", w.trained_rows.into()),
            (
                "backdoor",
                Json::Arr(w.backdoor.iter().map(|c| c.as_str().into()).collect()),
            ),
            ("elapsed_us", (w.elapsed.as_micros() as u64).into()),
        ]),
        QueryOutcome::HowTo(h) => Json::obj([
            ("kind", "howto".into()),
            ("objective", h.objective.into()),
            ("baseline", h.baseline.into()),
            (
                "chosen",
                Json::Arr(
                    h.chosen
                        .iter()
                        .map(|u| {
                            Json::obj([
                                ("attr", u.attr.as_str().into()),
                                ("update", u.func.to_string().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("candidates", h.candidates.into()),
            ("whatif_evals", h.whatif_evals.into()),
            ("elapsed_us", (h.elapsed.as_micros() as u64).into()),
        ]),
    }
}

fn explain_json(r: &hyper_core::ExplainReport) -> Json {
    let kind = match r.kind {
        hyper_core::QueryKind::WhatIf => "whatif",
        hyper_core::QueryKind::HowTo => "howto",
    };
    let view = Json::obj([
        (
            "source_tables",
            Json::Arr(
                r.view
                    .source_tables
                    .iter()
                    .map(|t| t.as_str().into())
                    .collect(),
            ),
        ),
        ("rows", r.view.rows.into()),
        ("columns", r.view.columns.into()),
        ("provenance", r.view.provenance.to_string().into()),
    ]);
    let blocks = r.blocks.as_ref().map_or(Json::Null, |b| {
        Json::obj([
            ("count", b.count.into()),
            ("used_in_evaluation", b.used_in_evaluation.into()),
            ("provenance", b.provenance.to_string().into()),
        ])
    });
    let estimator = r.estimator.as_ref().map_or(Json::Null, |e| {
        Json::obj([
            ("kind", format!("{:?}", e.kind).into()),
            ("n_trees", e.n_trees.into()),
            ("max_depth", e.max_depth.into()),
            ("provenance", e.provenance.to_string().into()),
        ])
    });
    let howto = r.howto.as_ref().map_or(Json::Null, |h| {
        Json::obj([
            (
                "update_attrs",
                Json::Arr(h.update_attrs.iter().map(|a| a.as_str().into()).collect()),
            ),
            ("buckets", h.buckets.into()),
            ("limits", h.limits.into()),
        ])
    });
    Json::obj([
        ("kind", kind.into()),
        ("query", r.query.as_str().into()),
        ("data_version", r.data_version.into()),
        ("deterministic", r.deterministic.into()),
        ("view", view),
        ("blocks", blocks),
        (
            "adjustment",
            Json::Arr(r.adjustment.iter().map(|c| c.as_str().into()).collect()),
        ),
        ("estimator", estimator),
        ("howto", howto),
    ])
}

fn stats_outcome(inner: &Arc<Inner>) -> Outcome {
    let mut tenants = std::collections::BTreeMap::new();
    // Every *registered* tenant appears, loaded or not; per-tenant
    // session stats use the torn-read-free snapshot accessor.
    let ids: Vec<String> = inner
        .tenants
        .registry()
        .tenants()
        .map(str::to_string)
        .collect();
    for id in &ids {
        let loaded = inner
            .tenants
            .loaded(id)
            .map(|t| (inner.tenants.snapshot_loads(id), t.session().snapshot()));
        tenants.insert(id.clone(), inner.stats.tenant_json(id, loaded));
    }
    let body = Json::obj([
        (
            "server",
            inner.stats.server_json(
                inner.admission.queue_len(),
                inner.admission.queue_capacity(),
                inner.admission.workers(),
            ),
        ),
        ("tenants", Json::obj_sorted(tenants)),
    ]);
    Outcome { status: 200, body }
}

/// `GET /health`: liveness plus enough shape to tell a fresh process
/// from a warmed one — uptime, how many of the registered tenants have
/// actually loaded, and each loaded tenant's current data version.
fn health_outcome(inner: &Arc<Inner>) -> Outcome {
    let loaded = inner.tenants.loaded_ids();
    let mut versions = std::collections::BTreeMap::new();
    for id in &loaded {
        if let Some(t) = inner.tenants.loaded(id) {
            versions.insert(id.clone(), t.session().snapshot().data_version.into());
        }
    }
    Outcome {
        status: 200,
        body: Json::obj([
            ("status", "ok".into()),
            (
                "uptime_ms",
                (inner.stats.uptime().as_millis() as u64).into(),
            ),
            ("tenants", inner.tenants.registry().len().into()),
            ("tenants_loaded", loaded.len().into()),
            ("data_versions", Json::obj_sorted(versions)),
        ]),
    }
}

/// Render the whole `/metrics` exposition: server totals, queue state,
/// per-tenant admission counters, queue-wait/execute latency summaries
/// per tenant × route, and per-tenant session phase timings.
fn metrics_text(inner: &Arc<Inner>) -> String {
    const NS: f64 = 1e-9;
    let mut w = MetricsWriter::new();

    w.header(
        "hyper_serve_uptime_seconds",
        "gauge",
        "Seconds since the server started.",
    );
    w.sample(
        "hyper_serve_uptime_seconds",
        &[],
        inner.stats.uptime().as_secs_f64(),
    );
    let server: [(&str, &str, u64); 5] = [
        (
            "hyper_serve_connections_total",
            "Connections accepted.",
            inner.stats.connections.load(Ordering::Relaxed),
        ),
        (
            "hyper_serve_requests_total",
            "HTTP requests parsed (any path).",
            inner.stats.requests.load(Ordering::Relaxed),
        ),
        (
            "hyper_serve_malformed_total",
            "Malformed requests answered with a typed 4xx.",
            inner.stats.malformed.load(Ordering::Relaxed),
        ),
        (
            "hyper_serve_not_found_total",
            "Requests for unknown paths or unknown tenants.",
            inner.stats.not_found.load(Ordering::Relaxed),
        ),
        (
            "hyper_serve_snapshot_loads_total",
            "Tenant snapshot decodes performed.",
            inner.tenants.total_snapshot_loads(),
        ),
    ];
    for (name, help, value) in server {
        w.header(name, "counter", help);
        w.sample(name, &[], value as f64);
    }
    w.header(
        "hyper_serve_queue_len",
        "gauge",
        "Jobs waiting in the admission queue.",
    );
    w.sample(
        "hyper_serve_queue_len",
        &[],
        inner.admission.queue_len() as f64,
    );
    w.header(
        "hyper_serve_queue_capacity",
        "gauge",
        "Admission queue depth limit.",
    );
    w.sample(
        "hyper_serve_queue_capacity",
        &[],
        inner.admission.queue_capacity() as f64,
    );

    let tenants = inner.stats.tenants();
    type AdmissionMetric = (
        &'static str,
        &'static str,
        fn(&crate::stats::TenantCounters) -> u64,
    );
    let admission: [AdmissionMetric; 6] = [
        ("hyper_serve_accepted_total", "Requests admitted.", |c| {
            c.accepted.load(Ordering::Relaxed)
        }),
        ("hyper_serve_shed_total", "Requests shed with 503.", |c| {
            c.shed.load(Ordering::Relaxed)
        }),
        (
            "hyper_serve_timeouts_total",
            "Requests whose caller timed out with 504.",
            |c| c.timeouts.load(Ordering::Relaxed),
        ),
        (
            "hyper_serve_completed_total",
            "Admitted requests executed to completion.",
            |c| c.completed.load(Ordering::Relaxed),
        ),
        (
            "hyper_serve_ok_total",
            "Completed requests that answered 2xx.",
            |c| c.ok.load(Ordering::Relaxed),
        ),
        (
            "hyper_serve_in_flight",
            "Requests admitted but not yet answered.",
            |c| c.in_flight.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, pick) in admission {
        let kind = if name.ends_with("_total") {
            "counter"
        } else {
            "gauge"
        };
        w.header(name, kind, help);
        for (tenant, counters) in &tenants {
            w.sample(name, &[("tenant", tenant)], pick(counters) as f64);
        }
    }

    w.header(
        "hyper_serve_latency_seconds",
        "summary",
        "Admitted request latency, split into queue-wait and execute \
         stages at the executor pop.",
    );
    for (tenant, counters) in &tenants {
        for route in Route::ALL {
            let latency = counters.latency(route);
            for (stage, hist) in [
                ("queue_wait", &latency.queue_wait),
                ("execute", &latency.execute),
            ] {
                let snap = hist.snapshot();
                if snap.count() == 0 {
                    continue;
                }
                let labels = |q: &'static str| {
                    [
                        ("tenant", tenant.as_str()),
                        ("route", route.name()),
                        ("stage", stage),
                        ("quantile", q),
                    ]
                };
                w.sample(
                    "hyper_serve_latency_seconds",
                    &labels("0.5"),
                    snap.p50() * NS,
                );
                w.sample(
                    "hyper_serve_latency_seconds",
                    &labels("0.9"),
                    snap.p90() * NS,
                );
                w.sample(
                    "hyper_serve_latency_seconds",
                    &labels("0.99"),
                    snap.p99() * NS,
                );
                w.sample(
                    "hyper_serve_latency_seconds",
                    &labels("0.999"),
                    snap.p999() * NS,
                );
                let base = [
                    ("tenant", tenant.as_str()),
                    ("route", route.name()),
                    ("stage", stage),
                ];
                w.sample(
                    "hyper_serve_latency_seconds_sum",
                    &base,
                    snap.sum() as f64 * NS,
                );
                w.sample(
                    "hyper_serve_latency_seconds_count",
                    &base,
                    snap.count() as f64,
                );
            }
        }
    }

    // Session-level phase timings for loaded tenants, from the same
    // stabilized snapshot `/stats` uses.
    let loaded: Vec<(String, hyper_core::SessionStats)> = inner
        .tenants
        .loaded_ids()
        .into_iter()
        .filter_map(|id| {
            let t = inner.tenants.loaded(&id)?;
            Some((id, t.session().snapshot()))
        })
        .collect();
    w.header(
        "hyper_session_data_version",
        "gauge",
        "Current data version of a loaded tenant session.",
    );
    for (tenant, s) in &loaded {
        w.sample(
            "hyper_session_data_version",
            &[("tenant", tenant)],
            s.data_version as f64,
        );
    }
    w.header(
        "hyper_session_traced_queries_total",
        "counter",
        "Queries that ran under a phase trace.",
    );
    for (tenant, s) in &loaded {
        w.sample(
            "hyper_session_traced_queries_total",
            &[("tenant", tenant)],
            s.traced_queries as f64,
        );
    }
    w.header(
        "hyper_session_phase_seconds_total",
        "counter",
        "Exclusive (self) time attributed to each engine phase.",
    );
    for (tenant, s) in &loaded {
        for phase in hyper_core::Phase::ALL {
            let (ns, n) = (s.phase_ns(phase), s.phase_count(phase));
            if ns == 0 && n == 0 {
                continue;
            }
            let labels = [("tenant", tenant.as_str()), ("phase", phase.name())];
            w.sample("hyper_session_phase_seconds_total", &labels, ns as f64 * NS);
        }
    }
    w.header(
        "hyper_session_phase_spans_total",
        "counter",
        "Spans recorded for each engine phase.",
    );
    for (tenant, s) in &loaded {
        for phase in hyper_core::Phase::ALL {
            let (ns, n) = (s.phase_ns(phase), s.phase_count(phase));
            if ns == 0 && n == 0 {
                continue;
            }
            let labels = [("tenant", tenant.as_str()), ("phase", phase.name())];
            w.sample("hyper_session_phase_spans_total", &labels, n as f64);
        }
    }
    w.finish()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}
