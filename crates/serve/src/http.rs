//! Minimal hand-rolled HTTP/1.1: request parsing and response writing
//! over `std::net` (the build environment has no crates.io, so no hyper
//! or tiny_http — the same vendored-stub discipline as the rest of the
//! workspace).
//!
//! Supported surface, deliberately small:
//!
//! * request line `METHOD SP TARGET SP HTTP/1.0|1.1`,
//! * headers (case-insensitive names, no continuation lines),
//! * bodies via `Content-Length` only (no chunked encoding — requests
//!   with `Transfer-Encoding` are refused with a typed 400/411),
//! * keep-alive (default for 1.1, `Connection: close` honored, 1.0
//!   closes unless `keep-alive` is asked for).
//!
//! Every way a request can be malformed maps to a *typed* [`HttpError`]
//! carrying the status code the connection should answer with before
//! closing or continuing — the accept loop never panics on hostile
//! bytes, and the error strings double as response bodies.

use std::io::{BufRead, Read, Write};

/// Default cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default cap on a request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A typed request-parsing failure. [`HttpError::status`] is the
/// response to send; [`HttpError::fatal`] says whether the connection
/// can be kept (a framing error leaves the stream unsynchronized, so
/// most are fatal).
#[derive(Debug)]
pub enum HttpError {
    /// The request line is not `METHOD SP TARGET SP HTTP/x.y`.
    BadRequestLine(String),
    /// The HTTP version is not 1.0 or 1.1.
    UnsupportedVersion(String),
    /// A header line has no `:` separator or a non-ASCII name.
    BadHeader(String),
    /// The request line + headers exceed [`MAX_HEAD_BYTES`].
    HeadTooLarge(usize),
    /// A body-bearing method arrived without `Content-Length` (chunked
    /// encoding is unsupported).
    LengthRequired,
    /// `Content-Length` is not a decimal integer.
    BadContentLength(String),
    /// The declared body exceeds the configured cap.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured cap.
        max: usize,
    },
    /// The peer closed the stream mid-request (no response possible).
    UnexpectedEof,
    /// Transport error (no response possible).
    Io(std::io::Error),
}

impl HttpError {
    /// `(status code, reason phrase)` to answer with, or `None` when the
    /// stream is gone and no response can be written.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequestLine(_)
            | HttpError::UnsupportedVersion(_)
            | HttpError::BadHeader(_)
            | HttpError::BadContentLength(_) => Some((400, "Bad Request")),
            HttpError::HeadTooLarge(_) => Some((431, "Request Header Fields Too Large")),
            HttpError::LengthRequired => Some((411, "Length Required")),
            HttpError::BodyTooLarge { .. } => Some((413, "Payload Too Large")),
            HttpError::UnexpectedEof | HttpError::Io(_) => None,
        }
    }

    /// True when the connection must close (framing is lost or the
    /// transport failed). All parse errors are fatal except an oversized
    /// body, which is fully read and discarded... which we don't do —
    /// so every error closes. Kept as a method so the policy is in one
    /// place.
    pub fn fatal(&self) -> bool {
        true
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequestLine(l) => write!(f, "malformed request line: {l:?}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::BadHeader(h) => write!(f, "malformed header line: {h:?}"),
            HttpError::HeadTooLarge(max) => write!(f, "request head exceeds {max} bytes"),
            HttpError::LengthRequired => {
                write!(f, "Content-Length required (chunked bodies unsupported)")
            }
            HttpError::BadContentLength(v) => write!(f, "bad Content-Length: {v:?}"),
            HttpError::BodyTooLarge { declared, max } => {
                write!(f, "body of {declared} bytes exceeds the {max}-byte cap")
            }
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target (query string split off).
    pub path: String,
    /// Raw query string after `?`, empty when absent.
    pub query: String,
    /// `(lower-cased name, value)` in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, enforcing a byte cap
/// shared across the whole head. Returns `None` on clean EOF before any
/// byte of the line.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let n = r
        .by_ref()
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    if raw.len() > *budget {
        return Err(HttpError::HeadTooLarge(MAX_HEAD_BYTES));
    }
    *budget -= raw.len();
    if raw.last() != Some(&b'\n') {
        return Err(HttpError::UnexpectedEof);
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|e| HttpError::BadHeader(String::from_utf8_lossy(e.as_bytes()).into_owned()))
}

/// Parse one request off the stream. `Ok(None)` means the peer closed
/// cleanly between requests (normal keep-alive termination).
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(line) = read_line(r, &mut budget)? else {
        return Ok(None);
    };
    if line.is_empty() {
        return Err(HttpError::BadRequestLine(String::new()));
    }
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequestLine(line.clone())),
    };
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(HttpError::BadRequestLine(line.clone()));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::UnsupportedVersion(version.to_string())),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(r, &mut budget)? else {
            return Err(HttpError::UnexpectedEof);
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(line));
        };
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(HttpError::BadHeader(line.clone()));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let header = |n: &str| {
        headers
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, v)| v.as_str())
    };
    if header("transfer-encoding").is_some() {
        return Err(HttpError::LengthRequired);
    }
    let body = match header("content-length") {
        Some(v) => {
            let declared: usize = v
                .trim()
                .parse()
                .map_err(|_| HttpError::BadContentLength(v.to_string()))?;
            if declared > max_body {
                return Err(HttpError::BodyTooLarge {
                    declared,
                    max: max_body,
                });
            }
            let mut body = vec![0u8; declared];
            r.read_exact(&mut body).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    HttpError::UnexpectedEof
                } else {
                    HttpError::Io(e)
                }
            })?;
            body
        }
        None if method.eq_ignore_ascii_case("POST") || method.eq_ignore_ascii_case("PUT") => {
            return Err(HttpError::LengthRequired);
        }
        None => Vec::new(),
    };

    let keep_alive = match header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => http11,
    };
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

/// Write a response with a JSON (or plain) body and explicit framing.
/// `extra_headers` are emitted verbatim (e.g. `("Retry-After", "1")`).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw), MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_post_with_body_and_keep_alive() {
        let req = parse(b"POST /query?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nBODY")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"BODY");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn connection_close_is_honored() {
        let req = parse(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_inputs_are_typed_400s() {
        for raw in [
            b"NOT-A-REQUEST\r\n\r\n".as_slice(),
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            let (code, _) = err.status().expect("parse errors map to a status");
            assert_eq!(code, 400, "{err}");
        }
    }

    #[test]
    fn post_without_length_is_411_and_oversize_is_413() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::LengthRequired
        ));
        let err = read_request(
            &mut BufReader::new(b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n".as_slice()),
            10,
        )
        .unwrap_err();
        assert_eq!(err.status(), Some((413, "Payload Too Large")));
    }

    #[test]
    fn clean_eof_is_none_and_midstream_eof_is_typed() {
        assert!(parse(b"").unwrap().is_none());
        assert!(matches!(
            parse(b"GET /x HT").unwrap_err(),
            HttpError::UnexpectedEof
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err(),
            HttpError::UnexpectedEof
        ));
    }

    #[test]
    fn response_writer_frames_correctly() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "Service Unavailable",
            "application/json",
            b"{}",
            false,
            &[("Retry-After", "1")],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
