//! A small, total JSON reader/writer for the wire protocol (the
//! workspace is offline — no serde).
//!
//! Integers and floats are kept distinct ([`Json::Int`] vs
//! [`Json::Float`]) because they bind to distinct
//! [`Value`](hyper_storage::Value) types, and floats are rendered with
//! Rust's shortest-round-trip formatting (`{:?}`), so a value written
//! by the server parses back **bit-identically** — the integration
//! tests compare server responses to library-path results with `==`,
//! not a tolerance.
//!
//! Parsing is total: malformed text, deep nesting, trailing garbage,
//! and invalid escapes all return a typed error string (never a panic),
//! which the server maps to a 400.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hyper_storage::Value;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction/exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer payload.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Convert to an engine [`Value`] (for `Bindings`).
    pub fn to_value(&self) -> Option<Value> {
        match self {
            Json::Null => Some(Value::Null),
            Json::Bool(b) => Some(Value::Bool(*b)),
            Json::Int(i) => Some(Value::Int(*i)),
            Json::Float(f) => Some(Value::Float(*f)),
            Json::Str(s) => Some(Value::str(s)),
            Json::Arr(_) | Json::Obj(_) => None,
        }
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip rendering; the
                    // value re-parses to the identical bit pattern.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build an object from owned keys (e.g. tenant ids), sorted for
    /// deterministic rendering.
    pub fn obj_sorted(fields: BTreeMap<String, Json>) -> Json {
        Json::Obj(fields.into_iter().collect())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v)
            .map(Json::Int)
            .unwrap_or(Json::Float(v as f64))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(text, bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect_lit(bytes, pos, "null", Json::Null),
        Some(b't') => expect_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => expect_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(text, bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(format!("expected a string key at byte {pos}"));
                }
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(text, bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(text, bytes, pos),
        Some(c) => Err(format!(
            "unexpected character {:?} at byte {pos}",
            *c as char
        )),
    }
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let lexeme = &text[start..*pos];
    if !fractional {
        if let Ok(i) = lexeme.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    lexeme
        .parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number {lexeme:?} at byte {start}"))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        let start = *pos;
        // Fast path: copy a run of plain bytes at once.
        while let Some(&b) = bytes.get(*pos) {
            if b == b'"' || b == b'\\' || b < 0x20 {
                break;
            }
            *pos += 1;
        }
        // The slice is on char boundaries: `"`/`\`/controls are ASCII.
        out.push_str(&text[start..*pos]);
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates are rejected rather than paired; the
                        // protocol never emits them.
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => return Err(format!("raw control byte {c:#04x} in string")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = r#"{"tenant":"t0","query":"Use x","bindings":{"mult":1.1,"n":3,"flag":true,"none":null},"arr":[1,2.5,"s"]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("tenant").unwrap().as_str(), Some("t0"));
        assert_eq!(v.get("bindings").unwrap().get("n").unwrap(), &Json::Int(3));
        assert_eq!(
            v.get("bindings").unwrap().get("mult").unwrap(),
            &Json::Float(1.1)
        );
        let re = parse(&v.render()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        for f in [1.1, 0.1 + 0.2, f64::MIN_POSITIVE, 1e300, -123.456e-7] {
            let rendered = Json::Float(f).render();
            match parse(&rendered).unwrap() {
                Json::Float(back) => assert_eq!(back.to_bits(), f.to_bits(), "{rendered}"),
                Json::Int(i) => assert_eq!(i as f64, f),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nul",
            "01a",
            "\"bad \\x escape\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "nesting cap");
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}";
        let rendered = Json::Str(s.to_string()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(s));
    }

    #[test]
    fn to_value_maps_scalars() {
        assert_eq!(Json::Int(3).to_value(), Some(Value::Int(3)));
        assert_eq!(Json::Float(1.5).to_value(), Some(Value::Float(1.5)));
        assert_eq!(Json::Str("x".into()).to_value(), Some(Value::str("x")));
        assert_eq!(Json::Null.to_value(), Some(Value::Null));
        assert_eq!(Json::Arr(vec![]).to_value(), None);
    }
}
