//! End-to-end tests for hyper-serve: each test boots a real server on an
//! OS-assigned port, talks to it over real TCP, and (where applicable)
//! compares responses against the library path on the same snapshot —
//! **bit-for-bit**, not within a tolerance: the server renders floats
//! with shortest-round-trip formatting, so `f64::to_bits` must agree.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use hyper_core::{EngineConfig, HyperSession, QueryOutcome};
use hyper_serve::{Client, Json, ServeConfig, Server};
use hyper_store::Snapshot;

const WHATIF: &str = "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')";
const WHATIF_PARAM: &str =
    "Use german_syn Update(status) = Param(s) Output Count(Post(credit) = 'Good')";
const HOWTO: &str = "Use german_syn HowToUpdate savings ToMaximize Count(Post(credit) = 'Good')";

/// Build a registry directory holding one german-syn tenant per seed.
fn registry_dir(tag: &str, rows: usize, seeds: &[u64]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hyper_serve_it_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    for (i, &seed) in seeds.iter().enumerate() {
        let data = hyper_datasets::german_syn(rows, seed);
        Snapshot::new(data.db, Some(data.graph))
            .save(dir.join(format!("t{i}.hypr")))
            .unwrap();
    }
    dir
}

/// The library path over the same snapshot file the server serves.
fn library_session(dir: &std::path::Path, tenant: &str) -> HyperSession {
    let snapshot = Snapshot::load(dir.join(format!("{tenant}.hypr"))).unwrap();
    HyperSession::builder(snapshot.database)
        .maybe_graph(snapshot.graph)
        .config(EngineConfig::hyper())
        .build()
}

fn start(dir: &std::path::Path, config: ServeConfig) -> Server {
    Server::start(dir, config).expect("server starts")
}

#[test]
fn multi_tenant_responses_match_the_library_bit_for_bit() {
    let dir = registry_dir("parity", 900, &[1, 2]);
    let server = start(&dir, ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    for tenant in ["t0", "t1"] {
        let lib = library_session(&dir, tenant);

        // Plain what-if.
        let response = client.query("/query", tenant, WHATIF, &[]).unwrap();
        assert_eq!(response.status, 200, "{:?}", response.json());
        let body = response.json().unwrap();
        let expect = lib.whatif_text(WHATIF).unwrap();
        let got = body.get("value").and_then(Json::as_f64).unwrap();
        assert_eq!(
            got.to_bits(),
            expect.value.to_bits(),
            "{tenant}: server {got} vs library {}",
            expect.value
        );
        assert_eq!(
            body.get("view_rows").and_then(Json::as_i64).unwrap() as usize,
            expect.n_view_rows
        );
        assert_eq!(
            body.get("updated_rows").and_then(Json::as_i64).unwrap() as usize,
            expect.n_updated_rows
        );

        // Parameterized what-if: bindings travel the wire.
        for s in [0i64, 2] {
            let response = client
                .query("/query", tenant, WHATIF_PARAM, &[("s", Json::Int(s))])
                .unwrap();
            assert_eq!(response.status, 200);
            let got = response
                .json()
                .unwrap()
                .get("value")
                .and_then(Json::as_f64)
                .unwrap();
            let prepared = lib.prepare(WHATIF_PARAM).unwrap();
            let expect = prepared
                .execute_whatif_with(&hyper_query::Bindings::new().set("s", s))
                .unwrap();
            assert_eq!(got.to_bits(), expect.value.to_bits(), "{tenant} s={s}");
        }

        // How-to: objective, baseline, and the chosen updates all match.
        let response = client.query("/query", tenant, HOWTO, &[]).unwrap();
        assert_eq!(response.status, 200, "{:?}", response.json());
        let body = response.json().unwrap();
        let expect = lib.howto_text(HOWTO).unwrap();
        assert_eq!(
            body.get("objective")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            expect.objective.to_bits()
        );
        assert_eq!(
            body.get("baseline")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            expect.baseline.to_bits()
        );
        let chosen = match body.get("chosen").unwrap() {
            Json::Arr(items) => items
                .iter()
                .map(|u| {
                    format!(
                        "{}={}",
                        u.get("attr").and_then(Json::as_str).unwrap(),
                        u.get("update").and_then(Json::as_str).unwrap()
                    )
                })
                .collect::<Vec<_>>(),
            other => panic!("chosen should be an array, got {other:?}"),
        };
        let expect_chosen: Vec<String> = expect
            .chosen
            .iter()
            .map(|u| format!("{}={}", u.attr, u.func))
            .collect();
        assert_eq!(chosen, expect_chosen, "{tenant}");

        // Explain mirrors the library plan.
        let response = client.query("/explain", tenant, WHATIF, &[]).unwrap();
        assert_eq!(response.status, 200);
        let body = response.json().unwrap();
        let report = lib.prepare(WHATIF).unwrap().explain().unwrap();
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("whatif"));
        assert_eq!(
            body.get("deterministic").and_then(Json::as_bool),
            Some(report.deterministic)
        );
        assert_eq!(
            body.get("view").unwrap().get("rows").and_then(Json::as_i64),
            Some(report.view.rows as i64)
        );
    }

    // The two tenants were generated with different seeds: their answers
    // must differ, or the server is routing every tenant to one session.
    let v0 = client
        .query("/query", "t0", WHATIF, &[])
        .unwrap()
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap();
    let v1 = client
        .query("/query", "t1", WHATIF, &[])
        .unwrap()
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap();
    assert_ne!(v0.to_bits(), v1.to_bits(), "tenants must be isolated");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_first_requests_load_each_snapshot_once() {
    let dir = registry_dir("singleflight", 600, &[3]);
    let server = start(
        &dir,
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    let barrier = Arc::new(Barrier::new(8));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let response = client.query("/query", "t0", WHATIF, &[]).unwrap();
                assert_eq!(response.status, 200, "{:?}", response.json());
            });
        }
    });

    assert_eq!(
        server.tenants().snapshot_loads("t0"),
        1,
        "8 concurrent first requests must trigger exactly one snapshot load"
    );

    // /stats agrees and includes the loaded session's counters.
    let mut client = Client::connect(addr).unwrap();
    let stats = client
        .request("GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let t0 = stats.get("tenants").unwrap().get("t0").unwrap();
    assert_eq!(t0.get("loaded").and_then(Json::as_bool), Some(true));
    assert_eq!(t0.get("snapshot_loads").and_then(Json::as_i64), Some(1));
    assert_eq!(t0.get("accepted").and_then(Json::as_i64), Some(8));
    assert_eq!(t0.get("ok").and_then(Json::as_i64), Some(8));
    assert_eq!(t0.get("in_flight").and_then(Json::as_i64), Some(0));
    assert_eq!(
        t0.get("session")
            .unwrap()
            .get("texts_parsed")
            .and_then(Json::as_i64),
        Some(1),
        "identical query text parses once; 7 requests ride the template"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn saturation_sheds_with_typed_503_and_retry_after() {
    let dir = registry_dir("shed", 1500, &[4]);
    // One executor, queue of one: at most 2 requests in the house; a
    // 12-wide simultaneous burst of *distinct* texts (each trains a fresh
    // estimator) must shed.
    let server = start(
        &dir,
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    let ok = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    let barrier = Barrier::new(12);
    std::thread::scope(|scope| {
        for i in 0..12 {
            let (ok, shed, barrier) = (&ok, &shed, &barrier);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let text = format!(
                    "Use german_syn Update(status) = {} Output Count(Post(credit) = 'Good')",
                    i % 4
                );
                barrier.wait();
                let response = client.query("/query", "t0", &text, &[]).unwrap();
                match response.status {
                    200 => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    503 => {
                        shed.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(
                            response.header("retry-after"),
                            Some("1"),
                            "shed responses carry Retry-After"
                        );
                        let body = response.json().unwrap();
                        let msg = body.get("error").and_then(Json::as_str).unwrap();
                        assert!(msg.contains("queue"), "{msg}");
                    }
                    other => panic!("only 200 or 503 are acceptable, got {other}"),
                }
            });
        }
    });
    let (ok, shed) = (ok.load(Ordering::Relaxed), shed.load(Ordering::Relaxed));
    assert_eq!(ok + shed, 12);
    assert!(ok >= 1, "at least one request must be served");
    assert!(shed >= 1, "a 12-wide burst into capacity 2 must shed");

    // The server is alive and consistent after the storm: /health inline,
    // /stats books every shed, and a fresh query succeeds.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.request("GET", "/health", None).unwrap().status, 200);
    let stats = client
        .request("GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let t0 = stats.get("tenants").unwrap().get("t0").unwrap();
    assert_eq!(t0.get("shed").and_then(Json::as_i64), Some(shed as i64));
    assert_eq!(t0.get("accepted").and_then(Json::as_i64), Some(ok as i64));
    let response = client.query("/query", "t0", WHATIF, &[]).unwrap();
    assert_eq!(response.status, 200);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_requests_answer_typed_4xx_and_never_kill_the_server() {
    let dir = registry_dir("malformed", 300, &[5]);
    let server = start(&dir, ServeConfig::default());
    let addr = server.addr();

    // Hostile bytes on the wire → 400, connection dropped, server fine.
    let mut raw = Client::connect(addr).unwrap();
    let response = raw.send_raw(b"EXPLODE !!! nonsense\r\n\r\n").unwrap();
    assert_eq!(response.status, 400);

    // Unsupported HTTP version → 400.
    let mut raw = Client::connect(addr).unwrap();
    let response = raw.send_raw(b"GET /health HTTP/2.0\r\n\r\n").unwrap();
    assert_eq!(response.status, 400);

    // POST without Content-Length → 411.
    let mut raw = Client::connect(addr).unwrap();
    let response = raw
        .send_raw(b"POST /query HTTP/1.1\r\nHost: h\r\n\r\n")
        .unwrap();
    assert_eq!(response.status, 411);

    // Oversized declared body → 413.
    let mut raw = Client::connect(addr).unwrap();
    let response = raw
        .send_raw(b"POST /query HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
        .unwrap();
    assert_eq!(response.status, 413);

    let mut client = Client::connect(addr).unwrap();
    // Bad JSON body → 400 (connection stays usable: protocol errors are
    // not framing errors).
    let response = client
        .request("POST", "/query", Some(&Json::Str("not an object".into())))
        .unwrap();
    assert_eq!(response.status, 400);
    // Missing fields → 400.
    let response = client
        .request(
            "POST",
            "/query",
            Some(&Json::obj([("tenant", "t0".into())])),
        )
        .unwrap();
    assert_eq!(response.status, 400);
    // Non-scalar binding → 400.
    let response = client
        .query("/query", "t0", WHATIF_PARAM, &[("s", Json::Arr(vec![]))])
        .unwrap();
    assert_eq!(response.status, 400);
    // Unparseable query text → 400 from the engine, typed.
    let response = client
        .query("/query", "t0", "Use nonsense !!!", &[])
        .unwrap();
    assert_eq!(response.status, 400);
    // Unknown tenant → 404 without loading anything.
    let response = client.query("/query", "intruder", WHATIF, &[]).unwrap();
    assert_eq!(response.status, 404);
    // Unknown path → 404; wrong method on a real path → 405.
    assert_eq!(client.request("GET", "/nope", None).unwrap().status, 404);
    assert_eq!(client.request("GET", "/query", None).unwrap().status, 405);

    // After all of that: still healthy, still serving.
    assert_eq!(client.request("GET", "/health", None).unwrap().status, 200);
    let response = client.query("/query", "t0", WHATIF, &[]).unwrap();
    assert_eq!(response.status, 200);
    let stats = client
        .request("GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let malformed = stats
        .get("server")
        .unwrap()
        .get("malformed")
        .and_then(Json::as_i64)
        .unwrap();
    assert!(
        malformed >= 5,
        "typed failures are counted, got {malformed}"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timeout_answers_504_and_the_session_is_not_poisoned() {
    // Big enough that the cold path (snapshot load + view + training)
    // takes several milliseconds: the 1ms deadline below must stay
    // unmeetable even when parallel suite load perturbs scheduling.
    let dir = registry_dir("timeout", 12_000, &[6]);
    let server = start(&dir, ServeConfig::default());
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    // A 1ms deadline on a cold tenant (snapshot load + view + training)
    // cannot be met: the caller gets a typed 504 while the executor
    // finishes in the background and warms every cache.
    let body = Json::obj([
        ("tenant", "t0".into()),
        ("query", WHATIF.into()),
        ("timeout_ms", Json::Int(1)),
    ]);
    let response = client.request("POST", "/query", Some(&body)).unwrap();
    assert_eq!(response.status, 504, "{:?}", response.json());

    // The same query with a sane deadline succeeds on the same session
    // and still matches the library bit-for-bit.
    let response = client.query("/query", "t0", WHATIF, &[]).unwrap();
    assert_eq!(response.status, 200, "{:?}", response.json());
    let got = response
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap();
    let expect = library_session(&dir, "t0").whatif_text(WHATIF).unwrap();
    assert_eq!(got.to_bits(), expect.value.to_bits());

    let stats = client
        .request("GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let t0 = stats.get("tenants").unwrap().get("t0").unwrap();
    assert_eq!(t0.get("timeouts").and_then(Json::as_i64), Some(1));
    assert_eq!(t0.get("snapshot_loads").and_then(Json::as_i64), Some(1));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let dir = registry_dir("drain", 1500, &[7]);
    let server = start(
        &dir,
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();

    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query("/query", "t0", WHATIF, &[]).unwrap()
    });

    // Wait until the request is admitted (queued or executing)…
    let counters = server.stats().tenant("t0");
    let start = Instant::now();
    while counters.in_flight.load(Ordering::Relaxed) == 0 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "request was never admitted"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // …then shut down mid-execution. shutdown() blocks until the
    // admitted job drains, and the waiting client must still get its
    // full, correct answer.
    server.shutdown();

    let response = in_flight.join().expect("client thread");
    assert_eq!(response.status, 200, "in-flight work drains to an answer");
    let got = response
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap();
    let expect = library_session(&dir, "t0").whatif_text(WHATIF).unwrap();
    assert_eq!(got.to_bits(), expect.value.to_bits());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_is_served_inline_and_health_reports_tenant_count() {
    let dir = registry_dir("inline", 300, &[8, 9]);
    let server = start(&dir, ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let health = client.request("GET", "/health", None).unwrap();
    assert_eq!(health.status, 200);
    let body = health.json().unwrap();
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(body.get("tenants").and_then(Json::as_i64), Some(2));
    assert!(body.get("uptime_ms").and_then(Json::as_i64).is_some());
    assert_eq!(body.get("tenants_loaded").and_then(Json::as_i64), Some(0));

    // Both registered tenants appear in /stats before any load.
    let stats = client
        .request("GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    for t in ["t0", "t1"] {
        let entry = stats.get("tenants").unwrap().get(t).unwrap();
        assert_eq!(entry.get("loaded").and_then(Json::as_bool), Some(false));
    }
    let srv = stats.get("server").unwrap();
    assert_eq!(srv.get("queue_capacity").and_then(Json::as_i64), Some(64));
    assert_eq!(srv.get("workers").and_then(Json::as_i64), Some(2));

    // Touch one tenant, then /health shows it loaded with its version.
    let r = client.query("/query", "t0", WHATIF, &[]).unwrap();
    assert_eq!(r.status, 200, "{:?}", r.json());
    let body = client
        .request("GET", "/health", None)
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(body.get("tenants_loaded").and_then(Json::as_i64), Some(1));
    assert_eq!(
        body.get("data_versions")
            .and_then(|v| v.get("t0"))
            .and_then(Json::as_i64),
        Some(0),
        "fresh tenant serves at data_version 0"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_invalidates_causally_and_survives_restart() {
    let dir = registry_dir("ingest", 600, &[11]);
    let server = start(&dir, ServeConfig::default());
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    // A filtered view the delta will NOT touch (it admits only age = 0;
    // the delta appends age = 2 rows) and the full-table view it WILL.
    const UNTOUCHED: &str = "Use (Select status, credit From german_syn Where age = 0) \
         Update(status) = 3 Output Count(Post(credit) = 'Good')";
    let untouched_before = {
        let r = client.query("/query", "t0", UNTOUCHED, &[]).unwrap();
        assert_eq!(r.status, 200, "{:?}", r.json());
        r.json()
            .unwrap()
            .get("value")
            .and_then(Json::as_f64)
            .unwrap()
    };
    let r = client.query("/query", "t0", WHATIF, &[]).unwrap();
    assert_eq!(r.status, 200);
    let misses_before = {
        let stats = client
            .request("GET", "/stats", None)
            .unwrap()
            .json()
            .unwrap();
        let s = stats
            .get("tenants")
            .unwrap()
            .get("t0")
            .unwrap()
            .get("session")
            .unwrap()
            .clone();
        (
            s.get("view_misses").and_then(Json::as_i64).unwrap(),
            s.get("estimator_misses").and_then(Json::as_i64).unwrap(),
        )
    };

    // Append 20 rows, all age = 2 (columns: age, sex, status, savings,
    // housing, credit_amount, credit — declaration order).
    let rows: Vec<Vec<Json>> = (0..20)
        .map(|i: i64| {
            vec![
                Json::Int(2),
                Json::Int(i % 2),
                Json::Int(3),
                Json::Int(i % 4),
                Json::Int(i % 3),
                Json::Int(3 - i % 4),
                Json::Str(if i % 3 == 0 { "Bad" } else { "Good" }.into()),
            ]
        })
        .collect();
    let r = client.ingest("t0", "german_syn", &rows, &[]).unwrap();
    assert_eq!(r.status, 200, "{:?}", r.json());
    let report = r.json().unwrap();
    assert_eq!(report.get("status").and_then(Json::as_str), Some("applied"));
    assert_eq!(report.get("data_version").and_then(Json::as_i64), Some(1));
    assert!(
        report.get("views_kept").and_then(Json::as_i64).unwrap() >= 1,
        "the non-matching filtered view survives: {report:?}"
    );
    assert!(
        report
            .get("views_invalidated")
            .and_then(Json::as_i64)
            .unwrap()
            >= 1,
        "the full-table view is invalidated: {report:?}"
    );

    // The untouched-block query re-serves from cache: the same value,
    // zero new view builds, zero retrains.
    let r = client.query("/query", "t0", UNTOUCHED, &[]).unwrap();
    assert_eq!(r.status, 200, "{:?}", r.json());
    let untouched_after = r
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(untouched_after.to_bits(), untouched_before.to_bits());
    let stats = client
        .request("GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let s = stats
        .get("tenants")
        .unwrap()
        .get("t0")
        .unwrap()
        .get("session")
        .unwrap()
        .clone();
    assert_eq!(
        s.get("view_misses").and_then(Json::as_i64),
        Some(misses_before.0),
        "no view rebuild after refresh"
    );
    assert_eq!(
        s.get("estimator_misses").and_then(Json::as_i64),
        Some(misses_before.1),
        "no retraining after refresh"
    );
    assert_eq!(s.get("data_version").and_then(Json::as_i64), Some(1));
    assert_eq!(s.get("refreshes").and_then(Json::as_i64), Some(1));

    // The touched full-table query matches a cold library session built
    // on the post-delta database — bit-for-bit.
    let post_delta = {
        let snapshot = Snapshot::load(dir.join("t0.hypr")).unwrap();
        let source = snapshot.database.table("german_syn").unwrap();
        let mut b = hyper_storage::TableBuilder::new("german_syn", source.schema().clone());
        for row in &rows {
            let vals: Vec<hyper_storage::Value> =
                row.iter().map(|v| v.to_value().unwrap()).collect();
            b = b.row(vals).unwrap();
        }
        let delta = hyper_ingest::DeltaBatch::new().append(b.build());
        let db = delta.apply(&snapshot.database).unwrap();
        HyperSession::builder(db)
            .maybe_graph(snapshot.graph)
            .config(EngineConfig::hyper())
            .build()
    };
    let expect = post_delta.whatif_text(WHATIF).unwrap();
    let r = client.query("/query", "t0", WHATIF, &[]).unwrap();
    assert_eq!(r.status, 200);
    let got = r
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(got.to_bits(), expect.value.to_bits(), "post-delta parity");

    // Malformed ingests are typed 400s.
    let r = client.ingest("t0", "no_such_table", &rows, &[]).unwrap();
    assert_eq!(r.status, 400, "{:?}", r.json());
    let r = client.ingest("t0", "german_syn", &[], &[]).unwrap();
    assert_eq!(r.status, 400, "empty delta is refused");

    // Restart on the same directory: the delta log replays over the
    // snapshot and the server resumes at the ingested version.
    server.shutdown();
    let server = start(&dir, ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let r = client.query("/query", "t0", WHATIF, &[]).unwrap();
    assert_eq!(r.status, 200, "{:?}", r.json());
    let got = r
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(got.to_bits(), expect.value.to_bits(), "replay parity");
    let stats = client
        .request("GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let s = stats
        .get("tenants")
        .unwrap()
        .get("t0")
        .unwrap()
        .get("session")
        .unwrap()
        .clone();
    assert_eq!(s.get("data_version").and_then(Json::as_i64), Some(1));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_exposition_is_valid_and_carries_latency_and_phase_series() {
    let dir = registry_dir("metrics", 600, &[12]);
    let server = start(&dir, ServeConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    // Drive every admitted route once so each family has samples.
    let r = client.query("/query", "t0", WHATIF, &[]).unwrap();
    assert_eq!(r.status, 200, "{:?}", r.json());
    let r = client.query("/query", "t0", WHATIF, &[]).unwrap();
    assert_eq!(r.status, 200);
    let r = client.query("/explain", "t0", WHATIF, &[]).unwrap();
    assert_eq!(r.status, 200);
    let rows = vec![vec![
        Json::Int(2),
        Json::Int(1),
        Json::Int(3),
        Json::Int(0),
        Json::Int(1),
        Json::Int(2),
        Json::Str("Good".into()),
    ]];
    let r = client.ingest("t0", "german_syn", &rows, &[]).unwrap();
    assert_eq!(r.status, 200, "{:?}", r.json());

    let response = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(response.status, 200);
    assert!(
        response
            .header("content-type")
            .unwrap()
            .contains("text/plain"),
        "Prometheus scrapes expect text/plain"
    );
    let text = response.text().unwrap();
    let families = hyper_serve::metrics::validate(text)
        .unwrap_or_else(|e| panic!("malformed exposition: {e}\n{text}"));
    for family in [
        "hyper_serve_uptime_seconds",
        "hyper_serve_requests_total",
        "hyper_serve_accepted_total",
        "hyper_serve_latency_seconds",
        "hyper_session_phase_seconds_total",
        "hyper_session_data_version",
    ] {
        assert!(families.iter().any(|f| f == family), "missing {family}");
    }
    // Per-tenant quantiles for both stages of the query route.
    for stage in ["queue_wait", "execute"] {
        for q in ["0.5", "0.99"] {
            let series = format!(
                "hyper_serve_latency_seconds{{tenant=\"t0\",route=\"query\",stage=\"{stage}\",quantile=\"{q}\"}}"
            );
            assert!(text.contains(&series), "missing series {series}\n{text}");
        }
    }
    assert!(
        text.contains("route=\"ingest\",stage=\"execute\""),
        "ingest latency is recorded"
    );
    // Tracing is on for tenant sessions: phase self-time shows up.
    assert!(
        text.contains("hyper_session_phase_seconds_total{tenant=\"t0\",phase=\"forest_train\"}"),
        "{text}"
    );
    assert!(text.contains("hyper_session_data_version{tenant=\"t0\"} 1"));

    // Wrong method on /metrics is a 405, like every other route.
    assert_eq!(
        client.request("POST", "/metrics", None).unwrap().status,
        405
    );

    // /stats carries the matching percentile objects and phase totals.
    let stats = client
        .request("GET", "/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let t0 = stats.get("tenants").unwrap().get("t0").unwrap();
    let query_latency = t0.get("latency").unwrap().get("query").unwrap();
    for stage in ["queue_wait", "execute"] {
        let h = query_latency.get(stage).unwrap();
        assert!(h.get("count").and_then(Json::as_i64).unwrap() >= 2);
        let p50 = h.get("p50_us").and_then(Json::as_f64).unwrap();
        let p99 = h.get("p99_us").and_then(Json::as_f64).unwrap();
        assert!(p50 >= 0.0 && p99 >= p50, "{stage}: p50={p50} p99={p99}");
    }
    let session = t0.get("session").unwrap();
    assert!(
        session
            .get("traced_queries")
            .and_then(Json::as_i64)
            .unwrap()
            >= 3
    );
    let phases = session.get("phases").unwrap();
    let train = phases.get("forest_train").unwrap();
    assert!(train.get("self_ns").and_then(Json::as_i64).unwrap() > 0);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Outcome rendering itself is exercised against the engine types here
/// (the servers above cover it end-to-end; this pins the float path).
#[test]
fn outcome_json_renders_floats_shortest_round_trip() {
    let outcome = QueryOutcome::WhatIf(hyper_core::WhatIfResult {
        value: 0.1 + 0.2,
        n_view_rows: 3,
        n_scope_rows: 2,
        n_updated_rows: 1,
        backdoor: vec!["z".to_string()],
        trained_rows: 3,
        elapsed: Duration::from_micros(7),
    });
    let rendered = hyper_serve::outcome_json(&outcome).render();
    assert!(
        rendered.contains("\"value\":0.30000000000000004"),
        "{rendered}"
    );
    let back = hyper_serve::json::parse(&rendered).unwrap();
    assert_eq!(
        back.get("value").and_then(Json::as_f64).unwrap().to_bits(),
        (0.1f64 + 0.2).to_bits()
    );
}
