//! Property tests: branch & bound must agree with exhaustive enumeration on
//! random small 0-1 models (the correctness backbone of the how-to engine).

use hyper_ip::{solve_by_enumeration, solve_ilp, IpError, Model, Sense};
use proptest::prelude::*;

/// A random 0-1 model: ≤ 8 binaries, ≤ 4 Le/Ge constraints with small
/// integer coefficients.
fn arb_model() -> impl Strategy<Value = Model> {
    let nvars = 1..=8usize;
    nvars.prop_flat_map(|n| {
        let objs = prop::collection::vec(-10..=10i32, n);
        let ncons = 0..=4usize;
        let cons = ncons.prop_flat_map(move |m| {
            prop::collection::vec(
                (
                    prop::collection::vec(-5..=5i32, n),
                    prop::bool::ANY,
                    -8..=12i32,
                ),
                m,
            )
        });
        (objs, cons).prop_map(move |(objs, cons)| {
            let mut model = Model::maximize();
            for (i, o) in objs.iter().enumerate() {
                model.add_binary(format!("x{i}"), *o as f64);
            }
            for (ci, (coefs, is_le, rhs)) in cons.iter().enumerate() {
                let sparse: Vec<(usize, f64)> = coefs
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c != 0)
                    .map(|(i, c)| (i, *c as f64))
                    .collect();
                if sparse.is_empty() {
                    continue;
                }
                let sense = if *is_le { Sense::Le } else { Sense::Ge };
                model
                    .add_constraint(format!("c{ci}"), sparse, sense, *rhs as f64)
                    .unwrap();
            }
            model
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn branch_bound_matches_enumeration(model in arb_model()) {
        let exact = solve_by_enumeration(&model);
        let bb = solve_ilp(&model);
        match (exact, bb) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    (a.objective - b.objective).abs() < 1e-6,
                    "enumeration {} vs b&b {}",
                    a.objective,
                    b.objective
                );
                prop_assert!(model.is_feasible(&b.values, 1e-6));
            }
            (Err(IpError::Infeasible), Err(IpError::Infeasible)) => {}
            (a, b) => prop_assert!(false, "solver disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn lp_relaxation_bounds_ilp(model in arb_model()) {
        if let (Ok(lp), Ok(ilp)) = (hyper_ip::solve_lp(&model), solve_ilp(&model)) {
            prop_assert!(
                lp.objective >= ilp.objective - 1e-6,
                "LP {} must upper-bound ILP {}",
                lp.objective,
                ilp.objective
            );
        }
    }
}
