//! Dense two-phase primal simplex for bounded LPs.
//!
//! Small and exact-enough for the how-to IPs (tens to a few hundred
//! variables). Bland's anti-cycling rule is used throughout, trading a
//! little speed for guaranteed termination.

use crate::error::{IpError, Result};
use crate::model::{Direction, Model, Sense, Solution};

const EPS: f64 = 1e-9;
const MAX_ITERS: usize = 50_000;

/// Solve the LP relaxation of `model` with per-variable bound overrides
/// (used by branch & bound). `lower`/`upper` must have one entry per
/// variable.
#[allow(clippy::needless_range_loop)]
pub fn solve_lp_with_bounds(model: &Model, lower: &[f64], upper: &[f64]) -> Result<Solution> {
    model.validate()?;
    let n = model.variables.len();
    if lower.len() != n || upper.len() != n {
        return Err(IpError::InvalidModel("bound override arity".into()));
    }
    for i in 0..n {
        if lower[i] > upper[i] + EPS {
            return Err(IpError::Infeasible);
        }
    }

    // Internal direction: maximize.
    let sign = match model.direction {
        Direction::Maximize => 1.0,
        Direction::Minimize => -1.0,
    };

    // Shift variables: x = lo + x', x' ∈ [0, range]. Fixed variables
    // (range ≈ 0) are substituted out.
    let mut live: Vec<usize> = Vec::new(); // model index per live column
    let mut range: Vec<f64> = Vec::new();
    for i in 0..n {
        let r = upper[i] - lower[i];
        if r > EPS {
            live.push(i);
            range.push(r);
        }
    }
    let nl = live.len();

    // Objective over live columns plus the constant from lower bounds.
    let mut c = vec![0.0f64; nl];
    let mut obj_const = 0.0;
    for i in 0..n {
        obj_const += sign * model.objective[i] * lower[i];
    }
    for (j, &i) in live.iter().enumerate() {
        c[j] = sign * model.objective[i];
    }

    // Rows: model constraints (rhs adjusted by lower bounds) + upper bounds
    // of live variables.
    struct RawRow {
        coefs: Vec<f64>, // dense over live columns
        sense: Sense,
        rhs: f64,
    }
    let live_col: Vec<Option<usize>> = {
        let mut m = vec![None; n];
        for (j, &i) in live.iter().enumerate() {
            m[i] = Some(j);
        }
        m
    };
    let mut raw: Vec<RawRow> = Vec::with_capacity(model.constraints.len() + nl);
    for con in &model.constraints {
        let mut coefs = vec![0.0; nl];
        let mut rhs = con.rhs;
        for &(i, k) in &con.coefs {
            rhs -= k * lower[i];
            if let Some(j) = live_col[i] {
                coefs[j] += k;
            }
        }
        // Constant-only constraint: check immediately.
        if coefs.iter().all(|&k| k.abs() <= EPS) {
            let ok = match con.sense {
                Sense::Le => 0.0 <= rhs + 1e-7,
                Sense::Ge => 0.0 >= rhs - 1e-7,
                Sense::Eq => rhs.abs() <= 1e-7,
            };
            if !ok {
                return Err(IpError::Infeasible);
            }
            continue;
        }
        raw.push(RawRow {
            coefs,
            sense: con.sense,
            rhs,
        });
    }
    for j in 0..nl {
        let mut coefs = vec![0.0; nl];
        coefs[j] = 1.0;
        raw.push(RawRow {
            coefs,
            sense: Sense::Le,
            rhs: range[j],
        });
    }

    // Build the tableau. Columns: nl structural + slacks/surplus + artificials + rhs.
    let m = raw.len();
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for r in &raw {
        let flip = r.rhs < 0.0;
        let sense = effective_sense(r.sense, flip);
        match sense {
            Sense::Le => n_slack += 1,
            Sense::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Sense::Eq => n_art += 1,
        }
    }
    let total = nl + n_slack + n_art;
    let width = total + 1; // + rhs
    let mut tab = vec![0.0f64; m * width];
    let mut basis = vec![0usize; m];
    let art_start = nl + n_slack;

    let mut slack_cursor = nl;
    let mut art_cursor = art_start;
    for (ri, r) in raw.iter().enumerate() {
        let flip = r.rhs < 0.0;
        let s = if flip { -1.0 } else { 1.0 };
        for j in 0..nl {
            tab[ri * width + j] = s * r.coefs[j];
        }
        tab[ri * width + total] = s * r.rhs;
        match effective_sense(r.sense, flip) {
            Sense::Le => {
                tab[ri * width + slack_cursor] = 1.0;
                basis[ri] = slack_cursor;
                slack_cursor += 1;
            }
            Sense::Ge => {
                tab[ri * width + slack_cursor] = -1.0;
                slack_cursor += 1;
                tab[ri * width + art_cursor] = 1.0;
                basis[ri] = art_cursor;
                art_cursor += 1;
            }
            Sense::Eq => {
                tab[ri * width + art_cursor] = 1.0;
                basis[ri] = art_cursor;
                art_cursor += 1;
            }
        }
    }

    // Phase 1: minimize sum of artificials (as maximize of negated sum).
    if n_art > 0 {
        let mut cost1 = vec![0.0f64; total];
        for j in art_start..total {
            cost1[j] = -1.0;
        }
        let obj = run_simplex(&mut tab, &mut basis, m, width, &cost1)?;
        if obj < -1e-7 {
            return Err(IpError::Infeasible);
        }
        // Drive artificials out of the basis.
        for row in 0..m {
            if basis[row] >= art_start {
                let mut pivoted = false;
                for j in 0..art_start {
                    if tab[row * width + j].abs() > 1e-7 {
                        pivot(&mut tab, &mut basis, m, width, row, j);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: harmless; keep (its rhs is ~0).
                }
            }
        }
        // Blank out artificial columns so phase 2 never re-enters them.
        for row in 0..m {
            for j in art_start..total {
                tab[row * width + j] = 0.0;
            }
        }
    }

    // Phase 2: maximize the real objective (zero cost on slack columns).
    let mut cost2 = vec![0.0f64; total];
    cost2[..nl].copy_from_slice(&c);
    let obj = run_simplex(&mut tab, &mut basis, m, width, &cost2)?;

    // Extract solution.
    let mut xprime = vec![0.0f64; total];
    for row in 0..m {
        if basis[row] < total {
            xprime[basis[row]] = tab[row * width + total];
        }
    }
    let mut values = lower.to_vec();
    for (j, &i) in live.iter().enumerate() {
        values[i] = lower[i] + xprime[j].clamp(0.0, range[j]);
    }
    let internal_obj = obj + obj_const;
    Ok(Solution {
        values,
        objective: sign * internal_obj,
    })
}

/// Solve the LP relaxation of `model` using its declared bounds.
pub fn solve_lp(model: &Model) -> Result<Solution> {
    let lower: Vec<f64> = model.variables.iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = model.variables.iter().map(|v| v.upper).collect();
    solve_lp_with_bounds(model, &lower, &upper)
}

fn effective_sense(s: Sense, flipped: bool) -> Sense {
    if !flipped {
        return s;
    }
    match s {
        Sense::Le => Sense::Ge,
        Sense::Ge => Sense::Le,
        Sense::Eq => Sense::Eq,
    }
}

/// Run simplex to optimality for `maximize cost·x`; returns the objective.
/// Uses Bland's rule (smallest eligible index) for entering and leaving
/// variables, guaranteeing termination.
fn run_simplex(
    tab: &mut [f64],
    basis: &mut [usize],
    m: usize,
    width: usize,
    cost: &[f64],
) -> Result<f64> {
    let total = width - 1;
    for _ in 0..MAX_ITERS {
        // Reduced costs: r_j = cost_j − Σ_i cost_basis(i)·tab[i][j].
        // (Pricing from scratch keeps the code simple; models are small.)
        let mut entering: Option<usize> = None;
        for j in 0..total {
            let mut r = cost[j];
            for row in 0..m {
                let cb = cost[basis[row]];
                if cb != 0.0 {
                    r -= cb * tab[row * width + j];
                }
            }
            if r > 1e-9 {
                entering = Some(j);
                break; // Bland: first improving column
            }
        }
        let Some(enter) = entering else {
            // Optimal: objective = Σ cost_basis(i)·rhs_i.
            let mut obj = 0.0;
            for row in 0..m {
                obj += cost[basis[row]] * tab[row * width + total];
            }
            return Ok(obj);
        };
        // Ratio test (Bland tie-break on basis variable index).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for row in 0..m {
            let a = tab[row * width + enter];
            if a > 1e-9 {
                let ratio = tab[row * width + total] / a;
                let better = ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12 && leave.is_some_and(|l| basis[row] < basis[l]));
                if better {
                    best_ratio = ratio;
                    leave = Some(row);
                }
            }
        }
        let Some(lrow) = leave else {
            return Err(IpError::Unbounded);
        };
        pivot(tab, basis, m, width, lrow, enter);
    }
    Err(IpError::IterationLimit)
}

fn pivot(tab: &mut [f64], basis: &mut [usize], m: usize, width: usize, row: usize, col: usize) {
    let p = tab[row * width + col];
    debug_assert!(p.abs() > 1e-12, "pivot on ~0");
    for j in 0..width {
        tab[row * width + j] /= p;
    }
    for r in 0..m {
        if r == row {
            continue;
        }
        let factor = tab[r * width + col];
        if factor == 0.0 {
            continue;
        }
        for j in 0..width {
            tab[r * width + j] -= factor * tab[row * width + j];
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn textbook_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18; optimum (2, 6) = 36.
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, 100.0, 3.0);
        let y = m.add_continuous("y", 0.0, 100.0, 5.0);
        m.add_constraint("c1", vec![(x, 1.0)], Sense::Le, 4.0)
            .unwrap();
        m.add_constraint("c2", vec![(y, 2.0)], Sense::Le, 12.0)
            .unwrap();
        m.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 36.0).abs() < 1e-6, "{s}");
        assert!((s.values[x] - 2.0).abs() < 1e-6);
        assert!((s.values[y] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + y s.t. x + y ≥ 4, x − y = 1 → (2.5, 1.5), obj 4.
        let mut m = Model::minimize();
        let x = m.add_continuous("x", 0.0, 10.0, 1.0);
        let y = m.add_continuous("y", 0.0, 10.0, 1.0);
        m.add_constraint("ge", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 4.0)
            .unwrap();
        m.add_constraint("eq", vec![(x, 1.0), (y, -1.0)], Sense::Eq, 1.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6, "{s}");
        assert!((s.values[x] - 2.5).abs() < 1e-6);
        assert!((s.values[y] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, 1.0, 1.0);
        m.add_constraint("c", vec![(x, 1.0)], Sense::Ge, 5.0)
            .unwrap();
        assert_eq!(solve_lp(&m).unwrap_err(), IpError::Infeasible);
    }

    #[test]
    fn bounds_respected_and_overridable() {
        let mut m = Model::maximize();
        let _x = m.add_continuous("x", 0.0, 3.0, 1.0);
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-9);
        let s = solve_lp_with_bounds(&m, &[0.0], &[1.5]).unwrap();
        assert!((s.objective - 1.5).abs() < 1e-9);
        // Crossed override → infeasible.
        assert_eq!(
            solve_lp_with_bounds(&m, &[2.0], &[1.0]).unwrap_err(),
            IpError::Infeasible
        );
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y with x ∈ [2, 5], y ∈ [1, 4], x + y ≥ 5 → 5.
        let mut m = Model::minimize();
        let x = m.add_continuous("x", 2.0, 5.0, 1.0);
        let y = m.add_continuous("y", 1.0, 4.0, 1.0);
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 5.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-6, "{s}");
    }

    #[test]
    fn fixed_variables_substituted() {
        // x fixed at 2 by bounds; max x + y, y ≤ 1 → 3.
        let mut m = Model::maximize();
        let _x = m.add_continuous("x", 2.0, 2.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0, 1.0);
        m.add_constraint("c", vec![(y, 1.0)], Sense::Le, 1.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-9);
        assert_eq!(s.values[0], 2.0);
    }

    #[test]
    fn degenerate_problems_terminate() {
        // Multiple redundant constraints (degeneracy stress).
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, 10.0, 1.0);
        let y = m.add_continuous("y", 0.0, 10.0, 1.0);
        for i in 0..6 {
            m.add_constraint(format!("c{i}"), vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0)
                .unwrap();
        }
        m.add_constraint("tie", vec![(x, 1.0), (y, -1.0)], Sense::Eq, 0.0)
            .unwrap();
        let s = solve_lp(&m).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn constant_infeasible_constraint() {
        // All variables fixed; constraint violated by constants.
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 1.0, 1.0, 1.0);
        m.add_constraint("c", vec![(x, 1.0)], Sense::Ge, 2.0)
            .unwrap();
        assert_eq!(solve_lp(&m).unwrap_err(), IpError::Infeasible);
    }
}
