//! Error type for the optimization subsystem.

use std::fmt;

/// Errors raised while building or solving models.
#[derive(Debug, Clone, PartialEq)]
pub enum IpError {
    /// Malformed model (bad variable index, empty model, NaN coefficients…).
    InvalidModel(String),
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// Iteration limit exceeded (defensive; should not occur in practice).
    IterationLimit,
    /// The exhaustive oracle refused a model that is too large.
    TooLarge(String),
}

impl fmt::Display for IpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpError::InvalidModel(m) => write!(f, "invalid model: {m}"),
            IpError::Infeasible => write!(f, "infeasible"),
            IpError::Unbounded => write!(f, "unbounded"),
            IpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            IpError::TooLarge(m) => write!(f, "model too large for enumeration: {m}"),
        }
    }
}

impl std::error::Error for IpError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, IpError>;
