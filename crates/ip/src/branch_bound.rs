//! Branch-and-bound 0-1/mixed-integer solver over the simplex relaxation.
//!
//! This is "the existing IP solver" slot of paper §4.3, built from scratch:
//! depth-first branch & bound with LP bounds, most-fractional branching, and
//! best-first child ordering.

use crate::error::{IpError, Result};
use crate::model::{Direction, Model, Solution};
use crate::simplex::solve_lp_with_bounds;

const INT_TOL: f64 = 1e-6;
const MAX_NODES: usize = 200_000;

/// Solve a mixed 0-1/integer model exactly.
pub fn solve_ilp(model: &Model) -> Result<Solution> {
    model.validate()?;
    // Internally maximize.
    let maximize = model.direction == Direction::Maximize;

    let lower0: Vec<f64> = model.variables.iter().map(|v| v.lower).collect();
    let upper0: Vec<f64> = model.variables.iter().map(|v| v.upper).collect();

    let mut stack: Vec<(Vec<f64>, Vec<f64>)> = vec![(lower0, upper0)];
    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;

    let better = |a: f64, b: f64| if maximize { a > b + 1e-9 } else { a < b - 1e-9 };

    while let Some((lo, hi)) = stack.pop() {
        nodes += 1;
        if nodes > MAX_NODES {
            return Err(IpError::IterationLimit);
        }
        let relax = match solve_lp_with_bounds(model, &lo, &hi) {
            Ok(s) => s,
            Err(IpError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        // Bound pruning.
        if let Some(best) = &incumbent {
            if !better(relax.objective, best.objective) {
                continue;
            }
        }
        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        for (i, v) in model.variables.iter().enumerate() {
            if !v.integer {
                continue;
            }
            let x = relax.values[i];
            let frac = (x - x.round()).abs();
            if frac > INT_TOL {
                let dist_to_half = (x - x.floor() - 0.5).abs();
                if branch_var.is_none_or(|(_, d)| dist_to_half < d) {
                    branch_var = Some((i, dist_to_half));
                }
            }
        }
        match branch_var {
            None => {
                // Integral: round integer coordinates exactly and accept.
                let mut values = relax.values.clone();
                for (i, v) in model.variables.iter().enumerate() {
                    if v.integer {
                        values[i] = values[i].round();
                    }
                }
                let objective = model.objective_value(&values);
                if incumbent
                    .as_ref()
                    .is_none_or(|b| better(objective, b.objective))
                {
                    incumbent = Some(Solution { values, objective });
                }
            }
            Some((i, _)) => {
                let x = relax.values[i];
                let floor = x.floor();
                // Child ordering: explore the side nearer the relaxation
                // value first (pushed last).
                let mut down = (lo.clone(), hi.clone());
                down.1[i] = floor;
                let mut up = (lo, hi);
                up.0[i] = floor + 1.0;
                if x - floor > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }
    incumbent.ok_or(IpError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn knapsack() {
        // Items (value, weight): (10,5) (6,4) (5,3) (7,5), capacity 10.
        // Optimum: items 0+3 = 17 (weight 10).
        let mut m = Model::maximize();
        let items = [(10.0, 5.0), (6.0, 4.0), (5.0, 3.0), (7.0, 5.0)];
        let vars: Vec<usize> = items
            .iter()
            .enumerate()
            .map(|(i, (v, _))| m.add_binary(format!("x{i}"), *v))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter()
                .zip(&items)
                .map(|(&v, (_, w))| (v, *w))
                .collect(),
            Sense::Le,
            10.0,
        )
        .unwrap();
        let s = solve_ilp(&m).unwrap();
        assert!((s.objective - 17.0).abs() < 1e-6, "{s}");
        assert_eq!(s.values, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn multiple_choice_structure() {
        // The how-to IP shape: two attributes, 3 candidates each, at most one
        // candidate per attribute, plus a coupling budget.
        let mut m = Model::maximize();
        let a: Vec<usize> = (0..3)
            .map(|i| m.add_binary(format!("a{i}"), [4.0, 9.0, 7.0][i]))
            .collect();
        let b: Vec<usize> = (0..3)
            .map(|i| m.add_binary(format!("b{i}"), [3.0, 5.0, 8.0][i]))
            .collect();
        m.add_constraint(
            "one_a",
            a.iter().map(|&v| (v, 1.0)).collect(),
            Sense::Le,
            1.0,
        )
        .unwrap();
        m.add_constraint(
            "one_b",
            b.iter().map(|&v| (v, 1.0)).collect(),
            Sense::Le,
            1.0,
        )
        .unwrap();
        // Costs: a = [1,5,3], b = [2,4,6]; budget 8.
        let mut coefs: Vec<(usize, f64)> = Vec::new();
        for (i, &v) in a.iter().enumerate() {
            coefs.push((v, [1.0, 5.0, 3.0][i]));
        }
        for (i, &v) in b.iter().enumerate() {
            coefs.push((v, [2.0, 4.0, 6.0][i]));
        }
        m.add_constraint("budget", coefs, Sense::Le, 8.0).unwrap();
        let s = solve_ilp(&m).unwrap();
        // Best: a1 (9, cost 5) + b0 (3, cost 2) = 12 within budget 7…
        // or a2 (7,3) + b2 (8,6) = 15 cost 9 → over. a1+b1 = 14 cost 9 → over.
        // a2 (7,3) + b1 (5,4) = 12 cost 7. Tie at 12; verify objective.
        assert!((s.objective - 12.0).abs() < 1e-6, "{s}");
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn minimization_direction() {
        // min 3x + 2y, x + y ≥ 3, binaries insufficient → use integers 0..4.
        let mut m = Model::minimize();
        let x = m.add_continuous("x", 0.0, 4.0, 3.0);
        let y = m.add_continuous("y", 0.0, 4.0, 2.0);
        m.variables[x].integer = true;
        m.variables[y].integer = true;
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0)
            .unwrap();
        let s = solve_ilp(&m).unwrap();
        assert!((s.objective - 6.0).abs() < 1e-6, "y=3: {s}");
        assert_eq!(s.values[y], 3.0);
    }

    #[test]
    fn fractional_lp_integral_ilp() {
        // LP relaxation fractional: max x + y, 2x + 2y ≤ 3, binaries.
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("c", vec![(x, 2.0), (y, 2.0)], Sense::Le, 3.0)
            .unwrap();
        let s = solve_ilp(&m).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_ilp() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        m.add_constraint("c", vec![(x, 1.0)], Sense::Ge, 2.0)
            .unwrap();
        assert_eq!(solve_ilp(&m).unwrap_err(), IpError::Infeasible);
    }

    #[test]
    fn equality_constrained_ilp() {
        // Exactly 2 of 4 chosen, maximize values.
        let mut m = Model::maximize();
        let vals = [5.0, 1.0, 4.0, 2.0];
        let vars: Vec<usize> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| m.add_binary(format!("x{i}"), v))
            .collect();
        m.add_constraint(
            "pick2",
            vars.iter().map(|&v| (v, 1.0)).collect(),
            Sense::Eq,
            2.0,
        )
        .unwrap();
        let s = solve_ilp(&m).unwrap();
        assert!((s.objective - 9.0).abs() < 1e-6);
        assert_eq!(s.values[0], 1.0);
        assert_eq!(s.values[2], 1.0);
    }
}
