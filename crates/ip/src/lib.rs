//! # hyper-ip
//!
//! The integer-programming substrate of the HypeR reproduction. Paper §4.3
//! frames how-to queries as an Integer Program handed to "existing IP
//! solvers"; those are closed-source/proprietary, so this crate provides the
//! solver from scratch:
//!
//! * [`model`] — mixed 0-1 linear models (binary δ indicators, `Σδ ≤ 1`
//!   per-attribute constraints, `Limit` rows, linear objective);
//! * [`simplex`] — dense two-phase primal simplex with Bland's rule;
//! * [`branch_bound`] — exact DFS branch & bound over the LP relaxation;
//! * [`enumerate`] — the naive exhaustive **Opt-HowTo** baseline the paper
//!   compares against (Figures 9b, 11b).

#![warn(missing_docs)]

pub mod branch_bound;
pub mod enumerate;
pub mod error;
pub mod model;
pub mod simplex;

pub use branch_bound::solve_ilp;
pub use enumerate::solve_by_enumeration;
pub use error::{IpError, Result};
pub use model::{Constraint, Direction, Model, Sense, Solution, Variable};
pub use simplex::{solve_lp, solve_lp_with_bounds};
