//! Mixed 0-1 / continuous linear-program model description.
//!
//! The how-to optimizer (paper §4.3) builds models of this shape: one binary
//! indicator δ per candidate update value, `Σ δ ≤ 1` per attribute, plus
//! `Limit` constraints, with a linear objective.

use std::fmt;

use crate::error::{IpError, Result};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Maximize the objective (the `ToMaximize` operator).
    Maximize,
    /// Minimize the objective (the `ToMinimize` operator).
    Minimize,
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ coef·x ≤ rhs`.
    Le,
    /// `Σ coef·x ≥ rhs`.
    Ge,
    /// `Σ coef·x = rhs`.
    Eq,
}

/// A decision variable.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Display name.
    pub name: String,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Integrality requirement.
    pub integer: bool,
}

/// A linear constraint (sparse coefficient list).
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Display name.
    pub name: String,
    /// `(variable index, coefficient)` pairs.
    pub coefs: Vec<(usize, f64)>,
    /// Sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear optimization model.
#[derive(Debug, Clone)]
pub struct Model {
    /// Variables in declaration order.
    pub variables: Vec<Variable>,
    /// Constraints in declaration order.
    pub constraints: Vec<Constraint>,
    /// Dense objective coefficients (one per variable).
    pub objective: Vec<f64>,
    /// Direction.
    pub direction: Direction,
}

impl Model {
    /// Empty maximization model.
    pub fn maximize() -> Self {
        Model {
            variables: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
            direction: Direction::Maximize,
        }
    }

    /// Empty minimization model.
    pub fn minimize() -> Self {
        Model {
            variables: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
            direction: Direction::Minimize,
        }
    }

    /// Add a binary (0/1) variable with the given objective coefficient.
    pub fn add_binary(&mut self, name: impl Into<String>, obj: f64) -> usize {
        self.variables.push(Variable {
            name: name.into(),
            lower: 0.0,
            upper: 1.0,
            integer: true,
        });
        self.objective.push(obj);
        self.variables.len() - 1
    }

    /// Add a bounded continuous variable.
    pub fn add_continuous(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        obj: f64,
    ) -> usize {
        self.variables.push(Variable {
            name: name.into(),
            lower,
            upper,
            integer: false,
        });
        self.objective.push(obj);
        self.variables.len() - 1
    }

    /// Add a constraint.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        coefs: Vec<(usize, f64)>,
        sense: Sense,
        rhs: f64,
    ) -> Result<()> {
        for &(v, c) in &coefs {
            if v >= self.variables.len() {
                return Err(IpError::InvalidModel(format!(
                    "constraint references unknown variable {v}"
                )));
            }
            if !c.is_finite() {
                return Err(IpError::InvalidModel("non-finite coefficient".into()));
            }
        }
        if !rhs.is_finite() {
            return Err(IpError::InvalidModel("non-finite rhs".into()));
        }
        self.constraints.push(Constraint {
            name: name.into(),
            coefs,
            sense,
            rhs,
        });
        Ok(())
    }

    /// Validate overall shape.
    pub fn validate(&self) -> Result<()> {
        if self.variables.is_empty() {
            return Err(IpError::InvalidModel("no variables".into()));
        }
        for v in &self.variables {
            if v.lower > v.upper {
                return Err(IpError::InvalidModel(format!(
                    "variable `{}` has lower {} > upper {}",
                    v.name, v.lower, v.upper
                )));
            }
            if !v.lower.is_finite() || !v.upper.is_finite() {
                return Err(IpError::InvalidModel(format!(
                    "variable `{}` has non-finite bounds (bounded variables required)",
                    v.name
                )));
            }
        }
        if self.objective.iter().any(|c| !c.is_finite()) {
            return Err(IpError::InvalidModel("non-finite objective".into()));
        }
        Ok(())
    }

    /// Objective value of an assignment.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check feasibility of an assignment within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.variables.len() {
            return false;
        }
        for (v, &xi) in self.variables.iter().zip(x) {
            if xi < v.lower - tol || xi > v.upper + tol {
                return false;
            }
            if v.integer && (xi - xi.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.coefs.iter().map(|&(i, k)| k * x[i]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// A solver solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value per variable, in declaration order.
    pub values: Vec<f64>,
    /// Objective value under the model's direction.
    pub objective: f64,
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "objective = {:.6}; x = {:?}",
            self.objective, self.values
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate() {
        let mut m = Model::maximize();
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 2.0);
        m.add_constraint("one", vec![(a, 1.0), (b, 1.0)], Sense::Le, 1.0)
            .unwrap();
        assert!(m.validate().is_ok());
        assert_eq!(m.objective_value(&[0.0, 1.0]), 2.0);
        assert!(m.is_feasible(&[0.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[0.5, 0.0], 1e-9), "binary integrality");
    }

    #[test]
    fn invalid_models_rejected() {
        let m = Model::maximize();
        assert!(m.validate().is_err(), "no variables");
        let mut m = Model::maximize();
        m.add_continuous("x", 2.0, 1.0, 0.0);
        assert!(m.validate().is_err(), "crossed bounds");
        let mut m = Model::maximize();
        let a = m.add_binary("a", 1.0);
        assert!(m
            .add_constraint("bad", vec![(a + 5, 1.0)], Sense::Le, 1.0)
            .is_err());
        assert!(m
            .add_constraint("nan", vec![(a, f64::NAN)], Sense::Le, 1.0)
            .is_err());
    }
}
