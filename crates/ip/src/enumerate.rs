//! Exhaustive enumeration over integer assignments.
//!
//! This is the paper's **Opt-HowTo** baseline ("we compute the optimal
//! solution by enumerating all possible updates"), kept deliberately naive:
//! Figures 9b and 11b measure exactly this exponential blow-up against the
//! IP formulation.

use crate::error::{IpError, Result};
use crate::model::{Direction, Model, Solution};

/// Safety cap on the number of enumerated assignments.
pub const MAX_ASSIGNMENTS: u128 = 1 << 24;

/// Solve by trying every integer assignment. All variables must be integer
/// with finite bounds.
pub fn solve_by_enumeration(model: &Model) -> Result<Solution> {
    model.validate()?;
    let maximize = model.direction == Direction::Maximize;
    let n = model.variables.len();

    let mut radices: Vec<u64> = Vec::with_capacity(n);
    let mut bases: Vec<i64> = Vec::with_capacity(n);
    let mut count: u128 = 1;
    for v in &model.variables {
        if !v.integer {
            return Err(IpError::InvalidModel(format!(
                "enumeration requires integer variables; `{}` is continuous",
                v.name
            )));
        }
        let lo = v.lower.ceil() as i64;
        let hi = v.upper.floor() as i64;
        if lo > hi {
            return Err(IpError::Infeasible);
        }
        let r = (hi - lo + 1) as u64;
        count = count.saturating_mul(r as u128);
        if count > MAX_ASSIGNMENTS {
            return Err(IpError::TooLarge(format!(
                "≥ {count} assignments (cap {MAX_ASSIGNMENTS})"
            )));
        }
        radices.push(r);
        bases.push(lo);
    }

    let mut best: Option<Solution> = None;
    let mut digits = vec![0u64; n];
    let mut x = vec![0.0f64; n];
    loop {
        for i in 0..n {
            x[i] = (bases[i] + digits[i] as i64) as f64;
        }
        if model.is_feasible(&x, 1e-9) {
            let obj = model.objective_value(&x);
            let take = match &best {
                None => true,
                Some(b) => {
                    if maximize {
                        obj > b.objective + 1e-12
                    } else {
                        obj < b.objective - 1e-12
                    }
                }
            };
            if take {
                best = Some(Solution {
                    values: x.clone(),
                    objective: obj,
                });
            }
        }
        // Mixed-radix increment.
        let mut i = 0;
        loop {
            if i == n {
                return best.ok_or(IpError::Infeasible);
            }
            digits[i] += 1;
            if digits[i] < radices[i] {
                break;
            }
            digits[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::solve_ilp;
    use crate::model::{Model, Sense};

    #[test]
    fn matches_branch_and_bound_on_knapsack() {
        let mut m = Model::maximize();
        let items = [(10.0, 5.0), (6.0, 4.0), (5.0, 3.0), (7.0, 5.0), (3.0, 2.0)];
        let vars: Vec<usize> = items
            .iter()
            .enumerate()
            .map(|(i, (v, _))| m.add_binary(format!("x{i}"), *v))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter()
                .zip(&items)
                .map(|(&v, (_, w))| (v, *w))
                .collect(),
            Sense::Le,
            11.0,
        )
        .unwrap();
        let a = solve_by_enumeration(&m).unwrap();
        let b = solve_ilp(&m).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
    }

    #[test]
    fn integer_ranges() {
        // max x + 2y, x∈[0,3], y∈[0,2], x + y ≤ 4 → y=2, x=2 → 6.
        let mut m = Model::maximize();
        let x = m.add_continuous("x", 0.0, 3.0, 1.0);
        let y = m.add_continuous("y", 0.0, 2.0, 2.0);
        m.variables[x].integer = true;
        m.variables[y].integer = true;
        m.add_constraint("c", vec![(x, 1.0), (y, 1.0)], Sense::Le, 4.0)
            .unwrap();
        let s = solve_by_enumeration(&m).unwrap();
        assert!((s.objective - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_continuous_and_oversized() {
        let mut m = Model::maximize();
        m.add_continuous("x", 0.0, 1.0, 1.0);
        assert!(matches!(
            solve_by_enumeration(&m).unwrap_err(),
            IpError::InvalidModel(_)
        ));
        let mut m = Model::maximize();
        for i in 0..40 {
            m.add_binary(format!("x{i}"), 1.0);
        }
        assert!(matches!(
            solve_by_enumeration(&m).unwrap_err(),
            IpError::TooLarge(_)
        ));
    }

    #[test]
    fn infeasible_enumeration() {
        let mut m = Model::maximize();
        let x = m.add_binary("x", 1.0);
        m.add_constraint("c", vec![(x, 1.0)], Sense::Ge, 2.0)
            .unwrap();
        assert_eq!(solve_by_enumeration(&m).unwrap_err(), IpError::Infeasible);
    }
}
