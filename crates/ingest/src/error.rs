//! Typed ingest errors.

use std::fmt;

use hyper_storage::StorageError;
use hyper_store::StoreError;

/// Errors produced while validating, applying, or (de)serializing a
/// delta batch.
#[derive(Debug)]
pub enum IngestError {
    /// A storage-level failure: unknown relation, schema mismatch between
    /// the delta and the base table, duplicate primary key after apply, …
    Storage(StorageError),
    /// A codec-level failure while reading delta bytes (truncated or
    /// corrupt payload).
    Codec(StoreError),
    /// A delete index points past the end of the target relation.
    BadDelete {
        /// The relation being deleted from.
        relation: String,
        /// The offending row index.
        index: usize,
        /// The relation's row count at apply time.
        rows: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Storage(e) => write!(f, "delta rejected: {e}"),
            IngestError::Codec(e) => write!(f, "delta bytes rejected: {e}"),
            IngestError::BadDelete {
                relation,
                index,
                rows,
            } => write!(
                f,
                "delta deletes row {index} of `{relation}`, which has {rows} row(s)"
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Storage(e) => Some(e),
            IngestError::Codec(e) => Some(e),
            IngestError::BadDelete { .. } => None,
        }
    }
}

impl From<StorageError> for IngestError {
    fn from(e: StorageError) -> Self {
        IngestError::Storage(e)
    }
}

impl From<StoreError> for IngestError {
    fn from(e: StoreError) -> Self {
        IngestError::Codec(e)
    }
}

/// Ingest result type.
pub type Result<T> = std::result::Result<T, IngestError>;
