//! Wire codec for delta batches: the `HYPD1` append-log record payload
//! and the `POST /ingest` body after JSON decoding.

use hyper_store::{tablecodec, ByteReader, ByteWriter, StoreError};

use crate::delta::{DeltaBatch, TableDelta};
use crate::error::Result;

/// Payload format version.
const VERSION: u8 = 1;

impl DeltaBatch {
    /// Serialize the batch (self-contained, checksummed by the framing
    /// layer — see `hyper_store::AppendLog`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.write_u8(VERSION);
        w.write_u64(self.ops.len() as u64);
        for op in &self.ops {
            w.write_str(&op.relation);
            match &op.appends {
                None => w.write_u8(0),
                Some(t) => {
                    w.write_u8(1);
                    tablecodec::encode_table(&mut w, t);
                }
            }
            w.write_u64(op.deletes.len() as u64);
            for &i in &op.deletes {
                w.write_u64(i as u64);
            }
        }
        w.into_bytes()
    }

    /// Decode a batch serialized by [`DeltaBatch::to_bytes`]. Total:
    /// corrupt or truncated bytes surface as a typed error, never a
    /// panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<DeltaBatch> {
        let mut r = ByteReader::new(bytes);
        let version = r.read_u8("delta version")?;
        if version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported delta payload version {version}"
            ))
            .into());
        }
        let n = r.read_len(10, "delta op count")?;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            let relation = r.read_string("delta relation")?;
            let appends = match r.read_u8("delta append flag")? {
                0 => None,
                1 => Some(tablecodec::decode_table(&mut r)?),
                t => {
                    return Err(
                        StoreError::Corrupt(format!("invalid delta append flag {t}")).into(),
                    )
                }
            };
            let d = r.read_len(8, "delta delete count")?;
            let mut deletes = Vec::with_capacity(d);
            for _ in 0..d {
                deletes.push(r.read_u64("delta delete index")? as usize);
            }
            ops.push(TableDelta {
                relation,
                appends,
                deletes,
            });
        }
        r.expect_end("delta batch")?;
        Ok(DeltaBatch { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::{DataType, Field, Schema, TableBuilder};

    #[test]
    fn delta_round_trips() {
        let t = TableBuilder::new(
            "items",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("tag", DataType::Str),
            ])
            .unwrap(),
        )
        .rows([vec![1.into(), "a".into()], vec![2.into(), "b".into()]])
        .unwrap()
        .build();
        let batch = DeltaBatch::new().append(t).delete("other", vec![0, 4]);
        let bytes = batch.to_bytes();
        let back = DeltaBatch::from_bytes(&bytes).unwrap();
        assert_eq!(back.ops.len(), 2);
        assert_eq!(back.ops[0].relation, "items");
        assert_eq!(
            back.ops[0].appends.as_ref().unwrap().fingerprint(),
            batch.ops[0].appends.as_ref().unwrap().fingerprint()
        );
        assert_eq!(back.ops[1].deletes, vec![0, 4]);

        // Corrupt bytes are a typed error, not a panic.
        assert!(DeltaBatch::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(DeltaBatch::from_bytes(&[9, 0, 0]).is_err());
    }
}
