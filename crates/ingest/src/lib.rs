//! Incremental write path for the HypeR reproduction.
//!
//! A [`DeltaBatch`] is a set of typed per-relation mutations — appended
//! rows built through the columnar [`hyper_storage::TableBuilder`] path
//! plus row deletes — applied **transactionally**: [`DeltaBatch::apply`]
//! produces a complete new [`Database`] (the caller swaps its
//! `Arc<Database>` on success) and never mutates the input, so a failed
//! delta leaves every reader untouched.
//!
//! Invalidation is *causal*, not global. HypeR's Prop.-1 block
//! decomposition partitions the ground graph into causally independent
//! blocks; a delta can only change answers whose blocks it touches.
//! [`BlockFingerprints`] gives each block an order-insensitive content
//! digest (XOR of per-row digests, [`hyper_storage::Table::row_fingerprints`]),
//! so the refresh path in `hyper-core` can prove that an old block
//! survived a delta verbatim — its fingerprint still occurs in the new
//! decomposition — and keep serving every artifact scoped to it with
//! zero retraining.
//!
//! The crate also defines the wire codec for delta batches
//! ([`DeltaBatch::to_bytes`] / [`DeltaBatch::from_bytes`]), used by the
//! `HYPD1` append log in `hyper-store` and the `POST /ingest` endpoint
//! in `hyper-serve`.

#![warn(missing_docs)]

mod blockfp;
mod codec;
mod delta;
mod error;

pub use blockfp::{blocks_touching, BlockFingerprints};
pub use delta::{DeltaBatch, TableDelta};
pub use error::{IngestError, Result};
