//! Typed delta batches and their transactional application.

use hyper_storage::{Database, Table};

use crate::error::{IngestError, Result};

/// One relation's mutations within a batch: rows to delete (by index in
/// the pre-delta table) and rows to append (a typed [`Table`] with the
/// target's schema, usually built through
/// [`hyper_storage::TableBuilder`]).
#[derive(Debug, Clone)]
pub struct TableDelta {
    /// Target relation name.
    pub relation: String,
    /// Rows to append, if any. Column names and types must match the
    /// target (Ints widen into Float columns).
    pub appends: Option<Table>,
    /// Indices of rows to delete from the pre-delta table. Duplicates
    /// are tolerated; out-of-range indices reject the whole batch.
    pub deletes: Vec<usize>,
}

/// A transactional set of per-relation mutations.
///
/// Application order is the `ops` order; two ops naming the same
/// relation compose sequentially (the second sees the first's result,
/// with deletes still indexing that intermediate table).
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    /// The per-relation mutations, applied in order.
    pub ops: Vec<TableDelta>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> DeltaBatch {
        DeltaBatch::default()
    }

    /// Append the rows of `table` to the relation named by its table
    /// name (chainable).
    pub fn append(mut self, table: Table) -> DeltaBatch {
        self.ops.push(TableDelta {
            relation: table.name().to_string(),
            appends: Some(table),
            deletes: Vec::new(),
        });
        self
    }

    /// Delete the given row indices from `relation` (chainable).
    pub fn delete(
        mut self,
        relation: impl Into<String>,
        rows: impl Into<Vec<usize>>,
    ) -> DeltaBatch {
        self.ops.push(TableDelta {
            relation: relation.into(),
            appends: None,
            deletes: rows.into(),
        });
        self
    }

    /// True when the batch contains no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.ops.iter().all(|op| {
            op.deletes.is_empty() && op.appends.as_ref().is_none_or(|t| t.num_rows() == 0)
        })
    }

    /// Touched relation names, deduplicated, in first-touch order.
    pub fn relations(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for op in &self.ops {
            if !out.contains(&op.relation.as_str()) {
                out.push(&op.relation);
            }
        }
        out
    }

    /// Total appended rows across ops.
    pub fn appended_rows(&self) -> usize {
        self.ops
            .iter()
            .filter_map(|op| op.appends.as_ref())
            .map(Table::num_rows)
            .sum()
    }

    /// Total deleted row indices across ops.
    pub fn deleted_rows(&self) -> usize {
        self.ops.iter().map(|op| op.deletes.len()).sum()
    }

    /// Apply the batch to `db`, producing the post-delta database.
    ///
    /// Transactional: the input is never mutated, and any validation
    /// failure (unknown relation, schema mismatch, out-of-range delete,
    /// duplicate primary key in the result) returns an error with no
    /// partial state escaping. Deletes are applied before appends within
    /// one op; key uniqueness is re-checked on every touched relation.
    pub fn apply(&self, db: &Database) -> Result<Database> {
        let mut out = db.clone();
        for op in &self.ops {
            let base = out.table(&op.relation)?;
            let n = base.num_rows();
            let mut table = if op.deletes.is_empty() {
                base.clone()
            } else {
                let mut deleted = vec![false; n];
                for &i in &op.deletes {
                    if i >= n {
                        return Err(IngestError::BadDelete {
                            relation: op.relation.clone(),
                            index: i,
                            rows: n,
                        });
                    }
                    deleted[i] = true;
                }
                let keep: Vec<usize> = (0..n).filter(|&i| !deleted[i]).collect();
                base.gather(&keep)
            };
            if let Some(appends) = &op.appends {
                table.append_rows(appends)?;
            }
            table.check_key_unique()?;
            out.replace_table(table)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_storage::{DataType, Field, Schema, StorageError, TableBuilder};

    fn db() -> Database {
        let mut db = Database::new();
        let items = TableBuilder::with_key(
            "items",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("price", DataType::Float),
                Field::new("tag", DataType::Str),
            ])
            .unwrap(),
            &["id"],
        )
        .unwrap()
        .rows((0..5).map(|i| vec![i.into(), (i as f64).into(), format!("t{i}").as_str().into()]))
        .unwrap()
        .build();
        let other = TableBuilder::new(
            "other",
            Schema::new(vec![Field::new("x", DataType::Int)]).unwrap(),
        )
        .rows([vec![1.into()], vec![2.into()]])
        .unwrap()
        .build();
        db.add_table(items).unwrap();
        db.add_table(other).unwrap();
        db
    }

    fn append_rows(rows: impl IntoIterator<Item = (i64, f64, &'static str)>) -> Table {
        TableBuilder::new(
            "items",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("price", DataType::Float),
                Field::new("tag", DataType::Str),
            ])
            .unwrap(),
        )
        .rows(
            rows.into_iter()
                .map(|(id, p, t)| vec![id.into(), p.into(), t.into()]),
        )
        .unwrap()
        .build()
    }

    #[test]
    fn append_and_delete_compose() {
        let db = db();
        let batch = DeltaBatch::new()
            .delete("items", vec![1, 3])
            .append(append_rows([(10, 99.5, "new")]));
        let out = batch.apply(&db).unwrap();
        let t = out.table("items").unwrap();
        assert_eq!(t.num_rows(), 4, "5 - 2 deleted + 1 appended");
        let ids: Vec<i64> = t.column_by_name("id").unwrap().as_int().unwrap().0.to_vec();
        assert_eq!(ids, vec![0, 2, 4, 10]);
        assert_eq!(
            t.column_by_name("tag").unwrap().str_at(3),
            Some("new"),
            "string dictionary remapped into the target"
        );
        // Transactional: the input database is untouched.
        assert_eq!(db.table("items").unwrap().num_rows(), 5);
        assert_eq!(batch.relations(), vec!["items"]);
        assert_eq!(batch.appended_rows(), 1);
        assert_eq!(batch.deleted_rows(), 2);
    }

    #[test]
    fn bad_deltas_reject_without_partial_state() {
        let db = db();
        let fp = db.fingerprint();
        // Out-of-range delete.
        let err = DeltaBatch::new()
            .delete("items", vec![99])
            .apply(&db)
            .unwrap_err();
        assert!(matches!(err, IngestError::BadDelete { index: 99, .. }));
        // Unknown relation.
        assert!(DeltaBatch::new()
            .delete("ghost", vec![0])
            .apply(&db)
            .is_err());
        // Duplicate primary key.
        let err = DeltaBatch::new()
            .append(append_rows([(0, 1.0, "dup")]))
            .apply(&db)
            .unwrap_err();
        assert!(matches!(
            err,
            IngestError::Storage(StorageError::DuplicateKey(_))
        ));
        assert_eq!(db.fingerprint(), fp, "input untouched on every failure");
    }

    #[test]
    fn same_relation_ops_apply_sequentially() {
        let db = db();
        let batch = DeltaBatch::new()
            .append(append_rows([(10, 1.0, "a")]))
            .delete("items", vec![5]); // deletes the row just appended
        let out = batch.apply(&db).unwrap();
        assert_eq!(out.table("items").unwrap().num_rows(), 5);
        assert!(DeltaBatch::new().is_empty());
        assert!(!batch.is_empty());
    }
}
