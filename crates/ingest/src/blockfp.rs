//! Per-block content fingerprints over a Prop.-1 decomposition.

use std::collections::HashSet;

use hyper_causal::BlockDecomposition;
use hyper_storage::{Database, Table};

/// Content digests of every block in a decomposition, order-insensitive
/// within a block and index-free across the table: each block's digest is
/// the XOR of its tuples' content digests
/// ([`Table::row_fingerprints`]) mixed with the block size, so a block
/// keeps its fingerprint when unrelated rows are appended or deleted
/// around it — even though every tuple's *row index* may have shifted.
///
/// This is what makes invalidation causal: after a delta, a block of the
/// old decomposition whose fingerprint still occurs in the new
/// decomposition provably consists of the same tuples with the same
/// causal independence, so artifacts scoped to it are still exact.
#[derive(Debug, Clone)]
pub struct BlockFingerprints {
    fps: Vec<u64>,
}

/// Golden-ratio mixing constant (splitmix64 / FNV-style avalanche).
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

impl BlockFingerprints {
    /// Digest every block of `blocks` over `db` (the database the
    /// decomposition was computed on).
    pub fn compute(db: &Database, blocks: &BlockDecomposition) -> BlockFingerprints {
        let row_fps: Vec<Vec<u64>> = db.tables().iter().map(Table::row_fingerprints).collect();
        let fps = blocks
            .blocks()
            .iter()
            .map(|block| {
                let mut x = (block.len() as u64).wrapping_mul(MIX);
                for t in block {
                    x ^= row_fps[t.table][t.row];
                }
                x
            })
            .collect();
        BlockFingerprints { fps }
    }

    /// Per-block digests, indexed like the decomposition's blocks.
    pub fn as_slice(&self) -> &[u64] {
        &self.fps
    }

    /// Number of digested blocks.
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// True when the decomposition had no blocks.
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// The digests as a set, for survival checks against a newer
    /// decomposition.
    pub fn to_set(&self) -> HashSet<u64> {
        self.fps.iter().copied().collect()
    }
}

/// Indices of blocks containing at least one tuple of any table in
/// `tables` (registration-order table indices, as in
/// [`hyper_causal::TupleRef::table`]).
pub fn blocks_touching(blocks: &BlockDecomposition, tables: &HashSet<usize>) -> Vec<usize> {
    blocks
        .blocks()
        .iter()
        .enumerate()
        .filter(|(_, block)| block.iter().any(|t| tables.contains(&t.table)))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyper_causal::TupleRef;
    use hyper_storage::{DataType, Field, Schema, TableBuilder};

    fn two_table_db(extra_row: bool) -> Database {
        let mut db = Database::new();
        let mut a = TableBuilder::new(
            "a",
            Schema::new(vec![Field::new("x", DataType::Int)]).unwrap(),
        )
        .rows([vec![1.into()], vec![2.into()]])
        .unwrap();
        if extra_row {
            a.push(vec![3.into()]).unwrap();
        }
        let b = TableBuilder::new(
            "b",
            Schema::new(vec![Field::new("y", DataType::Int)]).unwrap(),
        )
        .rows([vec![7.into()]])
        .unwrap()
        .build();
        db.add_table(a.build()).unwrap();
        db.add_table(b).unwrap();
        db
    }

    fn tr(table: usize, row: usize) -> TupleRef {
        TupleRef { table, row }
    }

    #[test]
    fn untouched_blocks_keep_their_digest() {
        let db0 = two_table_db(false);
        let db1 = two_table_db(true);
        // Old decomposition: {a0}, {a1, b0}. New one gains a singleton {a2}.
        let old = BlockDecomposition::from_blocks(vec![vec![tr(0, 0)], vec![tr(0, 1), tr(1, 0)]])
            .unwrap();
        let new = BlockDecomposition::from_blocks(vec![
            vec![tr(0, 0)],
            vec![tr(0, 1), tr(1, 0)],
            vec![tr(0, 2)],
        ])
        .unwrap();
        let old_fps = BlockFingerprints::compute(&db0, &old);
        let new_fps = BlockFingerprints::compute(&db1, &new);
        let new_set = new_fps.to_set();
        assert!(new_set.contains(&old_fps.as_slice()[0]));
        assert!(new_set.contains(&old_fps.as_slice()[1]));
        assert_eq!(new_fps.len(), 3);
        assert_ne!(
            new_fps.as_slice()[2],
            old_fps.as_slice()[0],
            "different content, different digest"
        );
    }

    #[test]
    fn block_digest_is_order_insensitive_but_content_sensitive() {
        let db = two_table_db(false);
        let fwd =
            BlockDecomposition::from_blocks(vec![vec![tr(0, 0), tr(0, 1), tr(1, 0)]]).unwrap();
        let rev =
            BlockDecomposition::from_blocks(vec![vec![tr(1, 0), tr(0, 1), tr(0, 0)]]).unwrap();
        assert_eq!(
            BlockFingerprints::compute(&db, &fwd).as_slice(),
            BlockFingerprints::compute(&db, &rev).as_slice()
        );
        let smaller = BlockDecomposition::from_blocks(vec![vec![tr(0, 0), tr(0, 1)]]).unwrap();
        assert_ne!(
            BlockFingerprints::compute(&db, &fwd).as_slice()[0],
            BlockFingerprints::compute(&db, &smaller).as_slice()[0]
        );
    }

    #[test]
    fn blocks_touching_selects_by_table() {
        let blocks =
            BlockDecomposition::from_blocks(vec![vec![tr(0, 0)], vec![tr(0, 1), tr(1, 0)]])
                .unwrap();
        let only_b: HashSet<usize> = [1].into();
        assert_eq!(blocks_touching(&blocks, &only_b), vec![1]);
        let only_a: HashSet<usize> = [0].into();
        assert_eq!(blocks_touching(&blocks, &only_a), vec![0, 1]);
    }
}
