//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the (small) subset of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`seq::SliceRandom`]. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic for a
//! given seed, which is all the workspace relies on (every caller seeds
//! explicitly for reproducibility).
//!
//! Not cryptographically secure; not a drop-in statistical replacement for
//! the real crate — distributions are uniform and that is the only contract.

#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore` (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges a generator can sample from (the `SampleRange` of the real crate).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// High-level sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding. Deterministic per seed; `Clone` forks the stream state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (shuffle, choose).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let x = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
            let k = rng.gen_range(1i32..=4);
            assert!((1..=4).contains(&k));
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
        assert!(([] as [u8; 0]).choose(&mut rng).is_none());
    }
}
