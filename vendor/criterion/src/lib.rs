//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a real (if simple) harness: each benchmark warms up, then runs
//! `sample_size` timed samples inside the measurement budget and prints
//! mean/min/max per-iteration wall time. There is no statistical analysis,
//! plotting, or baseline comparison.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for this sample's iteration count and record the total time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(full_id: &str, settings: &Settings, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up: keep running single iterations until the budget is spent,
    // and use the observed latency to pick a per-sample iteration count.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < settings.warm_up_time || warm_iters == 0 {
        routine(&mut bencher);
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed() / warm_iters as u32;

    let budget = settings.measurement_time.max(Duration::from_millis(1));
    let per_sample = budget / settings.sample_size.max(1) as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let measure_start = Instant::now();
    let mut samples = 0u32;
    for _ in 0..settings.sample_size.max(1) {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let mean = b.elapsed / iters_per_sample as u32;
        total += mean;
        min = min.min(mean);
        max = max.max(mean);
        samples += 1;
        // Never exceed twice the budget even for slow routines.
        if measure_start.elapsed() > budget * 2 {
            break;
        }
    }
    let mean = total / samples.max(1);
    println!(
        "{full_id:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples,
        iters_per_sample,
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.settings.sample_size = n;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.settings.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.settings.measurement_time = d;
        self
    }

    /// Accepted for compatibility; command-line filtering is not supported.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_benchmark(&id.into().id, &self.settings, &mut f);
        self
    }

    /// No-op: reports are printed as benchmarks run.
    pub fn final_summary(&mut self) {}
}

/// A named group sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Warm-up budget per benchmark in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Measurement budget per benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, &self.settings, &mut f);
        self
    }

    /// Benchmark a closure over a shared input under this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, &self.settings, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_cheap_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
