//! Test-runner support: configuration, the deterministic per-test RNG, and
//! the error type `prop_assert!` returns.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }

    /// Alias kept for API compatibility: rejects are treated as failures.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG handed to strategies. Seeded from the test's fully qualified
/// name, so every run generates the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}
