//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's property tests use. Generation only — no shrinking.

use std::sync::Arc;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap {
            source: self,
            derive: f,
        }
    }

    /// Recursive structures: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for one level deeper; every
    /// level keeps an even chance of falling back to a leaf, bounding the
    /// expansion at `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }

    /// Type-erase the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Always the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    derive: F,
}

impl<S: Strategy, D: Strategy, F: Fn(S::Value) -> D> Strategy for FlatMap<S, F> {
    type Value = D::Value;
    fn new_value(&self, rng: &mut TestRng) -> D::Value {
        let seed = self.source.new_value(rng);
        (self.derive)(seed).new_value(rng)
    }
}

/// Uniform choice among same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given options; panics when empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: ranges, tuples, arrays, regex-ish strings.
// ---------------------------------------------------------------------

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7, S8 8, S9 9);
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].new_value(rng))
    }
}

/// String strategy from a regex-like pattern (`&'static str` in proptest).
///
/// Supported subset: literal characters, `\`-escapes, `[...]` classes with
/// `a-z` ranges and literal members, and `{n}` / `{m,n}` quantifiers on the
/// preceding atom. This covers the patterns used in the workspace's tests.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut members: Vec<(char, char)> = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        members.push((c, chars[i + 2]));
                        i += 3;
                    } else {
                        members.push((c, c));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern `{pattern}`");
                i += 1; // consume ']'
                Atom::Class(members)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, lo, hi) in parse_pattern(pattern) {
        let reps = if lo == hi {
            lo
        } else {
            rng.rng().gen_range(lo..hi + 1)
        };
        for _ in 0..reps {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(members) => {
                    let (start, end) = members[rng.rng().gen_range(0..members.len())];
                    let span = end as u32 - start as u32 + 1;
                    let c = char::from_u32(start as u32 + rng.rng().gen_range(0..span))
                        .expect("class range stays in char space");
                    out.push(c);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_identifier_shape() {
        let mut rng = TestRng::deterministic("pattern_identifier_shape");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}x".new_value(&mut rng);
            assert!(s.len() >= 2 && s.len() <= 8, "bad length: {s}");
            assert!(s.ends_with('x'));
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn pattern_with_space_and_quote_class() {
        let mut rng = TestRng::deterministic("pattern_space_quote");
        for _ in 0..100 {
            let s = "[a-zA-Z '0-9]{0,8}".new_value(&mut rng);
            assert!(s.len() <= 8);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '\''));
        }
    }

    #[test]
    fn union_and_recursive_terminate() {
        let mut rng = TestRng::deterministic("union_recursive");
        let leaf = (0i64..10).prop_map(|n| n.to_string());
        let tree = leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
        });
        for _ in 0..100 {
            let v = tree.new_value(&mut rng);
            assert!(!v.is_empty());
        }
    }

    #[test]
    fn ranges_tuples_arrays() {
        let mut rng = TestRng::deterministic("ranges_tuples_arrays");
        for _ in 0..100 {
            let (a, b) = (0u32..5, [0i64..3, 0i64..3]).new_value(&mut rng);
            assert!(a < 5);
            assert!(b.iter().all(|&x| (0..3).contains(&x)));
        }
    }
}
