//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, strategies for ranges, tuples, arrays, regex-like
//! string patterns, [`collection::vec`], [`option::of`], [`bool::ANY`],
//! `any::<T>()`, `Just`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs via the
//!   panic message (`Debug` is not required, so the values themselves are
//!   only shown when the assertion formats them), but is not minimized.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG seed
//!   from the test's name, so failures reproduce across runs.
//! * String strategies support the regex subset actually used: literal
//!   characters, `[...]` classes with ranges, and `{m,n}` / `{n}`
//!   quantifiers.

pub mod strategy;
pub mod test_runner;

/// `any::<T>()` — the canonical strategy of a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draw one canonical value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.rng().gen::<u64>() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several orders of magnitude.
            let m: f64 = rng.rng().gen();
            let e: i32 = rng.rng().gen_range(-8..9);
            (m * 2.0 - 1.0) * 10f64.powi(e)
        }
    }

    /// Strategy wrapper produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary + std::fmt::Debug> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy of `T`.
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some, as the real crate does, while keeping None
            // cases frequent enough to exercise both paths.
            if rng.rng().gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The uniform boolean strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }

    /// `prop::bool::ANY` — a uniform boolean.
    pub const ANY: Any = Any;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property-failure assertion: returns an `Err(TestCaseError)` from the
/// enclosing generated test body instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: `{} == {}`",
                stringify!($left),
                stringify!($right)
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l == *r, $($fmt)*),
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: `{} != {}`",
                stringify!($left),
                stringify!($right)
            ),
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __proptest_config: $crate::test_runner::Config = $config;
            let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __proptest_case in 0..__proptest_config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::new_value(
                        &$strategy,
                        &mut __proptest_rng,
                    );
                )+
                let __proptest_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __proptest_result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __proptest_case + 1,
                        __proptest_config.cases,
                        e
                    );
                }
            }
        }
    )*};
}
