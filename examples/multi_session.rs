//! Multi-tenant what-if serving over one shared dataset.
//!
//! The shape PRAXA-style what-if analysis systems need: many concurrent
//! sessions — one per tenant, each with its own configuration, stats, and
//! cache budget — answering hypothetical queries over the *same* data.
//! The process-wide [`SharedArtifactStore`] makes the expensive artifacts
//! (relevant views, block decompositions, fitted estimators) single-flight
//! shared across all of them: the first tenant to need an artifact builds
//! it, everyone else gets a shared hit.
//!
//! Run with `cargo run --release --example multi_session`.

use hyper_repro::core::SharedArtifactStore;
use hyper_repro::prelude::*;

fn main() {
    // One dataset, simulating the shared tenant corpus.
    let data = hyper_repro::datasets::german_syn(10_000, 1);
    let db = std::sync::Arc::new(data.db);
    let graph = std::sync::Arc::new(data.graph);

    // Tenant sessions: independent handles, budgets, and counters. They
    // share artifacts because their (database, graph) *contents* agree —
    // cloning the `Arc` is convenient but not required.
    let tenants: Vec<HyperSession> = (0..4)
        .map(|_| {
            HyperSession::builder(db.clone())
                .graph(graph.clone())
                .config(EngineConfig::hyper())
                .cache_budget(CacheBudget::estimators(32))
                .build()
        })
        .collect();

    // Every tenant asks the same family of questions concurrently.
    let queries = [
        "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')",
        "Use german_syn Update(savings) = 3 Output Count(Post(credit) = 'Good')",
        "Use german_syn Update(housing) = 2 Output Count(Post(credit) = 'Good')",
    ];
    std::thread::scope(|scope| {
        for (t, session) in tenants.iter().enumerate() {
            scope.spawn(move || {
                for q in queries {
                    let r = session.whatif_text(q).expect("query evaluates");
                    println!("tenant {t}: {:>7.1}  <- {q}", r.value);
                }
            });
        }
    });

    // The receipts: 4 tenants × 3 queries, but each artifact was built
    // exactly once process-wide.
    let mut built_views = 0;
    let mut trained = 0;
    let mut shared_hits = 0;
    for (t, s) in tenants.iter().enumerate() {
        let st = s.stats();
        println!(
            "tenant {t}: views built {}, estimators trained {}, shared hits {}, local hits {}",
            st.view_misses,
            st.estimator_misses,
            st.view_shared_hits + st.estimator_shared_hits,
            st.view_hits + st.estimator_hits,
        );
        built_views += st.view_misses;
        trained += st.estimator_misses;
        shared_hits += st.view_shared_hits + st.estimator_shared_hits;
    }
    println!("---");
    println!(
        "process-wide: {built_views} view build(s), {trained} training run(s), \
         {shared_hits} shared hit(s)"
    );
    println!("store: {:?}", SharedArtifactStore::global());
    assert_eq!(built_views, 1, "one view build for all tenants");
    assert_eq!(trained, queries.len() as u64, "one training per query");
}
