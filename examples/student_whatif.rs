//! Multi-relation what-if on Student-Syn (paper §5.4/§5.5): the relevant
//! view aggregates per-course participation up to students, and updates to
//! student attendance propagate into grades.
//!
//! ```sh
//! cargo run --release --example student_whatif
//! ```

use hyper_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = hyper_repro::datasets::student_syn(3000, 5, 3);
    println!(
        "Student-Syn: {} students, {} participation rows",
        data.db.table("student")?.num_rows(),
        data.db.table("participation")?.num_rows()
    );
    let session = HyperSession::new(data.db.clone(), Some(&data.graph));

    let view = "
        Use (Select S.sid, S.age, S.country, S.attendance,
                    Avg(P.discussion) As discussion,
                    Avg(P.announcements) As announcements,
                    Avg(P.assignment) As assignment,
                    Avg(P.grade) As grade
             From student As S, participation As P
             Where S.sid = P.sid
             Group By S.sid, S.age, S.country, S.attendance)";

    // Effect of each attribute on average grade (the Fig-10b sweep),
    // with ground truth from the structural equations.
    println!("\nattribute → expected avg grade if set to 95 (engine | ground truth)");
    let scm = data.scm.as_ref().unwrap();
    for attr in ["attendance", "assignment", "discussion", "announcements"] {
        let q = format!(
            "{view}
             Update({attr}) = 95
             Output Avg(Post(grade))"
        );
        let r = session.whatif_text(&q)?;
        // Ground truth: replay through the structural equations.
        let (_, post) = scm.sample_paired(
            "flat",
            30_000,
            17,
            &[Intervention::new(
                attr,
                InterventionOp::Set(Value::Float(95.0)),
            )],
            None,
        )?;
        let truth = post
            .column_by_name("grade")?
            .iter()
            .map(|v| v.as_f64().unwrap())
            .sum::<f64>()
            / post.num_rows() as f64;
        println!("  {attr:<14} {:6.2} | {truth:6.2}", r.value);
    }

    // The §5.3 complex query: among announcement-readers with high
    // attendance, which lever moves grades most?
    println!("\nconditioned on attendance > 75 and announcements > 40:");
    for attr in ["attendance", "assignment"] {
        let q = format!(
            "{view}
             Update({attr}) = 95
             Output Avg(Post(grade))
             For Pre(attendance) > 75 And Pre(announcements) > 40"
        );
        let r = session.whatif_text(&q)?;
        println!(
            "  set {attr:<11} → avg grade {:6.2} over {} students",
            r.value, r.n_scope_rows
        );
    }
    println!("(assignment should win here: attendance is already saturated)");
    Ok(())
}
