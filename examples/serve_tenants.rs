//! Serving two tenants over HTTP from one process — and proving they
//! share the expensive artifacts.
//!
//! The scenario: two teams ("pricing" and "risk") each get their own
//! tenant id, their own session, their own `/stats` counters — but their
//! snapshots hold content-identical data, so the process-wide shared
//! artifact store should build the relevant view, block decomposition,
//! and fitted estimator **once**, no matter which tenant asks first.
//! This example runs the full loop:
//!
//! 1. snapshot one dataset under two tenant ids in a registry directory,
//! 2. boot `hyper-serve` on a loopback port,
//! 3. drive both tenants from separate client connections,
//! 4. assert via `/stats` that the second tenant's session answered from
//!    shared artifacts (shared hits, zero trains) and that both answers
//!    are identical.
//!
//! Run with `cargo run --release --example serve_tenants`.

use hyper_repro::serve::{Client, Json, ServeConfig, Server};
use hyper_repro::store::Snapshot;

const QUERY: &str = "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')";

fn main() {
    let dir = std::env::temp_dir().join(format!("hyper_serve_tenants_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create registry dir");

    // One dataset, two tenant ids: the registry maps each `<id>.hypr`
    // file to a tenant. Content-identical snapshots mean content-equal
    // fingerprints, which is what keys the shared artifact store.
    let data = hyper_repro::datasets::german_syn(5_000, 1);
    for tenant in ["pricing", "risk"] {
        Snapshot::new(data.db.clone(), Some(data.graph.clone()))
            .save(dir.join(format!("{tenant}.hypr")))
            .expect("save tenant snapshot");
    }

    let server = Server::start(&dir, ServeConfig::default()).expect("server starts");
    println!("serving {} tenants on http://{}\n", 2, server.addr());

    // Each team connects independently and runs the same what-if.
    let mut pricing = Client::connect(server.addr()).expect("connect");
    let mut risk = Client::connect(server.addr()).expect("connect");

    let a = pricing
        .query("/query", "pricing", QUERY, &[])
        .expect("request");
    assert_eq!(a.status, 200, "{:?}", a.json());
    let a_value = a
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap();
    println!("pricing: {QUERY}\n      -> {a_value}");

    let b = risk.query("/query", "risk", QUERY, &[]).expect("request");
    assert_eq!(b.status, 200, "{:?}", b.json());
    let b_value = b
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap();
    println!("risk:    same query\n      -> {b_value}");
    assert_eq!(
        a_value.to_bits(),
        b_value.to_bits(),
        "identical data must answer identically"
    );

    // /stats tells the sharing story: the second tenant's session shows
    // shared-store hits and zero local builds — it trained nothing.
    let stats = pricing
        .request("GET", "/stats", None)
        .expect("stats")
        .json()
        .unwrap();
    let tenants = stats.get("tenants").unwrap();
    let second = tenants.get("risk").unwrap().get("session").unwrap();
    let shared_views = second
        .get("view_shared_hits")
        .and_then(Json::as_i64)
        .unwrap();
    let shared_est = second
        .get("estimator_shared_hits")
        .and_then(Json::as_i64)
        .unwrap();
    let trained = second
        .get("estimator_misses")
        .and_then(Json::as_i64)
        .unwrap();
    println!(
        "\nrisk's session: {shared_views} shared view hit(s), \
         {shared_est} shared estimator hit(s), {trained} estimator(s) trained"
    );
    assert!(shared_views >= 1, "view must come from the shared store");
    assert!(shared_est >= 1, "estimator must come from the shared store");
    assert_eq!(trained, 0, "the second tenant must train nothing");

    for tenant in ["pricing", "risk"] {
        let entry = tenants.get(tenant).unwrap();
        println!(
            "{tenant:>8}: accepted={} ok={} snapshot_loads={}",
            entry.get("accepted").and_then(Json::as_i64).unwrap(),
            entry.get("ok").and_then(Json::as_i64).unwrap(),
            entry.get("snapshot_loads").and_then(Json::as_i64).unwrap(),
        );
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("\ntwo tenants, one set of artifacts — shared store verified over HTTP");
}
