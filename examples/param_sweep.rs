//! Parameterized scenario sweep through the typed query-builder API.
//!
//! Builds the German-Syn credit workload, prepares ONE parameterized
//! what-if template (`Update(status) = Param(level)`), explains its plan,
//! then sweeps the binding over the whole domain — the relevant view and
//! block decomposition are built once for the entire sweep, nothing is
//! ever parsed, and only the estimator re-keys per binding.
//!
//! ```sh
//! cargo run --release --example param_sweep
//! ```

use hyper_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = hyper_repro::datasets::german_syn(10_000, 1);
    let session = HyperSession::builder(data.db)
        .graph(data.graph)
        // How-to-style workloads grow one estimator per candidate; bound
        // the cache so a long-lived session cannot grow without limit.
        .cache_budget(CacheBudget::estimators(256))
        .build();

    // "If everyone's checking-account status were set to <level>, how many
    // people would have good credit?" — status level is a placeholder.
    let template = WhatIf::over("german_syn")
        .set_param("status", "level")
        .output_count(HExpr::post("credit").eq("Good"));
    let prepared = session.prepare(template)?;

    // The plan before anything runs: cold view (miss), estimator
    // would-build, adjustment set chosen from the causal graph.
    println!(
        "{}",
        prepared.explain_with(&Bindings::new().set("level", 1))?
    );

    println!("status sweep over one prepared template:");
    for level in 0..=4 {
        let r = prepared.execute_whatif_with(&Bindings::new().set("level", level))?;
        println!(
            "  status = {level}: expected good-credit count = {:8.1}  ({:?})",
            r.value, r.elapsed
        );
    }

    // Re-binding a seen value is answered from the cache.
    let again = prepared.execute_whatif_with(&Bindings::new().set("level", 2))?;
    println!(
        "  status = 2 (re-bound): {:8.1}  ({:?})",
        again.value, again.elapsed
    );

    let stats = session.stats();
    println!(
        "\nsession stats: view misses = {}, texts parsed = {}, \
         estimators trained = {}, estimator hits = {}",
        stats.view_misses, stats.texts_parsed, stats.estimator_misses, stats.estimator_hits,
    );
    assert_eq!(stats.view_misses, 1, "one view for the whole sweep");
    assert_eq!(stats.texts_parsed, 0, "no SQL text anywhere");
    Ok(())
}
