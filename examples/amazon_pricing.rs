//! Amazon pricing analysis (paper §5.3, "Amazon" paragraph).
//!
//! "We evaluated the effect of changing price of products of different
//! brands on their rating. When all products have price more than the 80th
//! percentile, around 32% of the products have average rating of more than
//! 4. On further reducing the laptop prices to 60th and 40th percentiles,
//! more than 60% of the products get an average rating of more than 4."
//!
//! ```sh
//! cargo run --release --example amazon_pricing
//! ```

use hyper_repro::prelude::*;
use hyper_repro::storage::ColumnStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = hyper_repro::datasets::amazon(2000, 9, 7);
    let session = HyperSession::new(data.db.clone(), Some(&data.graph));

    // Percentiles of laptop prices.
    let products = data.db.table("product")?;
    let laptops = hyper_repro::storage::ops::filter::filter(
        products,
        &hyper_repro::storage::col("category").eq(hyper_repro::storage::lit("Laptop")),
    )?;
    let stats = ColumnStats::compute(&laptops, "price")?;
    println!(
        "laptop prices: min {:.0}, median {:.0}, max {:.0}",
        stats.min.as_ref().unwrap().as_f64().unwrap(),
        stats.percentile(50.0).unwrap(),
        stats.max.as_ref().unwrap().as_f64().unwrap()
    );

    let view = "
        Use (Select T1.pid, T1.category, T1.price, T1.brand, T1.quality,
                    Avg(T2.rating) As rtng
             From product As T1, review As T2
             Where T1.pid = T2.pid And T1.category = 'Laptop'
             Group By T1.pid, T1.category, T1.price, T1.brand, T1.quality)";

    // What fraction of laptops would rate > 4 if every laptop's price were
    // set to the given percentile?
    println!("\nprice level → share of laptops with expected avg rating > 4");
    for pct in [80.0, 60.0, 40.0] {
        let price = stats.percentile(pct).unwrap();
        let q = format!(
            "{view}
             Update(price) = {price}
             Output Count(Post(rtng) > 4)"
        );
        let r = session.whatif_text(&q)?;
        let share = r.value / r.n_scope_rows as f64;
        println!(
            "  {pct:>3}th percentile ({price:>7.0}) → {:5.1}%",
            share * 100.0
        );
    }

    // Brand sensitivity: which brand's ratings react most to a 25% cut?
    println!("\nbrand → expected avg-rating gain from a 25% price cut");
    let mut gains: Vec<(String, f64)> = Vec::new();
    for brand in ["Apple", "Dell", "Toshiba", "Acer", "Asus"] {
        let base = format!(
            "{view}
             When brand = '{brand}'
             Update(price) = 1.0 * Pre(price)
             Output Avg(Post(rtng))
             For Pre(brand) = '{brand}'"
        );
        let cut = base.replace("1.0 * Pre(price)", "0.75 * Pre(price)");
        let v0 = session.whatif_text(&base)?.value;
        let v1 = session.whatif_text(&cut)?.value;
        gains.push((brand.to_string(), v1 - v0));
    }
    for (brand, gain) in &gains {
        println!("  {brand:<8} {gain:+.3}");
    }
    let apple = gains.iter().find(|(b, _)| b == "Apple").unwrap().1;
    let max_other = gains
        .iter()
        .filter(|(b, _)| b != "Apple")
        .map(|(_, g)| *g)
        .fold(f64::MIN, f64::max);
    println!(
        "\nApple reacts most: {}",
        if apple >= max_other {
            "yes (matches §5.3)"
        } else {
            "no (noise this run)"
        }
    );
    Ok(())
}
