//! How-to analysis on German-Syn (paper §5.4): maximize the fraction of
//! individuals with good credit by updating financial attributes, and
//! compare the IP optimizer against the exhaustive Opt-HowTo baseline.
//! Also demonstrates the lexicographic multi-objective extension
//! (Example 11).
//!
//! ```sh
//! cargo run --release --example credit_howto
//! ```

use hyper_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = hyper_repro::datasets::german_syn_extended(20_000, 1);
    println!("German-Syn: {} rows", data.total_rows());
    let session =
        HyperSession::new(data.db.clone(), Some(&data.graph)).with_howto_options(HowToOptions {
            buckets: 4,
            max_attrs_updated: Some(2),
        });

    // §5.4: "a how-to query that aims to maximize the fraction of
    // individuals receiving good credit … Status, Savings, Housing and
    // Credit amount as the set of attributes".
    let howto = "
        Use german_syn
        HowToUpdate status, savings, housing, credit_amount
        ToMaximize Count(Post(credit) = 'Good')";

    let ip = session.howto_text(howto)?;
    println!("\nIP optimizer:");
    println!(
        "  update = {}",
        ip.render(&[
            "status".into(),
            "savings".into(),
            "housing".into(),
            "credit_amount".into()
        ])
    );
    println!(
        "  good-credit count {:.0} (baseline {:.0}), {} candidates, took {:?}",
        ip.objective, ip.baseline, ip.candidates, ip.elapsed
    );

    // Opt-HowTo: exhaustive enumeration — same optimum, far slower.
    let q = match parse_query(howto)? {
        HypotheticalQuery::HowTo(q) => q,
        _ => unreachable!(),
    };
    let brute = session.howto_bruteforce(&q)?;
    println!("\nOpt-HowTo (exhaustive baseline):");
    println!(
        "  objective {:.0}, {} what-if evaluations, took {:?}",
        brute.objective, brute.whatif_evals, brute.elapsed
    );
    println!(
        "  agreement with IP: {}",
        if (brute.objective - ip.objective).abs() < 1e-6 {
            "exact"
        } else {
            "approximate"
        }
    );

    // Lexicographic: maximize good credit first, then (subject to that)
    // minimize the offered interest rate — both downstream of the updates.
    let q2 = match parse_query(
        "Use german_syn
         HowToUpdate status, savings, housing, credit_amount
         ToMinimize Avg(Post(interest_rate))",
    )? {
        HypotheticalQuery::HowTo(q) => q,
        _ => unreachable!(),
    };
    let lex = session.howto_lexicographic(&[q, q2])?;
    println!("\nlexicographic (good credit ≫ low interest rate):");
    println!(
        "  update = {}",
        lex.result.render(&[
            "status".into(),
            "savings".into(),
            "housing".into(),
            "credit_amount".into()
        ])
    );
    println!("  achieved: {:?}", lex.achieved);
    Ok(())
}
