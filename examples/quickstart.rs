//! Quickstart: run the paper's running example end to end.
//!
//! Builds the Figure-1 Amazon toy database, attaches the Figure-2 causal
//! graph, and evaluates the Figure-4 what-if query and the Figure-5 how-to
//! query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hyper_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A larger simulated Amazon (the 5-row toy is too small to train on).
    let data = hyper_repro::datasets::amazon(800, 9, 42);
    println!(
        "Amazon-sim: {} products, {} reviews",
        data.db.table("product")?.num_rows(),
        data.db.table("review")?.num_rows()
    );

    let engine = HyperEngine::new(&data.db, Some(&data.graph));

    // Block-independent decomposition (paper Example 7): categories are
    // independent blocks.
    let blocks = engine.block_decomposition()?;
    println!("block-independent decomposition: {} blocks", blocks.num_blocks());

    // ------------------------------------------------------------------
    // Figure 4: "If the prices of all Asus products increased by 10%, what
    // would be the average rating of Asus laptops?"
    // ------------------------------------------------------------------
    let whatif = "
        Use (Select T1.pid, T1.category, T1.price, T1.brand, T1.quality,
                    Avg(sentiment) As senti, Avg(T2.rating) As rtng
             From product As T1, review As T2
             Where T1.pid = T2.pid
             Group By T1.pid, T1.category, T1.price, T1.brand, T1.quality)
        When brand = 'Asus'
        Update(price) = 1.1 * Pre(price)
        Output Avg(Post(rtng))
        For Pre(category) = 'Laptop' And Pre(brand) = 'Asus'";
    let r = engine.whatif_text(whatif)?;
    println!("\nFigure 4 what-if (Asus laptops, +10% price):");
    println!("  expected avg rating = {:.3}", r.value);
    println!(
        "  view rows = {}, updated = {}, backdoor = {:?}, took {:?}",
        r.n_view_rows, r.n_updated_rows, r.backdoor, r.elapsed
    );

    // Compare: a 20% price *cut*.
    let cheaper = whatif.replace("1.1 * Pre(price)", "0.8 * Pre(price)");
    let r_cut = engine.whatif_text(&cheaper)?;
    println!("  …with a 20% cut instead: {:.3}", r_cut.value);
    println!(
        "  (cutting prices should help: {:.3} > {:.3})",
        r_cut.value, r.value
    );

    // ------------------------------------------------------------------
    // Figure 5: "How to maximize the average rating of Asus laptops by
    // changing price (within limits) and/or color?"
    // ------------------------------------------------------------------
    let howto = "
        Use (Select T1.pid, T1.category, T1.price, T1.brand, T1.quality, T1.color,
                    Avg(T2.rating) As rtng
             From product As T1, review As T2
             Where T1.pid = T2.pid
             Group By T1.pid, T1.category, T1.price, T1.brand, T1.quality, T1.color)
        When brand = 'Asus' And category = 'Laptop'
        HowToUpdate price
        Limit 500 <= Post(price) <= 800 And L1(Pre(price), Post(price)) <= 400
        ToMaximize Avg(Post(rtng))
        For Pre(category) = 'Laptop' And brand = 'Asus'";
    let h = engine.howto_text(howto)?;
    println!("\nFigure 5 how-to (maximize Asus laptop rating):");
    println!("  recommended update: {}", h.render(&["price".into()]));
    println!(
        "  predicted rating {:.3} (baseline {:.3}), {} candidates, {} what-if evals, {:?}",
        h.objective, h.baseline, h.candidates, h.whatif_evals, h.elapsed
    );
    Ok(())
}
