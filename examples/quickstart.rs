//! Quickstart: run the paper's running example end to end through the
//! session API.
//!
//! Builds the Figure-1 Amazon toy database, attaches the Figure-2 causal
//! graph, opens a `HyperSession`, and evaluates the Figure-4 what-if
//! query (as one prepared `Param(mult)` template, rebound per update
//! factor) and the Figure-5 how-to query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hyper_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A larger simulated Amazon (the 5-row toy is too small to train on).
    let data = hyper_repro::datasets::amazon(800, 9, 42);
    println!(
        "Amazon-sim: {} products, {} reviews",
        data.db.table("product")?.num_rows(),
        data.db.table("review")?.num_rows()
    );

    // One session owns the database + graph and caches relevant views,
    // the block decomposition, and fitted estimators across every query
    // below.
    let session = HyperSession::builder(data.db).graph(data.graph).build();

    // Block-independent decomposition (paper Example 7): categories are
    // independent blocks.
    let blocks = session.block_decomposition()?;
    println!(
        "block-independent decomposition: {} blocks",
        blocks.num_blocks()
    );

    // ------------------------------------------------------------------
    // Figure 4: "If the prices of all Asus products increased by 10%, what
    // would be the average rating of Asus laptops?" — prepared once,
    // executed twice (the second run is answered from the cache).
    // ------------------------------------------------------------------
    let whatif = "
        Use (Select T1.pid, T1.category, T1.price, T1.brand, T1.quality,
                    Avg(sentiment) As senti, Avg(T2.rating) As rtng
             From product As T1, review As T2
             Where T1.pid = T2.pid
             Group By T1.pid, T1.category, T1.price, T1.brand, T1.quality)
        When brand = 'Asus'
        Update(price) = 1.1 * Pre(price)
        Output Avg(Post(rtng))
        For Pre(category) = 'Laptop' And Pre(brand) = 'Asus'";
    let prepared = session.prepare(whatif)?;
    let r = prepared.execute_whatif()?;
    println!("\nFigure 4 what-if (Asus laptops, +10% price):");
    println!("  expected avg rating = {:.3}", r.value);
    println!(
        "  view rows = {}, updated = {}, backdoor = {:?}, took {:?}",
        r.n_view_rows, r.n_updated_rows, r.backdoor, r.elapsed
    );
    let cached = prepared.execute_whatif()?;
    println!(
        "  re-executed from cache in {:?} (first run {:?})",
        cached.elapsed, r.elapsed
    );

    // A price-sensitivity sweep over ONE parameterized template: the
    // multiplier is a `Param(…)` placeholder bound per execution, so the
    // query is validated and view-resolved exactly once — no string
    // surgery, no re-parsing.
    let sweep = session.prepare(whatif.replace("1.1 * Pre(price)", "Param(mult) * Pre(price)"))?;
    println!("\nPrice sweep (one prepared template, rebound per factor):");
    for factor in [0.8, 0.9, 1.0, 1.2] {
        let r = sweep.execute_whatif_with(&Bindings::new().set("mult", factor))?;
        println!("  price x {factor}: expected avg rating = {:.3}", r.value);
    }

    // ------------------------------------------------------------------
    // Figure 5: "How to maximize the average rating of Asus laptops by
    // changing price (within limits) and/or color?"
    // ------------------------------------------------------------------
    let howto = "
        Use (Select T1.pid, T1.category, T1.price, T1.brand, T1.quality, T1.color,
                    Avg(T2.rating) As rtng
             From product As T1, review As T2
             Where T1.pid = T2.pid
             Group By T1.pid, T1.category, T1.price, T1.brand, T1.quality, T1.color)
        When brand = 'Asus' And category = 'Laptop'
        HowToUpdate price
        Limit 500 <= Post(price) <= 800 And L1(Pre(price), Post(price)) <= 400
        ToMaximize Avg(Post(rtng))
        For Pre(category) = 'Laptop' And brand = 'Asus'";
    let h = session.howto_text(howto)?;
    println!("\nFigure 5 how-to (maximize Asus laptop rating):");
    println!("  recommended update: {}", h.render(&["price".into()]));
    println!(
        "  predicted rating {:.3} (baseline {:.3}), {} candidates, {} what-if evals, {:?}",
        h.objective, h.baseline, h.candidates, h.whatif_evals, h.elapsed
    );

    let stats = session.stats();
    println!(
        "\nsession stats: {} queries over {} views / {} estimators \
         (view hits {}, estimator hits {})",
        stats.queries_executed,
        stats.views_cached,
        stats.estimators_cached,
        stats.view_hits,
        stats.estimator_hits,
    );
    Ok(())
}
