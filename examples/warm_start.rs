//! Warm-starting a "restarted" HypeR process from durable state.
//!
//! A production deployment cannot afford to re-ingest CSVs and retrain
//! every estimator each time a process restarts. This example runs the
//! whole durability story end to end:
//!
//! 1. snapshot a dataset to a `HYPR1` file ([`Snapshot`]),
//! 2. serve queries from a session whose artifacts spill to a persist
//!    directory ([`SessionBuilder::persist_dir`]),
//! 3. drop **all** in-memory state (`SharedArtifactStore::clear()` —
//!    the simulated restart),
//! 4. rebuild a session from the snapshot + persist dir, and
//! 5. assert the first queries were answered from the disk tier:
//!    [`SessionStats`] shows disk hits and **zero** estimator builds,
//!    with values identical to the first life of the process.
//!
//! Run with `cargo run --release --example warm_start`.

use hyper_repro::core::SharedArtifactStore;
use hyper_repro::prelude::*;
use hyper_repro::store::Snapshot;

const QUERIES: [&str; 3] = [
    "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')",
    "Use german_syn Update(savings) = 3 Output Count(Post(credit) = 'Good')",
    "Use german_syn Update(housing) = 2 Output Count(Post(credit) = 'Good')",
];

fn main() {
    let dir = std::env::temp_dir().join(format!("hyper_warm_start_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let snapshot_path = dir.join("german.hypr");
    let persist_dir = dir.join("artifacts");

    // ---- First life of the process -------------------------------------
    let data = hyper_repro::datasets::german_syn(10_000, 1);
    Snapshot::new(data.db.clone(), Some(data.graph.clone()))
        .save(&snapshot_path)
        .expect("save dataset snapshot");
    println!(
        "snapshotted german_syn 10k -> {} ({} KiB)",
        snapshot_path.display(),
        std::fs::metadata(&snapshot_path).unwrap().len() / 1024
    );

    let session = HyperSession::builder(data.db)
        .graph(data.graph)
        .config(EngineConfig::hyper())
        .persist_dir(&persist_dir)
        .build();
    let mut first_life = Vec::new();
    for q in QUERIES {
        let r = session.whatif_text(q).expect("query evaluates");
        println!("cold:  {:>7.1}  <- {q}", r.value);
        first_life.push(r.value);
    }
    let cold = session.stats();
    assert_eq!(cold.estimator_misses, 3, "first life trains each estimator");
    drop(session);

    // ---- The restart ----------------------------------------------------
    // Every in-memory artifact is gone; only the snapshot file and the
    // persist directory survive.
    SharedArtifactStore::global().clear();
    println!("\n-- process restarted (in-memory artifact store cleared) --\n");

    // ---- Second life: rebuild from durable state ------------------------
    let restored = Snapshot::load(&snapshot_path).expect("load dataset snapshot");
    let session = HyperSession::builder(restored.database)
        .maybe_graph(restored.graph)
        .config(EngineConfig::hyper())
        .persist_dir(&persist_dir)
        .build();
    for (q, &expected) in QUERIES.iter().zip(&first_life) {
        let r = session.whatif_text(q).expect("query evaluates");
        println!("warm:  {:>7.1}  <- {q}", r.value);
        assert_eq!(
            r.value, expected,
            "deserialized artifacts answer identically"
        );
    }

    let warm = session.stats();
    println!(
        "\nwarm-start stats: {} estimator builds, {} estimator disk hits, \
         {} view disk hits, {} local hits",
        warm.estimator_misses,
        warm.estimator_disk_hits,
        warm.view_disk_hits,
        warm.estimator_hits + warm.view_hits,
    );
    assert_eq!(warm.estimator_misses, 0, "warm start retrains nothing");
    assert_eq!(warm.view_misses, 0, "…and rebuilds no views");
    assert_eq!(warm.estimator_disk_hits, 3, "estimators came from disk");
    assert!(warm.view_disk_hits >= 1, "the relevant view came from disk");

    std::fs::remove_dir_all(&dir).ok();
    println!("OK: restarted process answered at warm-cache speed, zero retraining");
}
