//! Live ingest over HTTP: append rows to a served tenant and watch
//! block-scoped causal invalidation keep the untouched artifacts warm.
//!
//! The scenario: a "lending" tenant serves the German-Syn table. Two
//! query shapes are warmed — a *filtered* what-if over young applicants
//! (`age = 0`) and a full-table what-if. Then a batch of senior
//! applicants (`age = 2`) arrives via `POST /ingest`:
//!
//! 1. the filtered view's predicate admits none of the new rows, so the
//!    view, its estimator, and its blocks all **survive** — re-running
//!    the query is a pure cache hit with zero retraining;
//! 2. the full-table view saw its relation grow, so it is invalidated
//!    and the next execution rebuilds against the new version — and its
//!    answer changes;
//! 3. the delta is durably appended to the tenant's `HYPD1` sidecar
//!    log, so a restarted server replays to the same version.
//!
//! Run with `cargo run --release --example live_ingest`.

use hyper_repro::serve::{Client, Json, ServeConfig, Server};
use hyper_repro::store::Snapshot;

const UNTOUCHED: &str = "Use (Select status, credit From german_syn Where age = 0) \
     Update(status) = 3 Output Count(Post(credit) = 'Good')";
const TOUCHED: &str = "Use german_syn Update(status) = 3 Output Count(Post(credit) = 'Good')";

fn value_of(response: &hyper_repro::serve::ClientResponse) -> f64 {
    assert_eq!(response.status, 200, "{:?}", response.json());
    response
        .json()
        .unwrap()
        .get("value")
        .and_then(Json::as_f64)
        .unwrap()
}

fn session_stats(client: &mut Client, tenant: &str) -> Json {
    client
        .request("GET", "/stats", None)
        .expect("stats")
        .json()
        .unwrap()
        .get("tenants")
        .unwrap()
        .get(tenant)
        .unwrap()
        .get("session")
        .unwrap()
        .clone()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("hyper_live_ingest_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create registry dir");

    let data = hyper_repro::datasets::german_syn(5_000, 7);
    Snapshot::new(data.db, Some(data.graph))
        .save(dir.join("lending.hypr"))
        .expect("save tenant snapshot");

    let server = Server::start(&dir, ServeConfig::default()).expect("server starts");
    println!("serving on http://{}\n", server.addr());
    let mut client = Client::connect(server.addr()).expect("connect");

    // Warm both query shapes.
    let untouched_v0 = value_of(&client.query("/query", "lending", UNTOUCHED, &[]).unwrap());
    let touched_v0 = value_of(&client.query("/query", "lending", TOUCHED, &[]).unwrap());
    println!("filtered (age = 0) what-if  -> {untouched_v0}");
    println!("full-table what-if          -> {touched_v0}");
    let before = session_stats(&mut client, "lending");
    let misses_before = (
        before.get("view_misses").and_then(Json::as_i64).unwrap(),
        before
            .get("estimator_misses")
            .and_then(Json::as_i64)
            .unwrap(),
    );

    // A batch of senior applicants lands: every appended row has
    // age = 2, so the `age = 0` filter admits none of them. Columns are
    // age, sex, status, savings, housing, credit_amount, credit.
    let rows: Vec<Vec<Json>> = (0..200i64)
        .map(|i| {
            vec![
                Json::Int(2),
                Json::Int(i % 2),
                Json::Int(i % 4),
                Json::Int((i / 2) % 4),
                Json::Int(i % 3),
                Json::Int((i / 3) % 4),
                Json::Str(if i % 4 == 0 { "Bad" } else { "Good" }.into()),
            ]
        })
        .collect();
    let response = client.ingest("lending", "german_syn", &rows, &[]).unwrap();
    assert_eq!(response.status, 200, "{:?}", response.json());
    let report = response.json().unwrap();
    println!(
        "\nPOST /ingest: {} row(s) -> data_version {}, views kept {} / invalidated {}, \
         estimators kept {} / invalidated {}",
        rows.len(),
        report.get("data_version").and_then(Json::as_i64).unwrap(),
        report.get("views_kept").and_then(Json::as_i64).unwrap(),
        report
            .get("views_invalidated")
            .and_then(Json::as_i64)
            .unwrap(),
        report
            .get("estimators_kept")
            .and_then(Json::as_i64)
            .unwrap(),
        report
            .get("estimators_invalidated")
            .and_then(Json::as_i64)
            .unwrap(),
    );
    assert!(
        report.get("views_kept").and_then(Json::as_i64).unwrap() >= 1,
        "the non-matching filtered view must survive"
    );
    assert!(
        report
            .get("views_invalidated")
            .and_then(Json::as_i64)
            .unwrap()
            >= 1,
        "the full-table view must be invalidated"
    );

    // Untouched blocks: same answer, zero new builds, zero retrains.
    let untouched_v1 = value_of(&client.query("/query", "lending", UNTOUCHED, &[]).unwrap());
    assert_eq!(
        untouched_v1.to_bits(),
        untouched_v0.to_bits(),
        "the filtered query's blocks were untouched — its answer may not move"
    );
    let after = session_stats(&mut client, "lending");
    assert_eq!(
        after.get("view_misses").and_then(Json::as_i64).unwrap(),
        misses_before.0,
        "no view rebuild"
    );
    assert_eq!(
        after
            .get("estimator_misses")
            .and_then(Json::as_i64)
            .unwrap(),
        misses_before.1,
        "zero trains — the estimator survived the delta"
    );
    println!("filtered what-if re-served from cache: {untouched_v1} (zero rebuilds, zero trains)");

    // Touched blocks: the full-table answer must reflect the new rows.
    let touched_v1 = value_of(&client.query("/query", "lending", TOUCHED, &[]).unwrap());
    assert_ne!(
        touched_v1.to_bits(),
        touched_v0.to_bits(),
        "200 appended rows must move a Count over the full table"
    );
    println!("full-table what-if recomputed:         {touched_v0} -> {touched_v1}");

    // Durability: a restarted server replays the HYPD1 log and answers
    // at the ingested version.
    server.shutdown();
    let server = Server::start(&dir, ServeConfig::default()).expect("restart");
    let mut client = Client::connect(server.addr()).expect("reconnect");
    let replayed = value_of(&client.query("/query", "lending", TOUCHED, &[]).unwrap());
    assert_eq!(
        replayed.to_bits(),
        touched_v1.to_bits(),
        "the restarted server must replay the delta log to the same version"
    );
    let s = session_stats(&mut client, "lending");
    assert_eq!(s.get("data_version").and_then(Json::as_i64), Some(1));
    println!("\nrestarted server replayed the delta log: {replayed} at data_version 1");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("live ingest verified: causal invalidation kept the untouched artifacts warm");
}
